package simnet

import (
	"testing"

	"pds2/internal/crypto"
)

// collector records delivered messages with their arrival times.
type collector struct {
	got []Message
	at  []Time
}

func (c *collector) HandleMessage(now Time, msg Message) {
	c.got = append(c.got, msg)
	c.at = append(c.at, now)
}

func TestSendDeliversWithLatency(t *testing.T) {
	n := New(Config{Seed: 1, Latency: FixedLatency(5 * Millisecond)})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)

	n.Send(a, b, "hello", 100)
	n.Run(Second)

	if len(c.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(c.got))
	}
	if c.got[0].Payload != "hello" || c.got[0].From != a || c.got[0].Size != 100 {
		t.Fatalf("bad message: %+v", c.got[0])
	}
	if c.at[0] != 5*Millisecond {
		t.Fatalf("delivered at %v, want 5ms", c.at[0])
	}
}

func TestBandwidthAddsSerializationDelay(t *testing.T) {
	n := New(Config{
		Seed:                 1,
		Latency:              FixedLatency(0),
		BandwidthBytesPerSec: 1000, // 1 KB/s
	})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)

	n.Send(a, b, nil, 500) // 0.5 s at 1 KB/s
	n.Run(Second)
	if len(c.at) != 1 || c.at[0] != Second/2 {
		t.Fatalf("delivery times %v, want [500ms]", c.at)
	}
}

func TestDropRateOneDropsEverything(t *testing.T) {
	n := New(Config{Seed: 1, DropRate: 1})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)
	for i := 0; i < 20; i++ {
		n.Send(a, b, i, 10)
	}
	n.Run(Second)
	if len(c.got) != 0 {
		t.Fatalf("%d messages delivered despite DropRate=1", len(c.got))
	}
	st := n.Stats()
	if st.MessagesDropped != 20 || st.MessagesSent != 20 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOfflineNodesDropTraffic(t *testing.T) {
	n := New(Config{Seed: 1, Latency: FixedLatency(Millisecond)})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)

	n.SetOnline(b, false)
	n.Send(a, b, "to-offline", 1)
	n.Run(Second)
	if len(c.got) != 0 {
		t.Fatal("message delivered to offline node")
	}

	n.SetOnline(b, true)
	n.SetOnline(a, false)
	n.Send(a, b, "from-offline", 1)
	n.Run(2 * Second)
	if len(c.got) != 0 {
		t.Fatal("message sent from offline node")
	}
}

func TestOfflineAtDeliveryTimeDrops(t *testing.T) {
	n := New(Config{Seed: 1, Latency: FixedLatency(10 * Millisecond)})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)

	n.Send(a, b, "x", 1)
	n.At(5*Millisecond, func(Time) { n.SetOnline(b, false) })
	n.Run(Second)
	if len(c.got) != 0 {
		t.Fatal("message delivered to node that went offline in transit")
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []int {
		n := New(Config{Seed: 7, Latency: UniformLatency{Min: Millisecond, Max: 20 * Millisecond}})
		var order []int
		recv := n.AddNode(HandlerFunc(func(_ Time, m Message) {
			order = append(order, m.Payload.(int))
		}))
		send := n.AddNode(HandlerFunc(func(Time, Message) {}))
		for i := 0; i < 50; i++ {
			n.Send(send, recv, i, 10)
		}
		n.Run(Second)
		return order
	}
	a, b := run(), run()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("lost messages: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSameTimeEventsPreserveScheduleOrder(t *testing.T) {
	n := New(Config{Seed: 1})
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		n.At(Millisecond, func(Time) { order = append(order, i) })
	}
	n.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	n := New(Config{Seed: 1})
	fired := false
	n.At(2*Second, func(Time) { fired = true })
	end := n.Run(Second)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if end != Second {
		t.Fatalf("Run returned %v, want 1s", end)
	}
	if n.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", n.Pending())
	}
	// Continuing the run fires it.
	n.Run(3 * Second)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestEveryTicksUntilFalse(t *testing.T) {
	n := New(Config{Seed: 1})
	count := 0
	n.Every(0, 100*Millisecond, func(now Time) bool {
		count++
		return count < 5
	})
	n.Run(10 * Second)
	if count != 5 {
		t.Fatalf("tick count = %d, want 5", count)
	}
}

func TestAfterRelativeScheduling(t *testing.T) {
	n := New(Config{Seed: 1})
	var at Time
	n.At(Second, func(Time) {
		n.After(Millisecond, func(now Time) { at = now })
	})
	n.Run(2 * Second)
	if at != Second+Millisecond {
		t.Fatalf("After fired at %v", at)
	}
}

func TestStatsAccounting(t *testing.T) {
	n := New(Config{Seed: 1, Latency: FixedLatency(Millisecond)})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)
	n.Send(a, b, nil, 100)
	n.Send(a, b, nil, 200)
	n.Run(Second)

	st := n.Stats()
	if st.BytesSent != 300 || st.BytesDelivered != 300 || st.MessagesDelivered != 2 {
		t.Fatalf("global stats: %+v", st)
	}
	sa, sb := n.NodeStats(a), n.NodeStats(b)
	if sa.BytesSent != 300 || sa.MessagesSent != 2 {
		t.Fatalf("sender stats: %+v", sa)
	}
	if sb.BytesDelivered != 300 || sb.MessagesDelivered != 2 {
		t.Fatalf("receiver stats: %+v", sb)
	}
}

func TestLogNormalLatencyPositiveAndSpread(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "lat")
	m := LogNormalLatency{Median: 50 * Millisecond, Sigma: 0.5}
	var min, max Time = 1 << 62, 0
	for i := 0; i < 1000; i++ {
		l := m.Latency(0, 1, rng)
		if l <= 0 {
			t.Fatalf("non-positive latency %v", l)
		}
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	if min == max {
		t.Fatal("log-normal latency has no spread")
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(4, "lat")
	m := UniformLatency{Min: 10 * Millisecond, Max: 20 * Millisecond}
	for i := 0; i < 500; i++ {
		l := m.Latency(0, 1, rng)
		if l < 10*Millisecond || l > 20*Millisecond {
			t.Fatalf("latency %v out of bounds", l)
		}
	}
	degenerate := UniformLatency{Min: 5 * Millisecond, Max: 5 * Millisecond}
	if degenerate.Latency(0, 1, rng) != 5*Millisecond {
		t.Fatal("degenerate uniform latency wrong")
	}
}

func TestNegativeSizePanics(t *testing.T) {
	n := New(Config{Seed: 1})
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	n.Send(a, a, nil, -1)
}

func TestPartitionDropsCrossGroupTraffic(t *testing.T) {
	n := New(Config{Seed: 1, Latency: FixedLatency(Millisecond)})
	var ca, cb collector
	a := n.AddNode(&ca)
	b := n.AddNode(&cb)
	n.SetPartition([]NodeID{a}, []NodeID{b})

	n.Send(a, b, "cross", 1)
	n.Send(a, a, "same", 1)
	n.Run(Second)
	if len(cb.got) != 0 {
		t.Fatal("cross-partition message delivered")
	}
	if len(ca.got) != 1 {
		t.Fatal("intra-partition message lost")
	}

	n.ClearPartition()
	n.Send(a, b, "healed", 1)
	n.Run(2 * Second)
	if len(cb.got) != 1 {
		t.Fatal("message lost after healing")
	}
}

func TestPartitionImplicitGroup(t *testing.T) {
	n := New(Config{Seed: 1, Latency: FixedLatency(Millisecond)})
	var c0, c1, c2 collector
	a := n.AddNode(&c0)
	b := n.AddNode(&c1)
	c := n.AddNode(&c2)
	// Only a is isolated; b and c share the implicit group.
	n.SetPartition([]NodeID{a})
	n.Send(b, c, "peer", 1)
	n.Send(a, b, "isolated", 1)
	n.Run(Second)
	if len(c2.got) != 1 {
		t.Fatal("implicit-group traffic dropped")
	}
	if len(c1.got) != 0 {
		t.Fatal("isolated node reached the implicit group")
	}
}

func TestPartitionAppliesInFlight(t *testing.T) {
	// A message sent before the partition but delivered after it is cut.
	n := New(Config{Seed: 1, Latency: FixedLatency(10 * Millisecond)})
	var c collector
	a := n.AddNode(HandlerFunc(func(Time, Message) {}))
	b := n.AddNode(&c)
	n.Send(a, b, "in-flight", 1)
	n.At(Millisecond, func(Time) { n.SetPartition([]NodeID{a}, []NodeID{b}) })
	n.Run(Second)
	if len(c.got) != 0 {
		t.Fatal("in-flight message crossed a fresh partition")
	}
}
