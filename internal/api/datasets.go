// Dataset and usage-control policy endpoints: the /v1/datasets registry
// surface and the /v1/policies decision log. Mutations (dataset
// registration, policy attachment) are non-custodial like every other
// write on this API: the caller signs the transaction with its own key
// and the node only validates shape and routes it into the mempool —
// ownership is enforced on-chain by the registry contract.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/policy"
)

// PolicyBody is the JSON shape of a usage-control policy, used in
// dataset views. Absent clauses are unconstrained.
type PolicyBody struct {
	AllowedClasses []string `json:"allowed_classes,omitempty"`
	MinAggregation uint64   `json:"min_aggregation,omitempty"`
	ExpiryHeight   uint64   `json:"expiry_height,omitempty"`
	Purposes       []string `json:"purposes,omitempty"`
	MaxInvocations uint64   `json:"max_invocations,omitempty"`
}

func policyBody(p *policy.Policy) *PolicyBody {
	if p == nil {
		return nil
	}
	return &PolicyBody{
		AllowedClasses: p.AllowedClasses,
		MinAggregation: p.MinAggregation,
		ExpiryHeight:   p.ExpiryHeight,
		Purposes:       p.Purposes,
		MaxInvocations: p.MaxInvocations,
	}
}

// DatasetSummary is one entry of GET /v1/datasets.
type DatasetSummary struct {
	ID        crypto.Digest    `json:"id"`
	Owner     identity.Address `json:"owner"`
	HasPolicy bool             `json:"has_policy"`
	Uses      uint64           `json:"uses"`
}

// DatasetsResponse is the GET /v1/datasets page envelope. Pages are
// ordered by dataset ID (hex); Next is the last ID of the page, empty
// on the final one.
type DatasetsResponse struct {
	Items []DatasetSummary `json:"items"`
	Next  string           `json:"next,omitempty"`
}

// DatasetResponse is the GET /v1/datasets/{id} body. CodeSize is the
// byte size of the deployed policy-program artifact (0 when the dataset
// is governed declaratively or not at all).
type DatasetResponse struct {
	ID       crypto.Digest    `json:"id"`
	Owner    identity.Address `json:"owner"`
	MetaHash crypto.Digest    `json:"meta_hash"`
	Policy   *PolicyBody      `json:"policy,omitempty"`
	CodeSize int              `json:"code_size,omitempty"`
	Uses     uint64           `json:"uses"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	after, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids, err := s.m.DatasetIDs()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	// DatasetIDs is already hex-sorted, so the last served ID is a
	// stable cursor exactly like the workload directory's.
	resp := DatasetsResponse{Items: []DatasetSummary{}}
	for _, id := range ids {
		h := id.Hex()
		if after != "" && h <= after {
			continue
		}
		if len(resp.Items) == limit {
			resp.Next = resp.Items[len(resp.Items)-1].ID.Hex()
			break
		}
		info, ok, err := s.m.DatasetInfoOf(id)
		if err != nil || !ok {
			continue
		}
		resp.Items = append(resp.Items, DatasetSummary{
			ID: id, Owner: info.Owner,
			HasPolicy: info.Policy != nil || info.CodeSize > 0,
			Uses:      info.Uses,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	id, err := crypto.DigestFromHex(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad dataset id: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok, err := s.m.DatasetInfoOf(id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "dataset %s is not registered", id.Short())
		return
	}
	writeJSON(w, http.StatusOK, DatasetResponse{
		ID: info.ID, Owner: info.Owner, MetaHash: info.MetaHash,
		Policy: policyBody(info.Policy), CodeSize: info.CodeSize, Uses: info.Uses,
	})
}

// TxEnvelope wraps a pre-signed transaction for the non-custodial
// mutation endpoints (POST /v1/datasets, PUT /v1/datasets/{id}/policy).
type TxEnvelope struct {
	Tx *ledger.Transaction `json:"tx"`
}

// decodeRegistryCall validates that the envelope carries a call of the
// expected registry method and returns its ABI-encoded arguments.
func (s *Server) decodeRegistryCall(env TxEnvelope, method string) ([]byte, error) {
	if env.Tx == nil {
		return nil, fmt.Errorf("missing tx")
	}
	if env.Tx.To != s.m.Registry {
		return nil, fmt.Errorf("tx must target the registry %s, not %s", s.m.Registry.Hex(), env.Tx.To.Hex())
	}
	d := contract.NewDecoder(env.Tx.Data)
	m, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("tx data is not a contract call: %w", err)
	}
	if m != method {
		return nil, fmt.Errorf("tx calls %q, want %q", m, method)
	}
	args, err := d.Blob()
	if err != nil {
		return nil, fmt.Errorf("tx call arguments: %w", err)
	}
	return args, nil
}

// handleRegisterDataset serves POST /v1/datasets: a pre-signed
// registerData transaction, shape-checked and admitted to the mempool.
// First-come-first-served ownership is enforced by the registry
// contract at apply time, exactly as for a raw /v1/transactions submit.
func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	if deadlineExceeded(w, r) {
		return
	}
	var env TxEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad envelope: %v", err)
		return
	}
	args, err := s.decodeRegistryCall(env, "registerData")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	d := contract.NewDecoder(args)
	if _, err := d.Digest(); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad dataset id: %v", err)
		return
	}
	if _, err := d.Digest(); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad meta hash: %v", err)
		return
	}
	s.admitTx(w, env.Tx)
}

// handleSetPolicy serves PUT /v1/datasets/{id}/policy: a pre-signed
// setPolicy transaction whose dataset argument must match the path, and
// whose policy blob must decode and validate — malformed policies are
// rejected here with a client error instead of burning gas on a revert.
func (s *Server) handleSetPolicy(w http.ResponseWriter, r *http.Request) {
	if deadlineExceeded(w, r) {
		return
	}
	pathID, err := crypto.DigestFromHex(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad dataset id: %v", err)
		return
	}
	var env TxEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad envelope: %v", err)
		return
	}
	args, err := s.decodeRegistryCall(env, "setPolicy")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	d := contract.NewDecoder(args)
	txID, err := d.Digest()
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad dataset id in tx: %v", err)
		return
	}
	if txID != pathID {
		writeErr(w, http.StatusBadRequest, CodeBadRequest,
			"tx sets the policy of %s, path names %s", txID.Short(), pathID.Short())
		return
	}
	blob, err := d.Blob()
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad policy blob: %v", err)
		return
	}
	pol, err := policy.Decode(blob)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad policy: %v", err)
		return
	}
	if err := pol.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad policy: %v", err)
		return
	}
	s.admitTx(w, env.Tx)
}

// PolicyDecision is the JSON shape of one usage-control decision — both
// the /v1/policies/decisions log entries and the /check verdicts.
type PolicyDecision struct {
	DataID      crypto.Digest    `json:"data_id"`
	Subject     identity.Address `json:"subject"`
	Layer       string           `json:"layer"`
	Class       string           `json:"class"`
	Purpose     string           `json:"purpose,omitempty"`
	Aggregation uint64           `json:"aggregation"`
	Height      uint64           `json:"height"`
	Invocations uint64           `json:"invocations"`
	Code        string           `json:"code"`
	Clause      string           `json:"clause,omitempty"`
	Allowed     bool             `json:"allowed"`
}

func decisionJSON(rec policy.DecisionRecord) PolicyDecision {
	return PolicyDecision{
		DataID:      rec.DataID,
		Subject:     rec.Subject,
		Layer:       rec.Layer,
		Class:       rec.Class,
		Purpose:     rec.Purpose,
		Aggregation: rec.Aggregation,
		Height:      rec.Height,
		Invocations: rec.Invocations,
		Code:        rec.Code,
		Clause:      rec.Clause,
		Allowed:     rec.Allowed(),
	}
}

// handleCheckPolicy serves GET /v1/datasets/{id}/check: a pure
// evaluation of the dataset's policy against ?layer, ?class, ?purpose
// and ?agg — no event, no consumption. An allow answers 200 with the
// decision; a deny answers 403 with the policy_violation envelope
// naming the violated clause and enforcement layer, exactly the shape
// workload flows surface when enforcement rejects them.
func (s *Server) handleCheckPolicy(w http.ResponseWriter, r *http.Request) {
	id, err := crypto.DigestFromHex(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad dataset id: %v", err)
		return
	}
	q := r.URL.Query()
	layer := q.Get("layer")
	if layer == "" {
		layer = policy.LayerMatch
	}
	class := q.Get("class")
	if class == "" {
		class = market.DefaultComputationClass
	}
	agg := uint64(1)
	if raw := q.Get("agg"); raw != "" {
		if agg, err = strconv.ParseUint(raw, 10, 64); err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad agg %q", raw)
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok, err := s.m.DatasetInfoOf(id); err != nil || !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "dataset %s is not registered", id.Short())
		return
	}
	rec, err := s.m.EvalPolicy(id, layer, class, q.Get("purpose"), agg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if !rec.Allowed() {
		writeErrDetails(w, http.StatusForbidden, CodePolicyViolation,
			&ErrorDetails{Clause: rec.Clause, Layer: rec.Layer, Code: rec.Code},
			"policy of dataset %s denies %s at the %s layer: %s (clause %s)",
			id.Short(), class, rec.Layer, rec.Code, rec.Clause)
		return
	}
	writeJSON(w, http.StatusOK, decisionJSON(rec))
}

// PolicyDecisionsResponse is the GET /v1/policies/decisions page
// envelope. The decision log is append-only, so the cursor is a plain
// offset, like /v1/events.
type PolicyDecisionsResponse struct {
	Items []PolicyDecision `json:"items"`
	Next  string           `json:"next,omitempty"`
}

// handlePolicyDecisions serves GET /v1/policies/decisions: the decoded
// on-chain usage-control decision log, oldest first — what pds2-audit
// replays offline against the PolicySet history.
func (s *Server) handlePolicyDecisions(w http.ResponseWriter, r *http.Request) {
	after, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	offset := 0
	if after != "" {
		offset, err = strconv.Atoi(after)
		if err != nil || offset < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad cursor %q", after)
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	events := s.m.Chain.Events(policy.EvPolicyDecision)
	if offset > len(events) {
		offset = len(events)
	}
	page := events[offset:]
	resp := PolicyDecisionsResponse{Items: []PolicyDecision{}}
	if len(page) > limit {
		page = page[:limit]
		resp.Next = strconv.Itoa(offset + limit)
	}
	for _, ev := range page {
		rec, err := policy.DecodeDecisionRecord(ev.Data)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, CodeInternal, "corrupt decision event: %v", err)
			return
		}
		resp.Items = append(resp.Items, decisionJSON(*rec))
	}
	writeJSON(w, http.StatusOK, resp)
}
