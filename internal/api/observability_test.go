package api

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

// testServerHandle is testServer but also returns the *Server so tests
// can flip runtime switches (SetPprof).
func testServerHandle(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	user := identity.New("user", crypto.NewDRBGFromUint64(1, "api-observability-test"))
	m, err := market.New(market.Config{
		Seed:         1,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	api := NewServer(m, false)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return srv, api
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()
	telemetry.EnableHistory(2*time.Millisecond, 256)
	defer telemetry.DisableHistory()

	srv, _ := testServerHandle(t)
	telemetry.G("ledger.mempool.depth").Set(7)

	// Wait for the ring to accumulate a few ticks.
	deadline := time.Now().Add(2 * time.Second)
	var dump telemetry.HistoryDump
	for time.Now().Before(deadline) {
		if code := getJSON(t, srv.URL+"/metrics/history", &dump); code != http.StatusOK {
			t.Fatalf("GET /metrics/history: %d", code)
		}
		if len(dump.Samples) >= 3 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(dump.Samples) < 3 {
		t.Fatalf("history accumulated only %d samples", len(dump.Samples))
	}
	if dump.IntervalNS != int64(2*time.Millisecond) || dump.Capacity != 256 {
		t.Fatalf("dump header %+v", dump)
	}
	series := dump.Series("ledger.mempool.depth")
	if len(series) == 0 || series[len(series)-1].Value != 7 {
		t.Fatalf("mempool depth series = %+v", series)
	}

	// The window parameter trims; a bogus one is a 400.
	var windowed telemetry.HistoryDump
	if code := getJSON(t, srv.URL+"/metrics/history?window=10m", &windowed); code != http.StatusOK {
		t.Fatalf("windowed GET: %d", code)
	}
	resp, err := http.Get(srv.URL + "/metrics/history?window=bogus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad window: %d, body %s", resp.StatusCode, body)
	}
	var e apiError
	if json.Unmarshal(body, &e) != nil || e.Error.Code != CodeBadRequest {
		t.Fatalf("bad window body %q", body)
	}

	// The typed client round-trips the dump.
	cl := NewClient(srv.URL)
	got, err := cl.MetricsHistory(context.Background(), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) == 0 {
		t.Fatal("client fetched empty history")
	}
}

func TestMetricsHistoryDisabledRing(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()
	telemetry.DisableHistory()

	srv, _ := testServerHandle(t)
	resp, err := http.Get(srv.URL + "/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var e apiError
	if json.Unmarshal(body, &e) != nil || e.Error.Code != CodeDisabled || e.Error.Retryable {
		t.Fatalf("body %q, want non-retryable disabled envelope", body)
	}
}

// TestPprofGuard pins the profiling contract: the /debug/pprof/ surface
// answers the non-retryable disabled envelope until SetPprof(true), then
// serves real pprof artifacts (gzipped protobuf for named profiles).
func TestPprofGuard(t *testing.T) {
	srv, api := testServerHandle(t)

	resp, err := http.Get(srv.URL + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("guarded pprof: %d, want 503", resp.StatusCode)
	}
	var e apiError
	if json.Unmarshal(body, &e) != nil || e.Error.Code != CodeDisabled || e.Error.Retryable {
		t.Fatalf("guarded pprof body %q", body)
	}

	api.SetPprof(true)
	if !api.PprofEnabled() {
		t.Fatal("SetPprof did not stick")
	}
	resp, err = http.Get(srv.URL + "/debug/pprof/goroutine")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enabled pprof: %d, body %s", resp.StatusCode, body)
	}
	// Named profiles default to the binary pprof format: gzip magic, and
	// the whole stream must decode (CRC-checked).
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("goroutine profile is not gzipped pprof (starts %x)", body[:min(4, len(body))])
	}
	zr, err := gzip.NewReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, zr); err != nil {
		t.Fatalf("profile stream corrupt: %v", err)
	}

	// The index page serves too, and the typed client fetches raw bytes.
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	status := resp.StatusCode
	resp.Body.Close()
	if status != http.StatusOK {
		t.Fatalf("pprof index: %d", status)
	}
	cl := NewClient(srv.URL)
	raw, err := cl.Pprof(context.Background(), "heap", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("client heap profile is not gzipped pprof")
	}
}

// TestClientTrace covers the typed /trace accessor.
func TestClientTrace(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()

	srv, _ := testServerHandle(t)
	sp := telemetry.StartSpan("test.span", telemetry.SpanContext{})
	sp.End()

	cl := NewClient(srv.URL)
	tr, err := cl.Trace(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr.Spans {
		if s.Name == "test.span" {
			found = true
		}
	}
	if !found {
		t.Fatalf("test.span missing from client trace (%d spans)", len(tr.Spans))
	}
}
