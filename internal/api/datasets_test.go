package api

import (
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/market"
	"pds2/internal/policy"
	"pds2/internal/telemetry"
)

// TestDatasetAPILifecycle drives the full dataset surface through the
// client: register, list, detail, policy attachment, and the check
// endpoint — plus the envelope validations that reject mismatched or
// malformed mutation transactions before they spend gas.
func TestDatasetAPILifecycle(t *testing.T) {
	srv, m, user := testServer(t, true)
	c := NewClient(srv.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	dataID := crypto.HashString("api-test/data/1")
	metaHash := crypto.HashString("api-test/meta/1")
	tx := m.SignedTx(user, m.Registry, 0, market.RegisterDataData(dataID, metaHash))
	h, err := c.RegisterDataset(ctx, tx)
	if err != nil {
		t.Fatal(err)
	}
	if h != tx.Hash() {
		t.Fatal("hash mismatch")
	}
	if _, err := c.Seal(ctx); err != nil {
		t.Fatal(err)
	}

	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != dataID || list[0].HasPolicy || list[0].Uses != 0 {
		t.Fatalf("datasets = %+v", list)
	}
	det, err := c.Dataset(ctx, dataID)
	if err != nil {
		t.Fatal(err)
	}
	if det.Owner != user.Address() || det.MetaHash != metaHash || det.Policy != nil {
		t.Fatalf("dataset = %+v", det)
	}

	// Unregistered datasets are a 404, not an empty object.
	if _, err := c.Dataset(ctx, crypto.HashString("nope")); err == nil {
		t.Fatal("missing dataset did not error")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("missing dataset: %v", err)
	}

	pol := &policy.Policy{AllowedClasses: []string{"train"}, MinAggregation: 2, MaxInvocations: 5}
	ptx := m.SignedTx(user, m.Registry, 0, market.SetPolicyData(dataID, pol))
	if _, err := c.SetPolicy(ctx, dataID, ptx); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	det, err = c.Dataset(ctx, dataID)
	if err != nil {
		t.Fatal(err)
	}
	if det.Policy == nil || det.Policy.MinAggregation != 2 || det.Policy.MaxInvocations != 5 ||
		len(det.Policy.AllowedClasses) != 1 || det.Policy.AllowedClasses[0] != "train" {
		t.Fatalf("policy = %+v", det.Policy)
	}

	dec, err := c.CheckPolicy(ctx, dataID, "", "train", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed || dec.Layer != policy.LayerMatch || dec.Code != policy.CodeOK {
		t.Fatalf("check = %+v", dec)
	}

	// Envelope validation: a setPolicy tx whose dataset argument names a
	// different dataset than the path must be rejected client-side.
	other := crypto.HashString("api-test/data/other")
	wrong := m.SignedTx(user, m.Registry, 0, market.SetPolicyData(other, pol))
	if _, err := c.SetPolicy(ctx, dataID, wrong); err == nil {
		t.Fatal("mismatched setPolicy accepted")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("mismatched setPolicy: %v", err)
	}
	// A plain transfer is not a registerData call.
	transfer := m.SignedTx(user, user.Address(), 1, nil)
	if _, err := c.RegisterDataset(ctx, transfer); err == nil {
		t.Fatal("transfer accepted as dataset registration")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("transfer as registerData: %v", err)
	}
}

// TestPolicyDenialEnvelope pins the deny contract of the API: HTTP 403,
// code "policy_violation", retryable false, and a details object naming
// the violated clause and the enforcement layer.
func TestPolicyDenialEnvelope(t *testing.T) {
	srv, m, user := testServer(t, true)
	c := NewClient(srv.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	dataID := crypto.HashString("api-test/data/deny")
	if _, err := market.MustSucceed(m.SendAndSeal(user, m.Registry, 0,
		market.RegisterDataData(dataID, crypto.HashString("meta")))); err != nil {
		t.Fatal(err)
	}
	pol := &policy.Policy{AllowedClasses: []string{"train"}}
	if _, err := market.MustSucceed(m.SendAndSeal(user, m.Registry, 0,
		market.SetPolicyData(dataID, pol))); err != nil {
		t.Fatal(err)
	}

	_, err := c.CheckPolicy(ctx, dataID, policy.LayerMatch, "stats", "", 1)
	if err == nil {
		t.Fatal("forbidden class allowed")
	}
	ae := new(APIError)
	if !errors.As(err, &ae) {
		t.Fatalf("not an APIError: %v", err)
	}
	if ae.Status != http.StatusForbidden || ae.Code != CodePolicyViolation {
		t.Fatalf("status %d code %q", ae.Status, ae.Code)
	}
	if ae.Retryable {
		t.Fatal("policy violation marked retryable")
	}
	if ae.Details == nil || ae.Details.Clause != policy.ClauseClasses ||
		ae.Details.Layer != policy.LayerMatch || ae.Details.Code != policy.CodeClassForbidden {
		t.Fatalf("details = %+v", ae.Details)
	}
}

// TestPolicyDecisionsPaginationWalk pages through the on-chain decision
// log with a small limit and checks the walk reassembles the full log.
func TestPolicyDecisionsPaginationWalk(t *testing.T) {
	srv, m, user := testServer(t, true)
	c := NewClient(srv.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	dataID := crypto.HashString("api-test/data/page")
	if _, err := market.MustSucceed(m.SendAndSeal(user, m.Registry, 0,
		market.RegisterDataData(dataID, crypto.HashString("meta")))); err != nil {
		t.Fatal(err)
	}
	pol := &policy.Policy{AllowedClasses: []string{"train"}}
	if _, err := market.MustSucceed(m.SendAndSeal(user, m.Registry, 0,
		market.SetPolicyData(dataID, pol))); err != nil {
		t.Fatal(err)
	}
	// Five match-layer probes, alternating allow (train) and deny (stats).
	classes := []string{"train", "stats", "train", "stats", "stats"}
	for _, cl := range classes {
		if _, err := m.SendAndSeal(user, m.Registry, 0,
			market.EnforcePolicyData(policy.LayerMatch, cl, "", 1, dataID)); err != nil {
			t.Fatal(err)
		}
	}

	all, err := c.PolicyDecisions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(classes) {
		t.Fatalf("%d decisions, want %d", len(all), len(classes))
	}
	var walked []PolicyDecision
	after := ""
	pages := 0
	for {
		page, err := c.PolicyDecisionsPage(ctx, after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page.Items) > 2 {
			t.Fatalf("page of %d items with limit 2", len(page.Items))
		}
		walked = append(walked, page.Items...)
		pages++
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if pages < 3 {
		t.Fatalf("walk took %d pages, want >= 3", pages)
	}
	if len(walked) != len(all) {
		t.Fatalf("walk got %d decisions, full fetch %d", len(walked), len(all))
	}
	for i, d := range walked {
		want := classes[i] == "train"
		if d.Class != classes[i] || d.Allowed != want || d.DataID != dataID {
			t.Fatalf("decision %d = %+v", i, d)
		}
	}
}

// TestRouteTableMatchesREADME is the documentation drift gate: every
// route the server registers must appear, as "METHOD /path", in the
// README's API reference.
func TestRouteTableMatchesREADME(t *testing.T) {
	_, m, _ := testServer(t, false)
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readme)
	for _, rt := range NewServer(m, false).Routes() {
		entry := rt.Method + " " + rt.Path
		if !strings.Contains(text, entry) {
			t.Errorf("route %q is not documented in README.md", entry)
		}
	}
}

// TestV1OperationalAliases pins that the /v1/ spellings of the
// operational endpoints behave exactly like the legacy paths — both the
// happy path and the disabled-telemetry envelope.
func TestV1OperationalAliases(t *testing.T) {
	srv, _, _ := testServer(t, false)

	fetch := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// Telemetry disabled: both spellings answer the same stable envelope.
	telemetry.Disable()
	for _, pair := range [][2]string{
		{"/metrics", "/v1/metrics"},
		{"/metrics/history", "/v1/metrics/history"},
		{"/trace", "/v1/trace"},
	} {
		legacyCode, legacyBody := fetch(pair[0])
		aliasCode, aliasBody := fetch(pair[1])
		if legacyCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: code %d while telemetry disabled", pair[0], legacyCode)
		}
		if aliasCode != legacyCode || aliasBody != legacyBody {
			t.Fatalf("%s (%d, %q) != %s (%d, %q)",
				pair[1], aliasCode, aliasBody, pair[0], legacyCode, legacyBody)
		}
	}

	// Telemetry enabled: the aliases serve the same payloads.
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()
	for _, pair := range [][2]string{
		{"/metrics", "/v1/metrics"},
		{"/trace", "/v1/trace"},
		{"/logs", "/v1/logs"},
	} {
		legacyCode, _ := fetch(pair[0])
		aliasCode, _ := fetch(pair[1])
		if legacyCode != http.StatusOK || aliasCode != http.StatusOK {
			t.Fatalf("%s=%d %s=%d, want 200s", pair[0], legacyCode, pair[1], aliasCode)
		}
	}
}
