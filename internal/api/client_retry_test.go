// Client retry semantics, tested from outside the package so the
// fault-injection layer (which imports api) can wrap the servers.
package api_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pds2/internal/api"
	"pds2/internal/crypto"
	"pds2/internal/faults"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
)

// countingServer answers every request with the given status and
// envelope, recording arrival times.
func countingServer(t *testing.T, status int, body string) (*httptest.Server, func() []time.Time) {
	t.Helper()
	var mu sync.Mutex
	var hits []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits = append(hits, time.Now())
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, func() []time.Time {
		mu.Lock()
		defer mu.Unlock()
		return append([]time.Time(nil), hits...)
	}
}

const retryableBody = `{"error":{"code":"internal","message":"boom","retryable":true}}`

// TestRetryBackoffGrowth pins the retry engine: a persistently failing
// retryable endpoint is attempted exactly MaxAttempts times, with
// exponentially growing gaps.
func TestRetryBackoffGrowth(t *testing.T) {
	srv, hits := countingServer(t, http.StatusInternalServerError, retryableBody)
	c := api.NewClient(srv.URL, api.WithRetryPolicy(api.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   20 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Jitter:      -1, // selects default 0.2
		Budget:      64,
	}))
	_, err := c.Status(context.Background())
	if err == nil {
		t.Fatal("persistently failing call succeeded")
	}
	times := hits()
	if len(times) != 4 {
		t.Fatalf("%d attempts, want 4", len(times))
	}
	// Gaps follow 20ms·2ⁿ within jitter; pin growth loosely enough for a
	// loaded CI box: the third gap must exceed the first.
	g1, g3 := times[1].Sub(times[0]), times[3].Sub(times[2])
	if g1 < 10*time.Millisecond {
		t.Fatalf("first backoff %v, want >= ~20ms", g1)
	}
	if g3 <= g1 {
		t.Fatalf("backoff did not grow: first %v, third %v", g1, g3)
	}
	var ae *api.APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeInternal {
		t.Fatalf("final error does not carry the envelope: %v", err)
	}
}

// TestRetryBudgetExhaustion pins the client-wide budget: once spent,
// calls fail after a single attempt instead of piling on retries.
func TestRetryBudgetExhaustion(t *testing.T) {
	srv, hits := countingServer(t, http.StatusInternalServerError, retryableBody)
	c := api.NewClient(srv.URL, api.WithRetryPolicy(api.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   time.Millisecond,
		MaxDelay:    2 * time.Millisecond,
		Budget:      2, // two retries total across the whole client
	}))
	ctx := context.Background()
	if _, err := c.Status(ctx); err == nil {
		t.Fatal("failing call succeeded")
	}
	// initial attempt + 2 budgeted retries
	if n := len(hits()); n != 3 {
		t.Fatalf("%d attempts, want 3 (budget caps retries)", n)
	}
	_, err := c.Status(ctx)
	if err == nil {
		t.Fatal("failing call succeeded")
	}
	if n := len(hits()); n != 4 {
		t.Fatalf("%d total attempts, want 4 (no budget left for retries)", n)
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("error does not name the budget: %v", err)
	}
}

// TestNoRetryOnNonRetryable pins envelope-driven classification: a
// not_found answer is surfaced immediately, with no second attempt.
func TestNoRetryOnNonRetryable(t *testing.T) {
	srv, hits := countingServer(t, http.StatusNotFound,
		`{"error":{"code":"not_found","message":"no such block","retryable":false}}`)
	c := api.NewClient(srv.URL)
	_, err := c.Block(context.Background(), 42)
	var ae *api.APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound || ae.Retryable {
		t.Fatalf("err = %v", err)
	}
	if n := len(hits()); n != 1 {
		t.Fatalf("%d attempts on a non-retryable error, want 1", n)
	}
}

// TestRetryAfterHint pins that a server's Retry-After floor is honored:
// the retry arrives no earlier than the hint even when the policy's own
// backoff is shorter.
func TestRetryAfterHint(t *testing.T) {
	var mu sync.Mutex
	var times []time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := len(times)
		times = append(times, time.Now())
		mu.Unlock()
		if n == 0 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":{"code":"overloaded","message":"shed","retryable":true}}`)
			return
		}
		fmt.Fprint(w, `{}`)
	}))
	defer srv.Close()
	c := api.NewClient(srv.URL, api.WithRetryPolicy(api.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond, // far below the 1s hint
		MaxDelay:    2 * time.Millisecond,
		Budget:      8,
	}))
	if _, err := c.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("%d attempts, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry after %v, want >= ~1s (Retry-After hint ignored)", gap)
	}
}

// TestSubmitTxIdempotentUnderLostReplies is the double-spend pin: the
// server commits the transaction but fault injection destroys the
// response, twice; the client's retried submission (same idempotency
// key) must be answered from the mempool, and after sealing the
// transfer lands exactly once.
func TestSubmitTxIdempotentUnderLostReplies(t *testing.T) {
	user := identity.New("retry-user", crypto.NewDRBGFromUint64(3, "retry-test"))
	m, err := market.New(market.Config{
		Seed:         3,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Schedule{Name: "lost-twice", Seed: 3, Rules: []faults.Rule{
		// The first two submission attempts commit and then lose their
		// responses; the third goes through clean.
		{Kind: faults.Err5xx, Rate: 1, AfterHandler: true, Endpoint: "/v1/transactions", FromOp: 0, ToOp: 2},
	}})
	srv := httptest.NewServer(faults.Middleware(inj, api.NewServer(m, true)))
	defer srv.Close()
	c := api.NewClient(srv.URL, api.WithRetryPolicy(api.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Budget:      64,
	}))
	ctx := context.Background()

	to := identity.New("retry-to", crypto.NewDRBGFromUint64(4, "retry-test")).Address()
	tx := ledger.SignTx(user, to, 777, 0, 50_000, nil)
	hash, err := c.SubmitTx(ctx, tx)
	if err != nil {
		t.Fatalf("submit under lost replies: %v", err)
	}
	if hash != tx.Hash() {
		t.Fatal("hash mismatch")
	}
	if got := inj.Injected()[faults.Err5xx]; got != 2 {
		t.Fatalf("injected %d lost replies, want 2", got)
	}
	if m.Pool.Len() != 1 {
		t.Fatalf("pool depth %d after retried submission, want 1", m.Pool.Len())
	}
	if _, err := c.Seal(ctx); err != nil {
		t.Fatal(err)
	}
	acct, err := c.Account(ctx, to)
	if err != nil {
		t.Fatal(err)
	}
	if acct.Balance != 777 {
		t.Fatalf("receiver balance %d, want exactly 777 (double spend?)", acct.Balance)
	}
	sender, err := c.Account(ctx, user.Address())
	if err != nil {
		t.Fatal(err)
	}
	if sender.Nonce != 1 {
		t.Fatalf("sender nonce %d, want 1", sender.Nonce)
	}
	// Submitting again after commit answers the cached verdict.
	if _, err := c.SubmitTx(ctx, tx); err != nil {
		t.Fatalf("resubmit after commit: %v", err)
	}
	if m.Pool.Len() != 0 {
		t.Fatalf("resubmit after commit re-admitted the tx (pool depth %d)", m.Pool.Len())
	}
}

// TestContextCancellationMidRetry pins that cancellation interrupts the
// backoff sleep, not just the request.
func TestContextCancellationMidRetry(t *testing.T) {
	srv, hits := countingServer(t, http.StatusInternalServerError, retryableBody)
	c := api.NewClient(srv.URL, api.WithRetryPolicy(api.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   200 * time.Millisecond,
		MaxDelay:    time.Second,
		Budget:      64,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Status(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v; backoff sleep not interrupted", elapsed)
	}
	if n := len(hits()); n != 1 {
		t.Fatalf("%d attempts within 50ms budget, want 1", n)
	}
}

// TestEveryMethodHonorsContext pins the ctx-first contract across the
// whole client surface: with an already-canceled context no method
// issues a request.
func TestEveryMethodHonorsContext(t *testing.T) {
	srv, hits := countingServer(t, http.StatusOK, `{}`)
	c := api.NewClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	user := identity.New("ctx-user", crypto.NewDRBGFromUint64(5, "retry-test"))
	tx := ledger.SignTx(user, identity.ZeroAddress, 0, 0, 50_000, nil)
	calls := map[string]func() error{
		"Status":        func() error { _, err := c.Status(ctx); return err },
		"Account":       func() error { _, err := c.Account(ctx, user.Address()); return err },
		"Block":         func() error { _, err := c.Block(ctx, 1); return err },
		"Receipt":       func() error { _, err := c.Receipt(ctx, tx.Hash()); return err },
		"Events":        func() error { _, err := c.Events(ctx, ""); return err },
		"EventsPage":    func() error { _, err := c.EventsPage(ctx, "", "", 1); return err },
		"Workloads":     func() error { _, err := c.Workloads(ctx); return err },
		"WorkloadsPage": func() error { _, err := c.WorkloadsPage(ctx, "", 1); return err },
		"Workload":      func() error { _, err := c.Workload(ctx, user.Address()); return err },
		"Logs":          func() error { _, err := c.Logs(ctx, ""); return err },
		"LogsPage":      func() error { _, err := c.LogsPage(ctx, "", "", 1); return err },
		"Healthz":       func() error { _, err := c.Healthz(ctx); return err },
		"SubmitTx":      func() error { _, err := c.SubmitTx(ctx, tx); return err },
		"View":          func() error { _, err := c.View(ctx, user.Address(), user.Address(), "m", nil); return err },
		"Seal":          func() error { _, err := c.Seal(ctx); return err },
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
	}
	if n := len(hits()); n != 0 {
		t.Fatalf("%d requests issued under a canceled context, want 0", n)
	}
}
