package api

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pds2/internal/core"
	"pds2/internal/crypto"
	"pds2/internal/gossip"
	"pds2/internal/ml"
	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

// TestErrorPathsReturnJSON pins the uniform error contract: unknown
// routes and wrong methods must answer with the same JSON error body the
// handlers use, not ServeMux's plain-text defaults.
func TestErrorPathsReturnJSON(t *testing.T) {
	srv, _, _ := testServer(t, false)
	cases := []struct {
		name      string
		method    string
		path      string
		wantCode  int
		wantAllow string
	}{
		{name: "unknown root path", method: http.MethodGet, path: "/nope", wantCode: http.StatusNotFound},
		{name: "unknown v1 path", method: http.MethodGet, path: "/v1/nope", wantCode: http.StatusNotFound},
		{name: "trailing noise", method: http.MethodGet, path: "/v1/status/extra", wantCode: http.StatusNotFound},
		{name: "delete on status", method: http.MethodDelete, path: "/v1/status", wantCode: http.StatusMethodNotAllowed, wantAllow: "GET"},
		{name: "get on transactions", method: http.MethodGet, path: "/v1/transactions", wantCode: http.StatusMethodNotAllowed, wantAllow: "POST"},
		{name: "put on views", method: http.MethodPut, path: "/v1/views", wantCode: http.StatusMethodNotAllowed, wantAllow: "POST"},
		{name: "post on metrics", method: http.MethodPost, path: "/metrics", wantCode: http.StatusMethodNotAllowed, wantAllow: "GET"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			if tc.wantAllow != "" && !strings.Contains(resp.Header.Get("Allow"), tc.wantAllow) {
				t.Fatalf("Allow = %q, want it to contain %q", resp.Header.Get("Allow"), tc.wantAllow)
			}
			body, _ := io.ReadAll(resp.Body)
			var e apiError
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("body is not the JSON error shape: %v (%q)", err, body)
			}
			if e.Error.Code == "" || e.Error.Message == "" {
				t.Fatalf("incomplete error envelope in %q", body)
			}
		})
	}
}

// newTestHTTPServer serves an existing market over httptest.
func newTestHTTPServer(t *testing.T, m *core.Market) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(m, false))
	t.Cleanup(srv.Close)
	return srv
}

// TestMetricsAndTraceEndpoints is the subsystem acceptance test: a full
// workload lifecycle plus a short gossip run must leave a /metrics
// snapshot covering the ledger, contract, market, gossip, tee and api
// families, and a /trace export containing the complete lifecycle span
// tree (submit → match → execute → settle under one root).
func TestMetricsAndTraceEndpoints(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()

	_, m, err := core.RunDetailed(core.Scenario{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	// The scenario path does not gossip; run a tiny gossip-learning sim
	// so the gossip family has data too.
	rng := crypto.NewDRBGFromUint64(7, "api-telemetry")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 200, Dim: 4}, rng)
	parts := data.PartitionIID(5, rng)
	net := simnet.New(simnet.Config{Seed: 7})
	runner, err := gossip.NewRunner(net, parts, gossip.Config{
		Cycle:        simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(4, 1e-3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	runner.Start()
	net.Run(20 * simnet.Second)

	srv := newTestHTTPServer(t, m)

	var snap telemetry.Snapshot
	if code := getJSON(t, srv.URL+"/metrics", &snap); code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("empty snapshot after a full scenario run")
	}
	families := map[string]bool{}
	for _, f := range snap.Families() {
		families[f] = true
	}
	for _, want := range []string{"ledger", "contract", "market", "gossip", "tee", "api"} {
		if !families[want] {
			t.Errorf("metric family %q missing from snapshot (have %v)", want, snap.Families())
		}
	}
	for name, check := range map[string]func(telemetry.Metric) bool{
		"ledger.block.seal_seconds":        func(m telemetry.Metric) bool { return m.Count > 0 },
		"ledger.tx.applied_total":          func(m telemetry.Metric) bool { return m.Value > 0 },
		"contract.calls_total":             func(m telemetry.Metric) bool { return m.Value > 0 },
		"market.workloads.submitted_total": func(m telemetry.Metric) bool { return m.Value >= 1 },
		"market.workloads.finalized_total": func(m telemetry.Metric) bool { return m.Value >= 1 },
		"gossip.messages_total":            func(m telemetry.Metric) bool { return m.Value > 0 },
		"tee.ecalls_total":                 func(m telemetry.Metric) bool { return m.Value > 0 },
	} {
		metric, ok := snap.Get(name)
		if !ok {
			t.Errorf("metric %q missing", name)
			continue
		}
		if !check(metric) {
			t.Errorf("metric %q has no data: %+v", name, metric)
		}
	}

	var trace telemetry.Trace
	if code := getJSON(t, srv.URL+"/trace", &trace); code != http.StatusOK {
		t.Fatalf("GET /trace: %d", code)
	}
	var root *telemetry.Span
	for i := range trace.Spans {
		if trace.Spans[i].Name == "workload.lifecycle" {
			root = &trace.Spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no workload.lifecycle span in trace (%d spans)", len(trace.Spans))
	}
	if root.Attrs["workload"] == "" {
		t.Error("lifecycle root has no workload attribute")
	}
	children := map[string]bool{}
	for _, sp := range trace.Spans {
		if sp.Parent == root.ID {
			children[sp.Name] = true
		}
	}
	for _, stage := range []string{"workload.submit", "workload.match", "workload.execute", "workload.settle"} {
		if !children[stage] {
			t.Errorf("stage span %q missing under lifecycle root (have %v)", stage, children)
		}
	}
}
