package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/token"
)

// seedEvents fires n ERC-20 transfers through the market so the audit
// log holds a known batch of Transfer events, and returns the total
// event count on the chain.
func seedEvents(t *testing.T, m *market.Market, user *identity.Identity, n int) int {
	t.Helper()
	deploy := m.SignedTx(user, identity.ZeroAddress, 0,
		contract.DeployData(token.ERC20CodeName, token.ERC20InitArgs("Page", "PG", 1_000_000)))
	if err := m.Submit(deploy); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SealBlock(); err != nil {
		t.Fatal(err)
	}
	rcpt, ok := m.Chain.Receipt(deploy.Hash())
	if !ok || !rcpt.Succeeded() {
		t.Fatalf("deploy: %+v", rcpt)
	}
	var tok identity.Address
	copy(tok[:], rcpt.Return)
	for i := 0; i < n; i++ {
		if _, err := market.MustSucceed(m.SendAndSeal(user, tok,
			0, token.ERC20TransferData(user.Address(), 1))); err != nil {
			t.Fatal(err)
		}
	}
	return len(m.Chain.Events(""))
}

// TestEventsPaginationWalk pages through the full event log with a
// small limit and checks the concatenation is exactly the unpaginated
// sequence — no duplicates, no gaps at page boundaries.
func TestEventsPaginationWalk(t *testing.T) {
	srv, m, user := testServer(t, false)
	total := seedEvents(t, m, user, 7)
	if total < 8 {
		t.Fatalf("only %d events seeded", total)
	}

	var full EventsResponse
	if code := getJSON(t, srv.URL+"/v1/events?limit=1000", &full); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(full.Items) != total || full.Next != "" {
		t.Fatalf("full fetch: %d items, next %q", len(full.Items), full.Next)
	}

	var walked []ledger.Event
	after, pages := "", 0
	for {
		url := srv.URL + "/v1/events?limit=3"
		if after != "" {
			url += "&after=" + after
		}
		var page EventsResponse
		if code := getJSON(t, url, &page); code != http.StatusOK {
			t.Fatalf("page %d: code %d", pages, code)
		}
		if page.Next != "" && len(page.Items) != 3 {
			t.Fatalf("non-final page %d has %d items", pages, len(page.Items))
		}
		walked = append(walked, page.Items...)
		pages++
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if len(walked) != total {
		t.Fatalf("walk yielded %d events, want %d (in %d pages)", len(walked), total, pages)
	}
	for i := range walked {
		a, _ := json.Marshal(walked[i])
		b, _ := json.Marshal(full.Items[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("event %d differs between walk and full fetch", i)
		}
	}
}

// TestEventsPaginationBoundaries pins the off-by-one cases: a limit
// exactly equal to the remainder must not emit a next cursor, one
// below must, and the final cursor lands on an empty page.
func TestEventsPaginationBoundaries(t *testing.T) {
	srv, m, user := testServer(t, false)
	total := seedEvents(t, m, user, 5)

	// limit == total: everything in one page, no cursor.
	var page EventsResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/events?limit=%d", srv.URL, total), &page); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(page.Items) != total || page.Next != "" {
		t.Fatalf("limit=total: %d items, next %q", len(page.Items), page.Next)
	}

	// limit == total-1: one short, cursor present, second page has 1.
	var short EventsResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/events?limit=%d", srv.URL, total-1), &short); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(short.Items) != total-1 || short.Next == "" {
		t.Fatalf("limit=total-1: %d items, next %q", len(short.Items), short.Next)
	}
	var final EventsResponse
	if code := getJSON(t, fmt.Sprintf("%s/v1/events?limit=%d&after=%s", srv.URL, total-1, short.Next), &final); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(final.Items) != 1 || final.Next != "" {
		t.Fatalf("final page: %d items, next %q", len(final.Items), final.Next)
	}

	// A cursor at or past the end is a valid empty page, not an error —
	// a client holding a stale cursor from before a restart must not
	// crash-loop on 4xx.
	for _, after := range []string{fmt.Sprint(total), "1000000"} {
		var stale EventsResponse
		if code := getJSON(t, srv.URL+"/v1/events?after="+after, &stale); code != http.StatusOK {
			t.Fatalf("stale cursor %s: code %d", after, code)
		}
		if len(stale.Items) != 0 || stale.Next != "" {
			t.Fatalf("stale cursor %s: %d items, next %q", after, len(stale.Items), stale.Next)
		}
	}

	// Garbage cursors and limits are client errors.
	for _, q := range []string{"after=abc", "after=-1", "limit=0", "limit=-2", "limit=xyz"} {
		if code := getJSON(t, srv.URL+"/v1/events?"+q, nil); code != http.StatusBadRequest {
			t.Fatalf("%s: code %d, want 400", q, code)
		}
	}
}

// TestWorkloadsPaginationWalk walks the address-ordered workload pages
// and checks the cursor survives what offset cursors cannot: it is the
// last address served, so every workload appears exactly once.
func TestWorkloadsPaginationWalk(t *testing.T) {
	srv, m, user := testServer(t, false)
	consumer, err := market.NewConsumer(m, user)
	if err != nil {
		t.Fatal(err)
	}
	params := market.TrainerParams{Dim: 4, Epochs: 1, Lambda: 1e-3}
	want := make(map[string]bool)
	for i := 0; i < 5; i++ {
		spec := &market.Spec{
			Predicate:      `category isa "sensor"`,
			MinProviders:   1,
			MinItems:       1,
			ExpiryHeight:   m.Height() + 1000,
			ExecutorFeeBps: 500,
			Measurement:    market.TrainerMeasurement(params.Encode()),
			QAPub:          m.QA.PublicKey(),
			Params:         params.Encode(),
		}
		addr, err := consumer.SubmitWorkload(spec, 1_000)
		if err != nil {
			t.Fatal(err)
		}
		want[addr.Hex()] = true
	}

	var got []string
	after := ""
	for {
		url := srv.URL + "/v1/workloads?limit=2"
		if after != "" {
			url += "&after=" + after
		}
		var page WorkloadsResponse
		if code := getJSON(t, url, &page); code != http.StatusOK {
			t.Fatalf("code %d", code)
		}
		for _, it := range page.Items {
			got = append(got, it.Address.Hex())
		}
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if len(got) != len(want) {
		t.Fatalf("walked %d workloads, want %d", len(got), len(want))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatalf("pages not address-ordered: %v", got)
	}
	for _, h := range got {
		if !want[h] {
			t.Fatalf("unexpected workload %s", h)
		}
		delete(want, h)
	}

	// A cursor beyond every address yields an empty final page.
	var page WorkloadsResponse
	if code := getJSON(t, srv.URL+"/v1/workloads?after=ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff", &page); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(page.Items) != 0 || page.Next != "" {
		t.Fatalf("past-the-end cursor: %+v", page)
	}
}

// TestIdempotencyReplayAfterRestart pins the cross-restart contract: a
// client that retries a submission against a freshly restarted node —
// new server process, same chain — must get the cached Committed
// verdict, not a second admission that would burn the nonce again.
func TestIdempotencyReplayAfterRestart(t *testing.T) {
	srv, m, user := testServer(t, true)
	to := identity.New("to", crypto.NewDRBGFromUint64(55, "idem-restart"))
	tx := ledger.SignTx(user, to.Address(), 77, 0, 50_000, nil)
	body, _ := json.Marshal(tx)

	post := func(base string) (int, SubmitResponse) {
		req, _ := http.NewRequest(http.MethodPost, base+"/v1/transactions", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(IdempotencyHeader, tx.Hash().Hex())
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sub SubmitResponse
		json.NewDecoder(resp.Body).Decode(&sub)
		return resp.StatusCode, sub
	}

	if code, sub := post(srv.URL); code != http.StatusAccepted || !sub.Queued {
		t.Fatalf("first submit: %d %+v", code, sub)
	}
	if resp, err := http.Post(srv.URL+"/v1/blocks/seal", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	nonceAfter := m.Chain.State().Nonce(user.Address())
	balAfter := m.Chain.State().Balance(to.Address())

	// "Restart": a brand-new server over the same market state. The
	// mempool no longer remembers the hash, so the handler must fall
	// through to the chain's receipt index.
	srv2 := httptest.NewServer(NewServer(m, true))
	defer srv2.Close()
	code, sub := post(srv2.URL)
	if code != http.StatusAccepted || !sub.Committed || sub.Queued {
		t.Fatalf("replay after restart: %d %+v", code, sub)
	}
	if got := m.Chain.State().Nonce(user.Address()); got != nonceAfter {
		t.Fatalf("nonce moved on replay: %d -> %d", nonceAfter, got)
	}
	if got := m.Chain.State().Balance(to.Address()); got != balAfter {
		t.Fatalf("balance moved on replay: %d -> %d", balAfter, got)
	}
	// Sealing again must not re-include it either.
	resp, err := http.Post(srv2.URL+"/v1/blocks/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var seal SealResponse
	json.NewDecoder(resp.Body).Decode(&seal)
	resp.Body.Close()
	if seal.Txs != 0 {
		t.Fatalf("replayed tx re-sealed: %d txs", seal.Txs)
	}
}
