// Package api exposes a PDS² governance node over HTTP: chain and
// account inspection, the on-chain audit log, workload directory and
// lifecycle views, signed-transaction submission and (for the node
// operator) block sealing. It is the integration surface a real
// deployment would put in front of internal/market — wallets, provider
// agents and executor daemons all speak this API.
//
// All responses are JSON. The server serializes access to the
// underlying market, which is not safe for concurrent use — except
// transaction admission, which goes straight to the self-synchronized
// mempool so submissions from many clients verify in parallel.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

// API instrumentation: request volume and handler latency, including the
// market-mutex wait, which is what a client actually experiences.
var (
	mAPIRequests = telemetry.C("api.requests_total")
	mAPIErrors   = telemetry.C("api.errors_total")
	mAPISeconds  = telemetry.H("api.request_seconds", telemetry.TimeBuckets)
	logAPI       = telemetry.L("api")
)

// TraceHeader carries the caller's span context ("%016x-%016x":
// trace-hash, span-hash) on requests, and the server's own request-span
// context on responses, so client and server spans stitch into one
// distributed trace.
const TraceHeader = "X-PDS2-Trace"

// Server is the HTTP front end of one governance node.
type Server struct {
	mu sync.Mutex
	m  *market.Market

	// AllowSeal enables POST /v1/blocks/seal, which a public gateway
	// would keep disabled (only the authority's own node seals).
	AllowSeal bool

	mux    *http.ServeMux
	health *telemetry.Health

	// lastHeight tracks chain progress between health evaluations for
	// the ledger.chain check. Guarded by s.mu.
	lastHeight uint64
}

// NewServer wraps a market.
func NewServer(m *market.Market, allowSeal bool) *Server {
	s := &Server{m: m, AllowSeal: allowSeal, mux: http.NewServeMux()}
	s.health = telemetry.NewHealth(telemetry.Default())
	s.health.Register("ledger.chain", s.checkChain)
	s.health.Register("ledger.mempool", s.checkMempool)
	s.health.Register("market.executors", market.ExecutorHeartbeat.Check)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/blocks/{height}", s.handleBlock)
	s.mux.HandleFunc("GET /v1/accounts/{addr}", s.handleAccount)
	s.mux.HandleFunc("GET /v1/receipts/{hash}", s.handleReceipt)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/workloads/{addr}", s.handleWorkload)
	s.mux.HandleFunc("POST /v1/transactions", s.handleSubmitTx)
	s.mux.HandleFunc("POST /v1/views", s.handleView)
	s.mux.HandleFunc("POST /v1/blocks/seal", s.handleSeal)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	s.mux.HandleFunc("GET /logs", s.handleLogs)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s
}

// Health exposes the server's health aggregator so deployments can
// register additional component checks (e.g. gossip connectivity).
func (s *Server) Health() *telemetry.Health { return s.health }

// ServeHTTP implements http.Handler. ServeMux answers unmatched routes
// and wrong methods with plain-text errors; to keep the JSON error
// contract uniform, those verdicts are captured on a probe writer and
// re-emitted through writeErr.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mAPIRequests.Inc()
	timer := mAPISeconds.Time()
	defer timer.Stop()
	// Continue the caller's trace when the request carries a context;
	// a bad header is ignored (tracing must never fail a request).
	parent, _ := telemetry.ParseSpanContext(r.Header.Get(TraceHeader))
	span := telemetry.StartSpan("api.request", parent)
	if span != nil {
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		w.Header().Set(TraceHeader, span.Context().String())
		defer span.End()
	}
	logAPI.Debug("request", telemetry.Str("method", r.Method), telemetry.Str("path", r.URL.Path))
	if _, pattern := s.mux.Handler(r); pattern == "" {
		probe := &probeWriter{header: make(http.Header)}
		s.mux.ServeHTTP(probe, r)
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		status := probe.status
		if status == 0 {
			status = http.StatusNotFound
		}
		if status == http.StatusMethodNotAllowed {
			writeErr(w, status, "method %s not allowed for %s", r.Method, r.URL.Path)
		} else {
			writeErr(w, status, "no route for %s %s", r.Method, r.URL.Path)
		}
		return
	}
	s.mux.ServeHTTP(w, r)
}

// probeWriter records ServeMux's status and headers, discarding the body.
type probeWriter struct {
	header http.Header
	status int
}

func (p *probeWriter) Header() http.Header { return p.header }

func (p *probeWriter) Write(b []byte) (int, error) { return len(b), nil }

func (p *probeWriter) WriteHeader(status int) {
	if p.status == 0 {
		p.status = status
	}
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	mAPIErrors.Inc()
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// StatusResponse is the GET /v1/status body.
type StatusResponse struct {
	Height    uint64           `json:"height"`
	Registry  identity.Address `json:"registry"`
	Deeds     identity.Address `json:"deeds"`
	QAPub     []byte           `json:"qa_pub"`
	Workloads int              `json:"workloads"`
	Pending   int              `json:"pending_txs"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wls, err := s.m.Workloads()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "list workloads: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Height:    s.m.Height(),
		Registry:  s.m.Registry,
		Deeds:     s.m.Deeds,
		QAPub:     s.m.QA.PublicKey(),
		Workloads: len(wls),
		Pending:   s.m.Pool.Len(),
	})
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	h, err := strconv.ParseUint(r.PathValue("height"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad height: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	block, err := s.m.Chain.BlockAt(h)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, block)
}

// AccountResponse is the GET /v1/accounts/{addr} body.
type AccountResponse struct {
	Address identity.Address `json:"address"`
	Balance uint64           `json:"balance"`
	Nonce   uint64           `json:"nonce"`
}

func (s *Server) handleAccount(w http.ResponseWriter, r *http.Request) {
	addr, err := identity.AddressFromHex(r.PathValue("addr"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad address: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, AccountResponse{
		Address: addr,
		Balance: s.m.Chain.State().Balance(addr),
		Nonce:   s.m.Chain.State().Nonce(addr),
	})
}

func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	hash, err := crypto.DigestFromHex(r.PathValue("hash"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad hash: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rcpt, ok := s.m.Chain.Receipt(hash)
	if !ok {
		writeErr(w, http.StatusNotFound, "no receipt for %s", hash.Short())
		return
	}
	writeJSON(w, http.StatusOK, rcpt)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	contractHex := r.URL.Query().Get("contract")
	s.mu.Lock()
	defer s.mu.Unlock()
	var events []ledger.Event
	if contractHex != "" {
		addr, err := identity.AddressFromHex(contractHex)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad contract: %v", err)
			return
		}
		events = s.m.Chain.EventsFrom(addr, topic)
	} else {
		events = s.m.Chain.Events(topic)
	}
	if events == nil {
		events = []ledger.Event{}
	}
	writeJSON(w, http.StatusOK, events)
}

// WorkloadSummary is one entry of GET /v1/workloads.
type WorkloadSummary struct {
	Address identity.Address `json:"address"`
	State   string           `json:"state"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs, err := s.m.Workloads()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]WorkloadSummary, 0, len(addrs))
	for _, a := range addrs {
		st, err := s.m.WorkloadStateOf(a)
		if err != nil {
			continue
		}
		out = append(out, WorkloadSummary{Address: a, State: st.String()})
	}
	writeJSON(w, http.StatusOK, out)
}

// WorkloadDetail is the GET /v1/workloads/{addr} body.
type WorkloadDetail struct {
	Address      identity.Address `json:"address"`
	State        string           `json:"state"`
	Predicate    string           `json:"predicate"`
	MinProviders uint64           `json:"min_providers"`
	MinItems     uint64           `json:"min_items"`
	ExpiryHeight uint64           `json:"expiry_height"`
	FeeBps       uint64           `json:"executor_fee_bps"`
	Measurement  crypto.Digest    `json:"measurement"`
	Providers    uint64           `json:"providers"`
	Items        uint64           `json:"items"`
	Executors    uint64           `json:"executors"`
	Results      uint64           `json:"results"`
	ResultHash   *crypto.Digest   `json:"result_hash,omitempty"`
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	addr, err := identity.AddressFromHex(r.PathValue("addr"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad address: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.m.WorkloadStateOf(addr)
	if err != nil {
		writeErr(w, http.StatusNotFound, "not a workload: %v", err)
		return
	}
	spec, err := s.m.WorkloadSpecOf(addr)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	detail := WorkloadDetail{
		Address:      addr,
		State:        st.String(),
		Predicate:    spec.Predicate,
		MinProviders: spec.MinProviders,
		MinItems:     spec.MinItems,
		ExpiryHeight: spec.ExpiryHeight,
		FeeBps:       spec.ExecutorFeeBps,
		Measurement:  spec.Measurement,
	}
	if raw, err := s.m.View(identity.ZeroAddress, addr, "progress", nil); err == nil {
		d := contract.NewDecoder(raw)
		detail.Providers, _ = d.Uint64()
		detail.Items, _ = d.Uint64()
		detail.Executors, _ = d.Uint64()
		detail.Results, _ = d.Uint64()
	}
	if hash, _, err := s.m.WorkloadResultOf(addr); err == nil && !hash.IsZero() {
		detail.ResultHash = &hash
	}
	writeJSON(w, http.StatusOK, detail)
}

// SubmitResponse is the POST /v1/transactions body.
type SubmitResponse struct {
	TxHash crypto.Digest `json:"tx_hash"`
	Queued bool          `json:"queued"`
}

func (s *Server) handleSubmitTx(w http.ResponseWriter, r *http.Request) {
	var tx ledger.Transaction
	if err := json.NewDecoder(r.Body).Decode(&tx); err != nil {
		writeErr(w, http.StatusBadRequest, "bad transaction: %v", err)
		return
	}
	// Fast path: admission touches only the mempool, which is safe for
	// concurrent use, so handler goroutines admit without the market
	// mutex — signature verification of concurrent submissions runs in
	// parallel instead of queuing behind block sealing.
	err := s.m.Pool.Add(&tx)
	if errors.Is(err, ledger.ErrMempoolFull) {
		// Full pool: Market.Submit prunes stale entries against chain
		// state and retries, which needs the market lock.
		s.mu.Lock()
		err = s.m.Submit(&tx)
		s.mu.Unlock()
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ledger.ErrMempoolFull) {
			status = http.StatusServiceUnavailable
		}
		writeErr(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{TxHash: tx.Hash(), Queued: true})
}

// ViewRequest is the POST /v1/views body: a read-only contract call.
// Args carry the ABI-encoded method arguments (base64 in JSON).
type ViewRequest struct {
	Caller identity.Address `json:"caller"`
	To     identity.Address `json:"to"`
	Method string           `json:"method"`
	Args   []byte           `json:"args,omitempty"`
}

// ViewResponse is the POST /v1/views body: the ABI-encoded return value.
type ViewResponse struct {
	Return []byte `json:"return"`
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	var req ViewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad view request: %v", err)
		return
	}
	if req.Method == "" {
		writeErr(w, http.StatusBadRequest, "missing method")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ret, err := s.m.View(req.Caller, req.To, req.Method, req.Args)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "view reverted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ViewResponse{Return: ret})
}

// SealResponse is the POST /v1/blocks/seal body.
type SealResponse struct {
	Height uint64 `json:"height"`
	Txs    int    `json:"txs"`
}

func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	if !s.AllowSeal {
		writeErr(w, http.StatusForbidden, "sealing disabled on this node")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	block, err := s.m.SealBlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SealResponse{Height: block.Header.Height, Txs: len(block.Txs)})
}

// handleMetrics serves GET /metrics: a JSON snapshot of the process-wide
// telemetry registry. Counters and gauges report their current value;
// histograms add count/sum/min/max and p50/p95/p99. When telemetry is
// disabled the snapshot would be a misleading all-zeros, so the endpoint
// answers 503 with a stable JSON error instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !telemetry.Default().Enabled() {
		writeErr(w, http.StatusServiceUnavailable, "telemetry disabled on this node")
		return
	}
	writeJSON(w, http.StatusOK, telemetry.Default().Snapshot())
}

// handleTrace serves GET /trace: the finished spans currently held in the
// tracer's ring buffer, oldest first, with parent linkage intact. Like
// /metrics it answers 503 while telemetry is disabled.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !telemetry.Default().Enabled() {
		writeErr(w, http.StatusServiceUnavailable, "telemetry disabled on this node")
		return
	}
	writeJSON(w, http.StatusOK, telemetry.Default().Tracer().Export())
}

// LogsResponse is the GET /logs body.
type LogsResponse struct {
	Components []string             `json:"components"`
	Events     []telemetry.LogEvent `json:"events"`
}

// handleLogs serves GET /logs: the structured-log ring, oldest first.
// ?component=X filters to one component; the ring itself is always
// served — an all-off log simply has no events.
func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	l := telemetry.DefaultLog()
	events := l.Events()
	if comp := r.URL.Query().Get("component"); comp != "" {
		filtered := events[:0]
		for _, e := range events {
			if e.Component == comp {
				filtered = append(filtered, e)
			}
		}
		events = filtered
	}
	if events == nil {
		events = []telemetry.LogEvent{}
	}
	writeJSON(w, http.StatusOK, LogsResponse{Components: l.Components(), Events: events})
}

// checkChain verifies the chain exists and reports whether it advanced
// since the previous evaluation — a sealed-but-stuck chain shows up as
// a non-advancing height detail rather than a state change, since many
// deployments legitimately idle between workloads.
func (s *Server) checkChain() telemetry.CheckResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.m.Height()
	advanced := h > s.lastHeight
	s.lastHeight = h
	if advanced {
		return telemetry.OK(fmt.Sprintf("height %d, advancing", h))
	}
	return telemetry.OK(fmt.Sprintf("height %d", h))
}

// checkMempool flags pool saturation: Degraded at 90% of capacity,
// Unhealthy when full (admissions are being rejected).
func (s *Server) checkMempool() telemetry.CheckResult {
	depth, capacity := s.m.Pool.Len(), s.m.Pool.Cap()
	switch {
	case depth >= capacity:
		return telemetry.UnhealthyResult(fmt.Sprintf("mempool full: %d/%d", depth, capacity))
	case depth*10 >= capacity*9:
		return telemetry.DegradedResult(fmt.Sprintf("mempool at %d/%d", depth, capacity))
	default:
		return telemetry.OK(fmt.Sprintf("%d/%d pending", depth, capacity))
	}
}

// handleHealthz serves GET /healthz: the full component report. The
// status code is 200 unless the node is Unhealthy (503) — a Degraded
// node still serves traffic, so liveness probes must not kill it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	report := s.health.Evaluate()
	status := http.StatusOK
	if report.Status == telemetry.Unhealthy {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, report)
}

// handleReadyz serves GET /readyz: 200 only when fully Healthy, so load
// balancers drain Degraded nodes while /healthz keeps them alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	report := s.health.Evaluate()
	status := http.StatusOK
	if report.Status != telemetry.Healthy {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, report)
}
