// Package api exposes a PDS² governance node over HTTP: chain and
// account inspection, the on-chain audit log, workload directory and
// lifecycle views, signed-transaction submission and (for the node
// operator) block sealing. It is the integration surface a real
// deployment would put in front of internal/market — wallets, provider
// agents and executor daemons all speak this API.
//
// All responses are JSON. The server serializes access to the
// underlying market, which is not safe for concurrent use — except
// transaction admission, which goes straight to the self-synchronized
// mempool so submissions from many clients verify in parallel.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

// API instrumentation: request volume and handler latency, including the
// market-mutex wait, which is what a client actually experiences; plus
// the load-shedding counter pinned by the chaos harness.
var (
	mAPIRequests = telemetry.C("api.requests_total")
	mAPIErrors   = telemetry.C("api.errors_total")
	mAPIShed     = telemetry.C("api.shed_total")
	mAPISeconds  = telemetry.H("api.request_seconds", telemetry.TimeBuckets)
	logAPI       = telemetry.L("api")
)

// TraceHeader carries the caller's span context ("%016x-%016x":
// trace-hash, span-hash) on requests, and the server's own request-span
// context on responses, so client and server spans stitch into one
// distributed trace.
const TraceHeader = "X-PDS2-Trace"

// DefaultRequestTimeout bounds each request's context unless overridden
// with SetRequestTimeout.
const DefaultRequestTimeout = 15 * time.Second

// Server is the HTTP front end of one governance node.
type Server struct {
	mu sync.Mutex
	m  *market.Market

	// AllowSeal enables POST /v1/blocks/seal, which a public gateway
	// would keep disabled (only the authority's own node seals).
	AllowSeal bool

	mux    *http.ServeMux
	health *telemetry.Health

	// reqTimeout bounds each request's context (see SetRequestTimeout).
	reqTimeout time.Duration

	// draining makes /readyz fail so load balancers stop routing here
	// while in-flight requests finish (graceful shutdown).
	draining atomic.Bool

	// sealSkew, when set, supplies a logical-clock offset applied to
	// the next seal — the fault-injection hook for clock-skew chaos.
	sealSkew func() int64

	// pprofOn gates the /debug/pprof/ routes. They are always mounted
	// (ServeMux cannot unregister) but answer a machine-readable 503
	// until SetPprof(true) — profiling stays an explicit operator
	// decision, never an accidental default on a public gateway.
	pprofOn atomic.Bool

	// lastHeight tracks chain progress between health evaluations for
	// the ledger.chain check. Guarded by s.mu.
	lastHeight uint64
}

// NewServer wraps a market.
func NewServer(m *market.Market, allowSeal bool) *Server {
	s := &Server{m: m, AllowSeal: allowSeal, mux: http.NewServeMux(), reqTimeout: DefaultRequestTimeout}
	s.health = telemetry.NewHealth(telemetry.Default())
	s.health.Register("ledger.chain", s.checkChain)
	s.health.Register("ledger.mempool", s.checkMempool)
	s.health.Register("market.executors", market.ExecutorHeartbeat.Check)
	if st := m.Store(); st != nil {
		// Durable node: the disk-backed store participates in the
		// worst-wins aggregate (degraded on slow fsync, unhealthy on
		// write errors), so /readyz stops routing traffic to a node
		// that can no longer persist what it seals.
		s.health.Register("chainstore", st.Health)
	}
	// Every endpoint — including the /debug/pprof/ surface and the /v1/
	// aliases of the operational routes — registers through the
	// declarative route table (see routes.go).
	s.install()
	return s
}

// SetPprof enables or disables the /debug/pprof/ routes at runtime.
func (s *Server) SetPprof(on bool) { s.pprofOn.Store(on) }

// PprofEnabled reports whether the pprof routes are live.
func (s *Server) PprofEnabled() bool { return s.pprofOn.Load() }

// pprofGuard wraps a pprof handler so it answers the standard disabled
// envelope until the operator turns profiling on.
func (s *Server) pprofGuard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.pprofOn.Load() {
			writeErr(w, http.StatusServiceUnavailable, CodeDisabled, "pprof disabled on this node (enable with -pprof)")
			return
		}
		h(w, r)
	}
}

// Health exposes the server's health aggregator so deployments can
// register additional component checks (e.g. gossip connectivity).
func (s *Server) Health() *telemetry.Health { return s.health }

// SetRequestTimeout bounds every request's context (0 disables the
// per-request deadline). Handlers observe the deadline before starting
// expensive work, so a stalled client cannot pin the market mutex.
func (s *Server) SetRequestTimeout(d time.Duration) { s.reqTimeout = d }

// SetDraining flips the drain flag: a draining node answers /readyz
// with 503 (load balancers stop routing) while every other endpoint
// keeps serving, so in-flight work finishes before Shutdown.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports whether the node is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetSealSkew installs a fault-injection hook supplying a logical-clock
// offset for each seal (nil removes it). Used by chaos runs to exercise
// the chain's timestamp monotonicity checks.
func (s *Server) SetSealSkew(fn func() int64) { s.sealSkew = fn }

// ServeHTTP implements http.Handler. ServeMux answers unmatched routes
// and wrong methods with plain-text errors; to keep the JSON error
// contract uniform, those verdicts are captured on a probe writer and
// re-emitted through writeErr.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mAPIRequests.Inc()
	timer := mAPISeconds.Time()
	defer timer.Stop()
	// Continue the caller's trace when the request carries a context;
	// a bad header is ignored (tracing must never fail a request).
	parent, _ := telemetry.ParseSpanContext(r.Header.Get(TraceHeader))
	span := telemetry.StartSpan("api.request", parent)
	if span != nil {
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		w.Header().Set(TraceHeader, span.Context().String())
		defer span.End()
	}
	logAPI.Debug("request", telemetry.Str("method", r.Method), telemetry.Str("path", r.URL.Path))
	// The per-request deadline is applied per route (withTimeout in
	// routes.go), so timeout-exempt routes such as pprof collection are
	// declared in the table instead of special-cased here.
	if _, pattern := s.mux.Handler(r); pattern == "" {
		probe := &probeWriter{header: make(http.Header)}
		s.mux.ServeHTTP(probe, r)
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		status := probe.status
		if status == 0 {
			status = http.StatusNotFound
		}
		if status == http.StatusMethodNotAllowed {
			writeErr(w, status, CodeMethodNotAllowed, "method %s not allowed for %s", r.Method, r.URL.Path)
		} else {
			writeErr(w, status, CodeNoRoute, "no route for %s %s", r.Method, r.URL.Path)
		}
		return
	}
	s.mux.ServeHTTP(w, r)
}

// probeWriter records ServeMux's status and headers, discarding the body.
type probeWriter struct {
	header http.Header
	status int
}

func (p *probeWriter) Header() http.Header { return p.header }

func (p *probeWriter) Write(b []byte) (int, error) { return len(b), nil }

func (p *probeWriter) WriteHeader(status int) {
	if p.status == 0 {
		p.status = status
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits the uniform error envelope. Retryability is derived
// from the code's truth table, so clients never have to interpret raw
// status numbers.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	mAPIErrors.Inc()
	writeJSON(w, status, apiError{Error: ErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: retryableCode[code],
	}})
}

// writeErrDetails is writeErr with a structured details object attached
// to the envelope (policy denials name their violated clause and layer).
func writeErrDetails(w http.ResponseWriter, status int, code string, det *ErrorDetails, format string, args ...any) {
	mAPIErrors.Inc()
	writeJSON(w, status, apiError{Error: ErrorBody{
		Code:      code,
		Message:   fmt.Sprintf(format, args...),
		Retryable: retryableCode[code],
		Details:   det,
	}})
}

// deadlineExceeded answers requests whose context expired before the
// handler could do its work, and reports whether it fired.
func deadlineExceeded(w http.ResponseWriter, r *http.Request) bool {
	if err := r.Context().Err(); err != nil {
		writeErr(w, http.StatusServiceUnavailable, CodeTimeout, "request deadline exceeded: %v", err)
		return true
	}
	return false
}

// StatusResponse is the GET /v1/status body.
type StatusResponse struct {
	Height    uint64           `json:"height"`
	Registry  identity.Address `json:"registry"`
	Deeds     identity.Address `json:"deeds"`
	QAPub     []byte           `json:"qa_pub"`
	Workloads int              `json:"workloads"`
	Pending   int              `json:"pending_txs"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wls, err := s.m.Workloads()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, "list workloads: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, StatusResponse{
		Height:    s.m.Height(),
		Registry:  s.m.Registry,
		Deeds:     s.m.Deeds,
		QAPub:     s.m.QA.PublicKey(),
		Workloads: len(wls),
		Pending:   s.m.Pool.Len(),
	})
}

func (s *Server) handleBlock(w http.ResponseWriter, r *http.Request) {
	h, err := strconv.ParseUint(r.PathValue("height"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad height: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	block, err := s.m.Chain.BlockAt(h)
	if err != nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, block)
}

// AccountResponse is the GET /v1/accounts/{addr} body.
type AccountResponse struct {
	Address identity.Address `json:"address"`
	Balance uint64           `json:"balance"`
	Nonce   uint64           `json:"nonce"`
}

func (s *Server) handleAccount(w http.ResponseWriter, r *http.Request) {
	addr, err := identity.AddressFromHex(r.PathValue("addr"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad address: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, http.StatusOK, AccountResponse{
		Address: addr,
		Balance: s.m.Chain.State().Balance(addr),
		Nonce:   s.m.Chain.State().Nonce(addr),
	})
}

func (s *Server) handleReceipt(w http.ResponseWriter, r *http.Request) {
	hash, err := crypto.DigestFromHex(r.PathValue("hash"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad hash: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rcpt, ok := s.m.Chain.Receipt(hash)
	if !ok {
		writeErr(w, http.StatusNotFound, CodeNotFound, "no receipt for %s", hash.Short())
		return
	}
	writeJSON(w, http.StatusOK, rcpt)
}

// DefaultPageLimit bounds list endpoints when the caller sends no
// ?limit; explicit limits are capped at MaxPageLimit.
const (
	DefaultPageLimit = 256
	MaxPageLimit     = 1024
)

// pageParams parses the uniform ?after / ?limit pagination query.
func pageParams(r *http.Request) (after string, limit int, err error) {
	q := r.URL.Query()
	after = q.Get("after")
	limit = DefaultPageLimit
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit <= 0 {
			return "", 0, fmt.Errorf("bad limit %q", raw)
		}
		if limit > MaxPageLimit {
			limit = MaxPageLimit
		}
	}
	return after, limit, nil
}

// EventsResponse is the GET /v1/events page envelope. Next is the
// cursor for the following page, empty on the last one.
type EventsResponse struct {
	Items []ledger.Event `json:"items"`
	Next  string         `json:"next,omitempty"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	topic := r.URL.Query().Get("topic")
	contractHex := r.URL.Query().Get("contract")
	after, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	// The audit log is append-only and the filter is deterministic, so a
	// plain offset into the filtered sequence is a stable cursor: earlier
	// entries never move, later pages only ever gain entries at the end.
	offset := 0
	if after != "" {
		offset, err = strconv.Atoi(after)
		if err != nil || offset < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad cursor %q", after)
			return
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var events []ledger.Event
	if contractHex != "" {
		addr, err := identity.AddressFromHex(contractHex)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad contract: %v", err)
			return
		}
		events = s.m.Chain.EventsFrom(addr, topic)
	} else {
		events = s.m.Chain.Events(topic)
	}
	if offset > len(events) {
		offset = len(events)
	}
	page := events[offset:]
	resp := EventsResponse{}
	if len(page) > limit {
		page = page[:limit]
		resp.Next = strconv.Itoa(offset + limit)
	}
	resp.Items = page
	if resp.Items == nil {
		resp.Items = []ledger.Event{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// WorkloadSummary is one entry of GET /v1/workloads.
type WorkloadSummary struct {
	Address identity.Address `json:"address"`
	State   string           `json:"state"`
}

// WorkloadsResponse is the GET /v1/workloads page envelope. Pages are
// ordered by address; Next is the last address of the page, empty on
// the final one.
type WorkloadsResponse struct {
	Items []WorkloadSummary `json:"items"`
	Next  string            `json:"next,omitempty"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	after, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	addrs, err := s.m.Workloads()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	// Addresses sort lexically by hex, giving a stable total order: the
	// cursor is simply the last address served, immune to insertions
	// before or after it between pages.
	hexes := make([]string, 0, len(addrs))
	byHex := make(map[string]identity.Address, len(addrs))
	for _, a := range addrs {
		h := a.Hex()
		hexes = append(hexes, h)
		byHex[h] = a
	}
	sort.Strings(hexes)
	resp := WorkloadsResponse{Items: []WorkloadSummary{}}
	for _, h := range hexes {
		if after != "" && h <= after {
			continue
		}
		if len(resp.Items) == limit {
			resp.Next = resp.Items[len(resp.Items)-1].Address.Hex()
			break
		}
		st, err := s.m.WorkloadStateOf(byHex[h])
		if err != nil {
			continue
		}
		resp.Items = append(resp.Items, WorkloadSummary{Address: byHex[h], State: st.String()})
	}
	writeJSON(w, http.StatusOK, resp)
}

// WorkloadDetail is the GET /v1/workloads/{addr} body.
type WorkloadDetail struct {
	Address      identity.Address `json:"address"`
	State        string           `json:"state"`
	Predicate    string           `json:"predicate"`
	MinProviders uint64           `json:"min_providers"`
	MinItems     uint64           `json:"min_items"`
	ExpiryHeight uint64           `json:"expiry_height"`
	FeeBps       uint64           `json:"executor_fee_bps"`
	Measurement  crypto.Digest    `json:"measurement"`
	Providers    uint64           `json:"providers"`
	Items        uint64           `json:"items"`
	Executors    uint64           `json:"executors"`
	Results      uint64           `json:"results"`
	ResultHash   *crypto.Digest   `json:"result_hash,omitempty"`
}

func (s *Server) handleWorkload(w http.ResponseWriter, r *http.Request) {
	addr, err := identity.AddressFromHex(r.PathValue("addr"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad address: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st, err := s.m.WorkloadStateOf(addr)
	if err != nil {
		writeErr(w, http.StatusNotFound, CodeNotFound, "not a workload: %v", err)
		return
	}
	spec, err := s.m.WorkloadSpecOf(addr)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	detail := WorkloadDetail{
		Address:      addr,
		State:        st.String(),
		Predicate:    spec.Predicate,
		MinProviders: spec.MinProviders,
		MinItems:     spec.MinItems,
		ExpiryHeight: spec.ExpiryHeight,
		FeeBps:       spec.ExecutorFeeBps,
		Measurement:  spec.Measurement,
	}
	if raw, err := s.m.View(identity.ZeroAddress, addr, "progress", nil); err == nil {
		d := contract.NewDecoder(raw)
		detail.Providers, _ = d.Uint64()
		detail.Items, _ = d.Uint64()
		detail.Executors, _ = d.Uint64()
		detail.Results, _ = d.Uint64()
	}
	if hash, _, err := s.m.WorkloadResultOf(addr); err == nil && !hash.IsZero() {
		detail.ResultHash = &hash
	}
	writeJSON(w, http.StatusOK, detail)
}

// SubmitResponse is the POST /v1/transactions body. Committed reports
// that the transaction already executed — the answer a retried
// submission gets when the original landed but its response was lost.
type SubmitResponse struct {
	TxHash    crypto.Digest `json:"tx_hash"`
	Queued    bool          `json:"queued"`
	Committed bool          `json:"committed,omitempty"`
}

func (s *Server) handleSubmitTx(w http.ResponseWriter, r *http.Request) {
	if deadlineExceeded(w, r) {
		return
	}
	var tx ledger.Transaction
	if err := json.NewDecoder(r.Body).Decode(&tx); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad transaction: %v", err)
		return
	}
	h := tx.Hash()
	if key := r.Header.Get(IdempotencyHeader); key != "" && key != h.Hex() {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "idempotency key %s does not match transaction hash %s", key, h.Hex())
		return
	}
	s.admitTx(w, &tx)
}

// admitTx runs the shared transaction-admission path behind POST
// /v1/transactions and the dataset/policy mutation endpoints:
// idempotency fast paths, lock-free mempool admission, and the
// load-shedding verdicts.
func (s *Server) admitTx(w http.ResponseWriter, tx *ledger.Transaction) {
	h := tx.Hash()
	// Idempotency fast paths: a retried submission whose original
	// attempt actually landed is answered with the cached verdict — the
	// transaction is either still pending or already committed. Either
	// way it is never admitted twice, so a retry can never double-spend
	// the nonce.
	if s.m.Pool.Contains(h) {
		writeJSON(w, http.StatusAccepted, SubmitResponse{TxHash: h, Queued: true})
		return
	}
	s.mu.Lock()
	_, committed := s.m.Chain.Receipt(h)
	s.mu.Unlock()
	if committed {
		writeJSON(w, http.StatusAccepted, SubmitResponse{TxHash: h, Committed: true})
		return
	}
	// Fast path: admission touches only the mempool, which is safe for
	// concurrent use, so handler goroutines admit without the market
	// mutex — signature verification of concurrent submissions runs in
	// parallel instead of queuing behind block sealing.
	err := s.m.Pool.Add(tx)
	if errors.Is(err, ledger.ErrMempoolFull) {
		// Full pool: Market.Submit prunes stale entries against chain
		// state and retries, which needs the market lock.
		s.mu.Lock()
		err = s.m.Submit(tx)
		s.mu.Unlock()
	}
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, SubmitResponse{TxHash: h, Queued: true})
	case errors.Is(err, ledger.ErrMempoolDuplicate):
		// Raced another admission of the same bytes — idempotent success.
		writeJSON(w, http.StatusAccepted, SubmitResponse{TxHash: h, Queued: true})
	case errors.Is(err, ledger.ErrMempoolFull):
		// Load shedding: the pool stayed full even after pruning. Tell
		// the client when to come back instead of letting it hammer us.
		mAPIShed.Inc()
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, CodeOverloaded, "%v", err)
	default:
		writeErr(w, http.StatusBadRequest, CodeInvalidTx, "%v", err)
	}
}

// ViewRequest is the POST /v1/views body: a read-only contract call.
// Args carry the ABI-encoded method arguments (base64 in JSON).
type ViewRequest struct {
	Caller identity.Address `json:"caller"`
	To     identity.Address `json:"to"`
	Method string           `json:"method"`
	Args   []byte           `json:"args,omitempty"`
}

// ViewResponse is the POST /v1/views body: the ABI-encoded return value.
type ViewResponse struct {
	Return []byte `json:"return"`
}

func (s *Server) handleView(w http.ResponseWriter, r *http.Request) {
	var req ViewRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad view request: %v", err)
		return
	}
	if req.Method == "" {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "missing method")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ret, err := s.m.View(req.Caller, req.To, req.Method, req.Args)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, CodeViewReverted, "view reverted: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ViewResponse{Return: ret})
}

// SealResponse is the POST /v1/blocks/seal body.
type SealResponse struct {
	Height uint64 `json:"height"`
	Txs    int    `json:"txs"`
}

func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	if !s.AllowSeal {
		writeErr(w, http.StatusForbidden, CodeForbidden, "sealing disabled on this node")
		return
	}
	if deadlineExceeded(w, r) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.m.Timestamp() + 1
	if s.sealSkew != nil {
		// Chaos hook: a skewed sealer proposes a block stamped off its
		// own (wrong) clock. The chain's monotonicity check is what
		// actually protects the ledger; the retried seal then lands.
		if v := int64(ts) + s.sealSkew(); v > 0 {
			ts = uint64(v)
		} else {
			ts = 0
		}
	}
	block, err := s.m.SealBlockAt(ts)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, SealResponse{Height: block.Header.Height, Txs: len(block.Txs)})
}

// handleMetrics serves GET /metrics (alias GET /v1/metrics): a JSON
// snapshot of the process-wide telemetry registry. Counters and gauges
// report their current value; histograms add count/sum/min/max and
// p50/p95/p99. When telemetry is disabled the snapshot would be a
// misleading all-zeros, so the route's flagNeedsTelemetry gate answers
// 503 with a stable JSON error instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Default().Snapshot())
}

// handleMetricsHistory serves GET /metrics/history (alias GET
// /v1/metrics/history): the node's bounded ring of periodic registry
// snapshots, turning every metric into a time series. ?window=5s trims
// to the trailing window (a Go duration; omit or 0 for the whole ring).
// Nodes that never enabled history answer the same non-retryable
// disabled envelope as a disabled registry.
func (s *Server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	h := telemetry.DefaultHistory()
	if h == nil {
		writeErr(w, http.StatusServiceUnavailable, CodeDisabled, "metrics history disabled on this node (enable with -history-ms)")
		return
	}
	var window time.Duration
	if raw := r.URL.Query().Get("window"); raw != "" {
		var err error
		window, err = time.ParseDuration(raw)
		if err != nil || window < 0 {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad window %q: want a duration like 5s", raw)
			return
		}
	}
	writeJSON(w, http.StatusOK, h.Dump(window))
}

// handleTrace serves GET /trace (alias GET /v1/trace): the finished
// spans currently held in the tracer's ring buffer, oldest first, with
// parent linkage intact. Like /metrics it answers 503 while telemetry
// is disabled (flagNeedsTelemetry).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.Default().Tracer().Export())
}

// LogsResponse is the GET /logs page envelope. Next is a LogEvent.Seq
// cursor for the following page, empty on the last one.
type LogsResponse struct {
	Components []string             `json:"components"`
	Events     []telemetry.LogEvent `json:"events"`
	Next       string               `json:"next,omitempty"`
}

// handleLogs serves GET /logs: the structured-log ring, oldest first.
// ?component=X filters to one component; the ring itself is always
// served — an all-off log simply has no events. Pagination cursors are
// record sequence numbers, which survive ring eviction: a page after
// seq N simply starts at the oldest retained record above N.
func (s *Server) handleLogs(w http.ResponseWriter, r *http.Request) {
	after, limit, err := pageParams(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	var afterSeq uint64
	if after != "" {
		afterSeq, err = strconv.ParseUint(after, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad cursor %q", after)
			return
		}
	}
	l := telemetry.DefaultLog()
	events := l.Events()
	comp := r.URL.Query().Get("component")
	filtered := make([]telemetry.LogEvent, 0, len(events))
	for _, e := range events {
		if e.Seq <= afterSeq || (comp != "" && e.Component != comp) {
			continue
		}
		filtered = append(filtered, e)
	}
	resp := LogsResponse{Components: l.Components()}
	if len(filtered) > limit {
		filtered = filtered[:limit]
		resp.Next = strconv.FormatUint(filtered[len(filtered)-1].Seq, 10)
	}
	resp.Events = filtered
	writeJSON(w, http.StatusOK, resp)
}

// handleBuildInfo serves GET /v1/buildinfo: the node's Go version, git
// revision, host and CPU shape — the attribution block diag bundles and
// bench reports need to compare numbers across machines and commits. It
// is served even with telemetry disabled; build identity is not a
// metric.
func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, telemetry.CollectBuildInfo())
}

// checkChain verifies the chain exists and reports whether it advanced
// since the previous evaluation — a sealed-but-stuck chain shows up as
// a non-advancing height detail rather than a state change, since many
// deployments legitimately idle between workloads.
func (s *Server) checkChain() telemetry.CheckResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.m.Height()
	advanced := h > s.lastHeight
	s.lastHeight = h
	if advanced {
		return telemetry.OK(fmt.Sprintf("height %d, advancing", h))
	}
	return telemetry.OK(fmt.Sprintf("height %d", h))
}

// checkMempool flags pool saturation: Degraded at 90% of capacity,
// Unhealthy when full (admissions are being rejected).
func (s *Server) checkMempool() telemetry.CheckResult {
	depth, capacity := s.m.Pool.Len(), s.m.Pool.Cap()
	switch {
	case depth >= capacity:
		return telemetry.UnhealthyResult(fmt.Sprintf("mempool full: %d/%d", depth, capacity))
	case depth*10 >= capacity*9:
		return telemetry.DegradedResult(fmt.Sprintf("mempool at %d/%d", depth, capacity))
	default:
		return telemetry.OK(fmt.Sprintf("%d/%d pending", depth, capacity))
	}
}

// handleHealthz serves GET /healthz: the full component report. The
// status code is 200 unless the node is Unhealthy (503) — a Degraded
// node still serves traffic, so liveness probes must not kill it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	report := s.health.Evaluate()
	status := http.StatusOK
	if report.Status == telemetry.Unhealthy {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, report)
}

// handleReadyz serves GET /readyz: 200 only when fully Healthy and not
// draining, so load balancers drain Degraded or shutting-down nodes
// while /healthz keeps them alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, CodeUnavailable, "node draining")
		return
	}
	report := s.health.Evaluate()
	status := http.StatusOK
	if report.Status != telemetry.Healthy {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, report)
}
