package api

import (
	"encoding/json"
	"net/http"

	"pds2/internal/contract"
	"pds2/internal/vm"
)

// handleDeployContract serves POST /v1/contracts: a pre-signed
// deployPolicy transaction binding a compiled policy-program artifact
// to a dataset. The artifact must decode as a pds2/bytecode/v1
// container and its bytecode must re-verify against the embedded
// source — malformed or forged artifacts are rejected here with a
// client error instead of burning gas on a revert. Ownership is
// enforced by the registry contract at apply time.
func (s *Server) handleDeployContract(w http.ResponseWriter, r *http.Request) {
	if deadlineExceeded(w, r) {
		return
	}
	var env TxEnvelope
	if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad envelope: %v", err)
		return
	}
	args, err := s.decodeRegistryCall(env, "deployPolicy")
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	d := contract.NewDecoder(args)
	if _, err := d.Digest(); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad dataset id: %v", err)
		return
	}
	artifact, err := d.Blob()
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad artifact blob: %v", err)
		return
	}
	mod, err := vm.Decode(artifact)
	if err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad artifact: %v", err)
		return
	}
	if err := vm.VerifySource(mod); err != nil {
		writeErr(w, http.StatusBadRequest, CodeBadRequest, "bad artifact: %v", err)
		return
	}
	s.admitTx(w, env.Tx)
}
