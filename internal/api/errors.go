package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Stable machine-readable error codes. The client's retry loop keys off
// the code's retryability (carried explicitly in the envelope), never
// off raw status numbers, so codes must not change meaning across
// versions.
const (
	// CodeBadRequest: malformed input (bad hex, bad JSON, bad query).
	CodeBadRequest = "bad_request"

	// CodeNotFound: the route exists but the entity does not.
	CodeNotFound = "not_found"

	// CodeNoRoute: no handler for the path.
	CodeNoRoute = "no_route"

	// CodeMethodNotAllowed: the path exists under another HTTP method.
	CodeMethodNotAllowed = "method_not_allowed"

	// CodeForbidden: the operation is disabled on this node.
	CodeForbidden = "forbidden"

	// CodeInvalidTx: the transaction failed stateless verification.
	CodeInvalidTx = "invalid_tx"

	// CodeViewReverted: the read-only contract call reverted.
	CodeViewReverted = "view_reverted"

	// CodeOverloaded: the node is shedding load (mempool saturated).
	// Retry after the Retry-After hint.
	CodeOverloaded = "overloaded"

	// CodeUnavailable: the node cannot serve right now (draining,
	// transient pressure). Retryable — possibly against another node.
	CodeUnavailable = "unavailable"

	// CodeDisabled: the subsystem is switched off by node configuration
	// (telemetry, metrics history, pprof). Deliberately NOT retryable:
	// unlike a draining node, a disabled feature does not come back on
	// its own, so a well-behaved client must stop asking instead of
	// burning its retry budget. No Retry-After hint is ever attached.
	CodeDisabled = "disabled"

	// CodeTimeout: the per-request deadline expired server-side.
	CodeTimeout = "timeout"

	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"

	// CodeInjectedFault: a synthesized failure from the fault-injection
	// layer (chaos runs only).
	CodeInjectedFault = "injected_fault"

	// CodePolicyViolation: the dataset's usage-control policy denies the
	// requested use. Deliberately NOT retryable: the decision is a pure
	// function of the policy in force, so the same request will keep
	// failing until the owner relaxes the policy. The envelope's details
	// object names the violated clause and the enforcement layer.
	CodePolicyViolation = "policy_violation"
)

// retryableCode is the server-side truth table stamped into envelopes.
var retryableCode = map[string]bool{
	CodeOverloaded:    true,
	CodeUnavailable:   true,
	CodeTimeout:       true,
	CodeInternal:      true,
	CodeInjectedFault: true,
}

// ErrorDetails is the optional structured context of an error envelope.
// Policy denials fill it so a caller can act on the violated clause
// without parsing the human-readable message.
type ErrorDetails struct {
	// Clause names the violated policy clause (e.g. "allowed_classes").
	Clause string `json:"clause,omitempty"`
	// Layer is the enforcement layer that produced the decision: match,
	// admission or enclave.
	Layer string `json:"layer,omitempty"`
	// Code is the decision's stable reason code (e.g. "class_forbidden").
	Code string `json:"code,omitempty"`
}

// ErrorBody is the uniform machine-readable error payload.
type ErrorBody struct {
	Code      string        `json:"code"`
	Message   string        `json:"message"`
	Retryable bool          `json:"retryable"`
	Details   *ErrorDetails `json:"details,omitempty"`
}

// apiError is the uniform error envelope: {"error": {...}}.
type apiError struct {
	Error ErrorBody `json:"error"`
}

// APIError is the client-side view of a non-2xx response. It carries
// the envelope verbatim plus transport-level context, and implements
// error.
type APIError struct {
	Path       string
	Status     int
	Code       string
	Message    string
	Retryable  bool
	Details    *ErrorDetails // structured context, nil unless the server sent one
	RetryAfter time.Duration // parsed Retry-After hint, 0 if absent
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("api: %s: %s: %s (HTTP %d)", e.Path, e.Code, e.Message, e.Status)
}

// newAPIError builds an *APIError from a non-2xx response. Responses
// that do not carry the envelope (proxies, panics mid-write) degrade to
// a synthetic code "http_<status>", retryable for 5xx and 429.
func newAPIError(path string, status int, header http.Header, body []byte) *APIError {
	out := &APIError{
		Path:      path,
		Status:    status,
		Code:      "http_" + strconv.Itoa(status),
		Message:   http.StatusText(status),
		Retryable: status >= 500 || status == http.StatusTooManyRequests,
	}
	if ra := header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			out.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	var env apiError
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		out.Code = env.Error.Code
		out.Message = env.Error.Message
		out.Retryable = env.Error.Retryable
		out.Details = env.Error.Details
	}
	return out
}
