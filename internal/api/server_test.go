package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/market"
)

// testServer stands up a market with one funded user behind the API.
func testServer(t *testing.T, allowSeal bool) (*httptest.Server, *market.Market, *identity.Identity) {
	t.Helper()
	user := identity.New("user", crypto.NewDRBGFromUint64(1, "api-test"))
	m, err := market.New(market.Config{
		Seed:         1,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m, allowSeal))
	t.Cleanup(srv.Close)
	return srv, m, user
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestStatus(t *testing.T) {
	srv, m, _ := testServer(t, false)
	var st StatusResponse
	if code := getJSON(t, srv.URL+"/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if st.Registry != m.Registry || st.Deeds != m.Deeds {
		t.Fatalf("status = %+v", st)
	}
	if st.Height == 0 {
		t.Fatal("height 0 (registry deploy should have advanced the chain)")
	}
}

func TestAccountLookup(t *testing.T) {
	srv, _, user := testServer(t, false)
	var acct AccountResponse
	if code := getJSON(t, srv.URL+"/v1/accounts/"+user.Address().Hex(), &acct); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if acct.Balance != 1_000_000 {
		t.Fatalf("balance %d", acct.Balance)
	}
	if code := getJSON(t, srv.URL+"/v1/accounts/zzzz", nil); code != http.StatusBadRequest {
		t.Fatalf("bad address: code %d", code)
	}
}

func TestSubmitSealReceiptFlow(t *testing.T) {
	srv, m, user := testServer(t, true)
	to := identity.New("to", crypto.NewDRBGFromUint64(2, "api-test"))
	tx := ledger.SignTx(user, to.Address(), 123, 0, 50_000, nil)

	body, _ := json.Marshal(tx)
	resp, err := http.Post(srv.URL+"/v1/transactions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !sub.Queued {
		t.Fatalf("submit: %d %+v", resp.StatusCode, sub)
	}
	if sub.TxHash != tx.Hash() {
		t.Fatal("hash mismatch")
	}

	// Receipt not yet available.
	if code := getJSON(t, srv.URL+"/v1/receipts/"+tx.Hash().Hex(), nil); code != http.StatusNotFound {
		t.Fatalf("premature receipt: %d", code)
	}

	// Seal and fetch the receipt.
	resp, err = http.Post(srv.URL+"/v1/blocks/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var seal SealResponse
	json.NewDecoder(resp.Body).Decode(&seal)
	resp.Body.Close()
	if seal.Txs != 1 {
		t.Fatalf("sealed %d txs", seal.Txs)
	}
	var rcpt ledger.Receipt
	if code := getJSON(t, srv.URL+"/v1/receipts/"+tx.Hash().Hex(), &rcpt); code != http.StatusOK {
		t.Fatalf("receipt code %d", code)
	}
	if !rcpt.Succeeded() {
		t.Fatalf("receipt failed: %s", rcpt.Err)
	}
	if m.Chain.State().Balance(to.Address()) != 123 {
		t.Fatal("transfer not applied")
	}
}

func TestSealForbiddenOnPublicNode(t *testing.T) {
	srv, _, _ := testServer(t, false)
	resp, err := http.Post(srv.URL+"/v1/blocks/seal", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("code %d", resp.StatusCode)
	}
}

func TestSubmitRejectsInvalidTx(t *testing.T) {
	srv, _, user := testServer(t, false)
	tx := ledger.SignTx(user, identity.ZeroAddress, 0, 0, 50_000, nil)
	tx.Value = 999 // breaks the signature

	body, _ := json.Marshal(tx)
	resp, err := http.Post(srv.URL+"/v1/transactions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("code %d", resp.StatusCode)
	}
	// Non-JSON body.
	resp, err = http.Post(srv.URL+"/v1/transactions", "application/json", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("code %d", resp.StatusCode)
	}
}

// TestConcurrentSubmissions drives the lock-free admission fast path:
// many goroutines POST distinct transactions while another hammers the
// mutex-guarded read endpoints. Meaningful under -race (make ci runs
// it): admission bypasses the server's market mutex by design.
func TestConcurrentSubmissions(t *testing.T) {
	srv, m, _ := testServer(t, false)
	const (
		senders     = 4
		txPerSender = 8
	)
	// Senders are unfunded: admission is stateless, so the pool accepts
	// their transactions regardless of balances.
	ids := make([]*identity.Identity, senders)
	for i := range ids {
		ids[i] = identity.New("c", crypto.NewDRBGFromUint64(uint64(50+i), "api-test"))
	}
	var wg sync.WaitGroup
	errc := make(chan error, senders*txPerSender+1)
	for _, id := range ids {
		wg.Add(1)
		go func(id *identity.Identity) {
			defer wg.Done()
			for n := uint64(0); n < txPerSender; n++ {
				tx := ledger.SignTx(id, identity.ZeroAddress, 0, n, 50_000, nil)
				body, _ := json.Marshal(tx)
				resp, err := http.Post(srv.URL+"/v1/transactions", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					errc <- fmt.Errorf("submit code %d", resp.StatusCode)
					return
				}
			}
		}(id)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp, err := http.Get(srv.URL + "/v1/status")
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("status code %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if got := m.Pool.Len(); got != senders*txPerSender {
		t.Fatalf("pool depth %d, want %d", got, senders*txPerSender)
	}
}

func TestBlocksEndpoint(t *testing.T) {
	srv, _, _ := testServer(t, false)
	var block ledger.Block
	if code := getJSON(t, srv.URL+"/v1/blocks/1", &block); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if block.Header.Height != 1 {
		t.Fatalf("height %d", block.Header.Height)
	}
	if code := getJSON(t, srv.URL+"/v1/blocks/9999", nil); code != http.StatusNotFound {
		t.Fatalf("missing block code %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/blocks/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("bad height code %d", code)
	}
}

func TestEventsEndpoint(t *testing.T) {
	srv, m, _ := testServer(t, false)
	var events EventsResponse
	if code := getJSON(t, srv.URL+"/v1/events", &events); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	// Registry deploy leaves no events, but the endpoint returns [].
	if events.Items == nil {
		t.Fatal("nil events")
	}
	url := fmt.Sprintf("%s/v1/events?contract=%s&topic=Transfer", srv.URL, m.Registry.Hex())
	if code := getJSON(t, url, &events); code != http.StatusOK {
		t.Fatalf("filtered code %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/events?limit=bogus", nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit code %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/events?after=x", nil); code != http.StatusBadRequest {
		t.Fatalf("bad cursor code %d", code)
	}
}

func TestWorkloadEndpoints(t *testing.T) {
	srv, m, user := testServer(t, false)

	// Drive a workload through the API-backed market directly.
	consumer, err := market.NewConsumer(m, user)
	if err != nil {
		t.Fatal(err)
	}
	params := market.TrainerParams{Dim: 4, Epochs: 1, Lambda: 1e-3}
	spec := &market.Spec{
		Predicate:      `category isa "sensor"`,
		MinProviders:   1,
		MinItems:       1,
		ExpiryHeight:   m.Height() + 1000,
		ExecutorFeeBps: 500,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}
	addr, err := consumer.SubmitWorkload(spec, 5_000)
	if err != nil {
		t.Fatal(err)
	}

	var list WorkloadsResponse
	if code := getJSON(t, srv.URL+"/v1/workloads", &list); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(list.Items) != 1 || list.Items[0].Address != addr || list.Items[0].State != "open" {
		t.Fatalf("list = %+v", list)
	}

	var detail WorkloadDetail
	if code := getJSON(t, srv.URL+"/v1/workloads/"+addr.Hex(), &detail); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if detail.Predicate != spec.Predicate || detail.MinProviders != 1 || detail.State != "open" {
		t.Fatalf("detail = %+v", detail)
	}
	if detail.ResultHash != nil {
		t.Fatal("phantom result hash")
	}

	// Non-workload address 404s.
	other := identity.New("x", crypto.NewDRBGFromUint64(9, "api-test")).Address()
	if code := getJSON(t, srv.URL+"/v1/workloads/"+other.Hex(), nil); code != http.StatusNotFound {
		t.Fatalf("code %d", code)
	}
}

func TestClientAgainstServer(t *testing.T) {
	srv, m, user := testServer(t, true)
	c := NewClient(srv.URL)
	ctx := context.Background()

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Registry != m.Registry {
		t.Fatal("client status mismatch")
	}

	acct, err := c.Account(ctx, user.Address())
	if err != nil || acct.Balance != 1_000_000 {
		t.Fatalf("account: %+v %v", acct, err)
	}

	to := identity.New("to", crypto.NewDRBGFromUint64(3, "api-test"))
	tx := ledger.SignTx(user, to.Address(), 77, 0, 50_000, nil)
	hash, err := c.SubmitTx(ctx, tx)
	if err != nil {
		t.Fatal(err)
	}
	if hash != tx.Hash() {
		t.Fatal("hash mismatch")
	}
	// Re-submitting the same transaction is idempotent, not an error.
	if _, err := c.SubmitTx(ctx, tx); err != nil {
		t.Fatalf("idempotent resubmit: %v", err)
	}
	seal, err := c.Seal(ctx)
	if err != nil || seal.Txs != 1 {
		t.Fatalf("seal: %+v %v", seal, err)
	}
	rcpt, err := c.Receipt(ctx, hash)
	if err != nil || !rcpt.Succeeded() {
		t.Fatalf("receipt: %+v %v", rcpt, err)
	}
	block, err := c.Block(ctx, seal.Height)
	if err != nil || len(block.Txs) != 1 {
		t.Fatalf("block: %v", err)
	}
	if _, err := c.Receipt(ctx, crypto.HashString("missing")); err == nil {
		t.Fatal("missing receipt fetched")
	}
	if _, err := c.Events(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Workloads(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestClientErrorsSurfaceBody(t *testing.T) {
	srv, _, _ := testServer(t, false)
	c := NewClient(srv.URL)
	_, err := c.Seal(context.Background())
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("sealing disabled")) {
		t.Fatalf("err = %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeForbidden || ae.Retryable {
		t.Fatalf("envelope not surfaced: %#v", err)
	}
}

func TestViewEndpoint(t *testing.T) {
	srv, m, user := testServer(t, false)
	c := NewClient(srv.URL)
	ctx := context.Background()

	// A registry view through the node: role lookup before and after a
	// registration transaction.
	args := contractEncoder().Address(user.Address()).String("consumer").Bytes()
	ret, err := c.View(ctx, user.Address(), m.Registry, "hasRole", args)
	if err != nil {
		t.Fatal(err)
	}
	if has, _ := contractDecoder(ret).Bool(); has {
		t.Fatal("phantom role")
	}
	if _, err := market.NewConsumer(m, user); err != nil {
		t.Fatal(err)
	}
	ret, err = c.View(ctx, user.Address(), m.Registry, "hasRole", args)
	if err != nil {
		t.Fatal(err)
	}
	if has, _ := contractDecoder(ret).Bool(); !has {
		t.Fatal("role not visible through the view endpoint")
	}

	// Reverting views surface errors.
	if _, err := c.View(ctx, user.Address(), m.Registry, "noSuchMethod", nil); err == nil {
		t.Fatal("unknown method view succeeded")
	}
	// Missing method rejected.
	resp, err := http.Post(srv.URL+"/v1/views", "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("code %d", resp.StatusCode)
	}
}

func contractEncoder() *contract.Encoder         { return contract.NewEncoder() }
func contractDecoder(b []byte) *contract.Decoder { return contract.NewDecoder(b) }
