package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"pds2/internal/chainstore"
	"pds2/internal/crypto"
	"pds2/internal/gossip"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

// TestMetricsAndTraceDisabled pins the disabled-telemetry contract:
// /metrics, /metrics/history and /trace answer 503 with the uniform
// JSON error envelope carrying the non-retryable "disabled" code and no
// Retry-After hint — a configured-off subsystem never comes back on its
// own, so clients must not burn retry budget on it — and never an
// empty-but-200 snapshot.
func TestMetricsAndTraceDisabled(t *testing.T) {
	telemetry.Disable()
	srv, _, _ := testServer(t, false)
	for _, path := range []string{"/metrics", "/metrics/history", "/trace"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s: %d, want 503", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: Content-Type %q", path, ct)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			t.Fatalf("GET %s: Retry-After %q on a permanently disabled subsystem", path, ra)
		}
		var e apiError
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != CodeDisabled {
			t.Fatalf("GET %s: body %q is not the JSON error envelope", path, body)
		}
		if e.Error.Retryable {
			t.Fatalf("GET %s: disabled subsystem marked retryable", path)
		}
	}
}

// TestTraceHeaderPropagation pins the wire format: a request carrying
// X-PDS2-Trace must produce an api.request span in the caller's trace,
// and the response must carry the server span's own context.
func TestTraceHeaderPropagation(t *testing.T) {
	telemetry.Default().Reset()
	telemetry.Enable()
	defer telemetry.Disable()
	srv, _, _ := testServer(t, false)

	parent := telemetry.StartSpan("client.call", telemetry.SpanContext{})
	client := NewClient(srv.URL, WithTrace(parent.Context()))
	if _, err := client.Status(context.Background()); err != nil {
		t.Fatal(err)
	}
	parent.End()

	// The response header carries the server's span context in the same
	// trace as the client's parent span.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, parent.Context().String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got, err := telemetry.ParseSpanContext(resp.Header.Get(TraceHeader))
	if err != nil {
		t.Fatalf("response %s header: %v", TraceHeader, err)
	}
	if got.Trace != parent.Context().Trace {
		t.Fatalf("server span in trace %016x, want the client trace %016x",
			uint64(got.Trace), uint64(parent.Context().Trace))
	}

	var reqSpan *telemetry.Span
	for _, s := range telemetry.Default().Tracer().Spans() {
		if s.Name == "api.request" && s.Parent == parent.ID() {
			s := s
			reqSpan = &s
		}
	}
	if reqSpan == nil {
		t.Fatal("no api.request span parented to the client span")
	}
	if reqSpan.Trace != parent.Context().Trace {
		t.Fatal("api.request span not stitched into the client trace")
	}
	if reqSpan.Attrs["path"] != "/v1/status" {
		t.Fatalf("span attrs: %v", reqSpan.Attrs)
	}
}

// TestHealthEndpoints exercises /healthz and /readyz: the built-in
// component checks are present, a registered gossip-connectivity check
// flips the node to degraded when churn takes every peer offline
// (degraded keeps /healthz at 200 but fails /readyz), and a saturated
// mempool makes the node outright unhealthy (503 on /healthz).
func TestHealthEndpoints(t *testing.T) {
	telemetry.Default().Reset()
	srvURL, s := healthTestServer(t, 0)

	var rep telemetry.HealthReport
	if code := getJSON(t, srvURL+"/healthz", &rep); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	for _, name := range []string{"ledger.chain", "ledger.mempool", "market.executors"} {
		if _, ok := rep.Components[name]; !ok {
			t.Errorf("component %q missing from health report: %+v", name, rep.Components)
		}
	}
	if rep.Components["ledger.mempool"].State != telemetry.Healthy {
		t.Fatalf("fresh mempool not healthy: %+v", rep.Components["ledger.mempool"])
	}

	// Stand up a small gossip overlay and register its connectivity
	// check on this node.
	rng := crypto.NewDRBGFromUint64(9, "health-gossip")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 60, Dim: 2}, rng)
	parts := data.PartitionIID(3, rng)
	net := simnet.New(simnet.Config{Seed: 9})
	runner, err := gossip.NewRunner(net, parts, gossip.Config{
		Cycle:        simnet.Second,
		ModelFactory: func() ml.Model { return ml.NewLogisticModel(2, 1e-3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Health().Register("gossip.peers", runner.HealthCheck)

	if code := getJSON(t, srvURL+"/healthz", &rep); code != http.StatusOK {
		t.Fatalf("GET /healthz with gossip up: %d", code)
	}
	if rep.Components["gossip.peers"].State != telemetry.Healthy {
		t.Fatalf("gossip check with all peers online: %+v", rep.Components["gossip.peers"])
	}

	// Churn: every peer drops offline → the gossip component and the
	// whole node degrade. Degraded is not dead: /healthz stays 200 while
	// /readyz refuses.
	for _, id := range runner.NodeIDs() {
		net.SetOnline(id, false)
	}
	if code := getJSON(t, srvURL+"/healthz", &rep); code != http.StatusOK {
		t.Fatalf("GET /healthz degraded: %d, want 200", code)
	}
	if rep.Components["gossip.peers"].State != telemetry.Degraded {
		t.Fatalf("gossip check with peers churned out: %+v", rep.Components["gossip.peers"])
	}
	if rep.Status != telemetry.Degraded {
		t.Fatalf("aggregate status %v, want degraded", rep.Status)
	}
	if code := getJSON(t, srvURL+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("GET /readyz degraded: %d, want 503", code)
	}
}

// TestHealthzUnhealthyMempool pins the 503 path: a full mempool marks
// the node unhealthy and /healthz reports it with a 503.
func TestHealthzUnhealthyMempool(t *testing.T) {
	srvURL, _ := healthTestServer(t, 1)
	resp, err := http.Get(srvURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var rep telemetry.HealthReport
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz with full pool: %d, want 503", resp.StatusCode)
	}
	if rep.Status != telemetry.Unhealthy || rep.Components["ledger.mempool"].State != telemetry.Unhealthy {
		t.Fatalf("report: %+v", rep)
	}
}

// healthTestServer stands up a market with the given mempool bound
// (0 = default) behind the API and, when bounded, fills the pool.
func healthTestServer(t *testing.T, mempoolSize int) (string, *Server) {
	t.Helper()
	user := identityNamed(t, "health-user")
	m, err := market.New(market.Config{
		Seed:         9,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1_000_000},
		MempoolSize:  mempoolSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mempoolSize > 0 {
		for i := 0; i < mempoolSize; i++ {
			tx := m.SignedTx(user, user.Address(), 1, nil)
			if err := m.Pool.Add(tx); err != nil {
				t.Fatal(err)
			}
		}
		if m.Pool.Len() < mempoolSize {
			t.Fatalf("pool %d/%d after filling", m.Pool.Len(), mempoolSize)
		}
	}
	s := NewServer(m, false)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv.URL, s
}

func identityNamed(t *testing.T, name string) *identity.Identity {
	t.Helper()
	return identity.New(name, crypto.NewDRBGFromUint64(99, name))
}

// TestHealthChainstoreComponent pins that a durable node surfaces the
// disk-backed store in /healthz (and an in-memory node does not).
func TestHealthChainstoreComponent(t *testing.T) {
	telemetry.Default().Reset()
	st, err := chainstore.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	m, err := market.Open(market.Config{Seed: 11}, st)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(m, false))
	t.Cleanup(srv.Close)

	var rep telemetry.HealthReport
	if code := getJSON(t, srv.URL+"/healthz", &rep); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	comp, ok := rep.Components["chainstore"]
	if !ok {
		t.Fatalf("no chainstore component in %v", rep.Components)
	}
	if comp.State != telemetry.Healthy {
		t.Fatalf("chainstore: %+v", comp)
	}

	// In-memory market: no chainstore component.
	srvURL, _ := healthTestServer(t, 0)
	var rep2 telemetry.HealthReport
	if code := getJSON(t, srvURL+"/healthz", &rep2); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	if _, ok := rep2.Components["chainstore"]; ok {
		t.Fatal("in-memory node reports a chainstore component")
	}
}

// TestLogsEndpoint pins GET /logs: records retained by the process log
// come back oldest-first with component filtering.
func TestLogsEndpoint(t *testing.T) {
	l := telemetry.DefaultLog()
	l.Reset()
	if err := telemetry.SetLogSpec("info"); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = telemetry.SetLogSpec("off") }()

	telemetry.L("ledger").Info("first", telemetry.Int("n", 1))
	telemetry.L("market").Info("second")
	telemetry.L("ledger").Warn("third")

	srv, _, _ := testServer(t, false)
	var out LogsResponse
	if code := getJSON(t, srv.URL+"/logs", &out); code != http.StatusOK {
		t.Fatalf("GET /logs: %d", code)
	}
	// The API server itself logs requests at debug (filtered at info),
	// so exactly the three seeded events are retained.
	if len(out.Events) < 3 {
		t.Fatalf("%d events, want >= 3", len(out.Events))
	}
	msgs := []string{}
	for _, e := range out.Events {
		msgs = append(msgs, e.Msg)
	}
	if msgs[0] != "first" || msgs[1] != "second" || msgs[2] != "third" {
		t.Fatalf("order: %v", msgs)
	}
	var ledgerOnly LogsResponse
	if code := getJSON(t, srv.URL+"/logs?component=ledger", &ledgerOnly); code != http.StatusOK {
		t.Fatalf("GET /logs?component=ledger: %d", code)
	}
	for _, e := range ledgerOnly.Events {
		if e.Component != "ledger" {
			t.Fatalf("filter leak: %+v", e)
		}
	}
	if len(ledgerOnly.Events) < 2 {
		t.Fatalf("ledger filter lost events: %+v", ledgerOnly.Events)
	}
}
