package api

import (
	"context"
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/market"
	"pds2/internal/policy"
	"pds2/internal/vm"
)

// TestDeployContractAPI drives POST /v1/contracts end to end: a
// compiled policy program deploys through the non-custodial envelope,
// shows up as code on the dataset view, and is enforced by the check
// endpoint — while malformed and forged artifacts are rejected with a
// client error before any gas is spent.
func TestDeployContractAPI(t *testing.T) {
	srv, m, user := testServer(t, true)
	c := NewClient(srv.URL, WithRetryPolicy(NoRetry))
	ctx := context.Background()

	dataID := crypto.HashString("api-test/data/vm")
	if _, err := market.MustSucceed(m.SendAndSeal(user, m.Registry, 0,
		market.RegisterDataData(dataID, crypto.HashString("meta")))); err != nil {
		t.Fatal(err)
	}

	src := vm.BuiltinPolicySource(&policy.Policy{AllowedClasses: []string{"train"}})
	artifact, err := vm.BuildSource(src)
	if err != nil {
		t.Fatal(err)
	}
	tx := m.SignedTx(user, m.Registry, 0, market.DeployPolicyData(dataID, artifact))
	h, err := c.DeployContract(ctx, tx)
	if err != nil {
		t.Fatal(err)
	}
	if h != tx.Hash() {
		t.Fatal("hash mismatch")
	}
	if _, err := c.Seal(ctx); err != nil {
		t.Fatal(err)
	}

	// The dataset view reports the deployed artifact and the directory
	// counts the dataset as policy-guarded.
	det, err := c.Dataset(ctx, dataID)
	if err != nil {
		t.Fatal(err)
	}
	if det.CodeSize != len(artifact) || det.Policy != nil {
		t.Fatalf("dataset = %+v, want code_size %d and no declarative policy", det, len(artifact))
	}
	list, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || !list[0].HasPolicy {
		t.Fatalf("datasets = %+v", list)
	}

	// The program is live at the check endpoint: the allowed class
	// passes, the forbidden one answers the policy_violation envelope.
	dec, err := c.CheckPolicy(ctx, dataID, "", "train", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Allowed || dec.Code != policy.CodeOK {
		t.Fatalf("check = %+v", dec)
	}
	if _, err := c.CheckPolicy(ctx, dataID, "", "stats", "", 1); err == nil {
		t.Fatal("forbidden class allowed by deployed program")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodePolicyViolation ||
		ae.Details == nil || ae.Details.Code != policy.CodeClassForbidden {
		t.Fatalf("forbidden check: %v", err)
	}

	// Envelope validation: a corrupt artifact is a client error.
	bad := append([]byte(nil), artifact...)
	bad[len(bad)-1] ^= 0xFF
	badTx := m.SignedTx(user, m.Registry, 0, market.DeployPolicyData(dataID, bad))
	if _, err := c.DeployContract(ctx, badTx); err == nil {
		t.Fatal("corrupt artifact accepted")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("corrupt artifact: %v", err)
	}
	// A forged code section (valid checksum, bytecode not matching the
	// embedded source) is caught by the server's source re-verification.
	other, err := vm.CompileSource(`deny "class_forbidden" "allowed_classes"`)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := vm.Decode(artifact)
	if err != nil {
		t.Fatal(err)
	}
	forged := &vm.Module{NumLocals: other.NumLocals, Consts: other.Consts,
		Code: other.Code, Source: honest.Source}
	forgedTx := m.SignedTx(user, m.Registry, 0, market.DeployPolicyData(dataID, forged.Encode()))
	if _, err := c.DeployContract(ctx, forgedTx); err == nil {
		t.Fatal("forged artifact accepted")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("forged artifact: %v", err)
	}
	// A plain transfer is not a deployPolicy call.
	transfer := m.SignedTx(user, user.Address(), 1, nil)
	if _, err := c.DeployContract(ctx, transfer); err == nil {
		t.Fatal("transfer accepted as contract deployment")
	} else if ae := new(APIError); !errors.As(err, &ae) || ae.Code != CodeBadRequest {
		t.Fatalf("transfer as deployPolicy: %v", err)
	}
}
