package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// Client is the Go client for a PDS² governance node's HTTP API. It is
// what a provider agent or executor daemon embeds to interact with a
// remote node.
type Client struct {
	// BaseURL is the node address, e.g. "http://localhost:8547".
	BaseURL string

	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient creates a client for the given node URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// get fetches a JSON endpoint into out.
func (c *Client) get(path string, out any) error {
	resp, err := c.http().Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("api: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(path, resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(path string, resp *http.Response) error {
	var apiErr apiError
	if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
		return fmt.Errorf("api: %s: %s (HTTP %d)", path, apiErr.Error, resp.StatusCode)
	}
	return fmt.Errorf("api: %s: HTTP %d", path, resp.StatusCode)
}

// Status fetches the node status.
func (c *Client) Status() (StatusResponse, error) {
	var out StatusResponse
	err := c.get("/v1/status", &out)
	return out, err
}

// Account fetches balance and nonce for an address.
func (c *Client) Account(addr identity.Address) (AccountResponse, error) {
	var out AccountResponse
	err := c.get("/v1/accounts/"+addr.Hex(), &out)
	return out, err
}

// Block fetches a block by height.
func (c *Client) Block(height uint64) (*ledger.Block, error) {
	var out ledger.Block
	if err := c.get(fmt.Sprintf("/v1/blocks/%d", height), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Receipt fetches a transaction receipt.
func (c *Client) Receipt(hash crypto.Digest) (*ledger.Receipt, error) {
	var out ledger.Receipt
	if err := c.get("/v1/receipts/"+hash.Hex(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events fetches the audit log, optionally filtered by topic.
func (c *Client) Events(topic string) ([]ledger.Event, error) {
	path := "/v1/events"
	if topic != "" {
		path += "?topic=" + topic
	}
	var out []ledger.Event
	err := c.get(path, &out)
	return out, err
}

// Workloads lists the workload directory.
func (c *Client) Workloads() ([]WorkloadSummary, error) {
	var out []WorkloadSummary
	err := c.get("/v1/workloads", &out)
	return out, err
}

// Workload fetches one workload's detail view.
func (c *Client) Workload(addr identity.Address) (WorkloadDetail, error) {
	var out WorkloadDetail
	err := c.get("/v1/workloads/"+addr.Hex(), &out)
	return out, err
}

// SubmitTx queues a signed transaction and returns its hash.
func (c *Client) SubmitTx(tx *ledger.Transaction) (crypto.Digest, error) {
	body, err := json.Marshal(tx)
	if err != nil {
		return crypto.ZeroDigest, err
	}
	resp, err := c.http().Post(c.BaseURL+"/v1/transactions", "application/json", bytes.NewReader(body))
	if err != nil {
		return crypto.ZeroDigest, fmt.Errorf("api: submit: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return crypto.ZeroDigest, decodeAPIError("/v1/transactions", resp)
	}
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return crypto.ZeroDigest, err
	}
	return out.TxHash, nil
}

// View performs a read-only contract call through the node.
func (c *Client) View(caller, to identity.Address, method string, args []byte) ([]byte, error) {
	body, err := json.Marshal(ViewRequest{Caller: caller, To: to, Method: method, Args: args})
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Post(c.BaseURL+"/v1/views", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("api: view: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError("/v1/views", resp)
	}
	var out ViewResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Return, nil
}

// Seal asks an operator node to seal the pending transactions.
func (c *Client) Seal() (SealResponse, error) {
	var out SealResponse
	resp, err := c.http().Post(c.BaseURL+"/v1/blocks/seal", "application/json", nil)
	if err != nil {
		return out, fmt.Errorf("api: seal: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, decodeAPIError("/v1/blocks/seal", resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
