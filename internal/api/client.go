package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/telemetry"
)

// Client-side instrumentation: retry pressure is the first thing to
// look at when a chaos run misbehaves.
var (
	mClientRetries = telemetry.C("api.retries_total")
	mClientCalls   = telemetry.C("api.client.calls_total")
)

// IdempotencyHeader carries the transaction hash on POST
// /v1/transactions, so a retried submission is answered from the
// mempool or the receipt store instead of being treated as new work.
const IdempotencyHeader = "X-PDS2-Idempotency-Key"

// RetryPolicy shapes the client's retry loop: capped exponential
// backoff with jitter, a per-attempt timeout, and a client-wide retry
// budget that stops a fleet of callers from amplifying an outage.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts per call, first try included
	// (<= 0 selects 4; 1 disables retries).
	MaxAttempts int

	// BaseDelay is the backoff before the first retry (<= 0 selects
	// 100ms). Successive retries multiply by Multiplier up to MaxDelay.
	BaseDelay time.Duration

	// MaxDelay caps the backoff (<= 0 selects 2s).
	MaxDelay time.Duration

	// Multiplier grows the backoff between retries (< 1 selects 2).
	Multiplier float64

	// Jitter randomizes each backoff by ±Jitter fraction (< 0 or > 1
	// selects 0.2), decorrelating retry storms across clients.
	Jitter float64

	// PerAttemptTimeout bounds each individual attempt; 0 leaves only
	// the caller's context deadline in force.
	PerAttemptTimeout time.Duration

	// Budget is the client-wide retry allowance: a token bucket with
	// this capacity, where every retry spends one token and every
	// successful call refunds half a token. When the bucket is empty,
	// calls fail after their first attempt instead of piling retries
	// onto a struggling node. <= 0 selects 64; negative values in
	// withDefaults' output never occur.
	Budget int
}

// NoRetry is the single-attempt policy.
var NoRetry = RetryPolicy{MaxAttempts: 1}

// DefaultRetryPolicy returns the policy NewClient starts with.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.2,
		Budget:      64,
	}
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	if p.Budget <= 0 {
		p.Budget = 64
	}
	return p
}

// Client is the Go client for a PDS² governance node's HTTP API — what
// a provider agent or executor daemon embeds to interact with a remote
// node. It is immutable after construction (configure via Options) and
// safe for concurrent use. Every method takes a context as its first
// argument and respects cancellation at any point, including mid-retry
// backoff.
type Client struct {
	baseURL string
	hc      *http.Client
	trace   telemetry.SpanContext
	retry   RetryPolicy
	timeout time.Duration // per-call overall timeout, 0 = none

	// tokens is the retry budget in half-token units (retry costs 2,
	// success refunds 1), shared across all calls on this client.
	mu     sync.Mutex
	tokens int
	rng    *rand.Rand
}

// Option configures a Client at construction time.
type Option func(*Client)

// WithHTTPClient sets the underlying *http.Client — the hook where the
// fault-injection transport, custom TLS or proxies come in. Nil is
// ignored.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetryPolicy replaces the default retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// WithTrace stamps every request with the given span context via the
// X-PDS2-Trace header, stitching server-side spans into the caller's
// distributed trace.
func WithTrace(ctx telemetry.SpanContext) Option {
	return func(c *Client) { c.trace = ctx }
}

// WithTimeout bounds each call end to end (all attempts and backoffs
// included), in addition to whatever deadline the caller's context
// carries.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// NewClient creates a client for the given node URL. With no options it
// uses http.DefaultClient and DefaultRetryPolicy.
func NewClient(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL: baseURL,
		hc:      http.DefaultClient,
		retry:   DefaultRetryPolicy(),
		rng:     rand.New(rand.NewSource(int64(crypto.HashString(baseURL)[0]) + time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(c)
	}
	c.tokens = 2 * c.retry.Budget
	return c
}

// BaseURL returns the node address the client talks to.
func (c *Client) BaseURL() string { return c.baseURL }

// spendRetryToken withdraws one retry from the budget; false means the
// budget is exhausted and the caller must stop retrying.
func (c *Client) spendRetryToken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tokens < 2 {
		return false
	}
	c.tokens -= 2
	return true
}

// refundSuccess returns half a token on success, capped at the budget.
func (c *Client) refundSuccess() {
	c.mu.Lock()
	if c.tokens < 2*c.retry.Budget {
		c.tokens++
	}
	c.mu.Unlock()
}

// backoff computes the jittered delay before retry number n (1-based),
// never below the server's Retry-After hint.
func (c *Client) backoff(n int, hint time.Duration) time.Duration {
	d := float64(c.retry.BaseDelay)
	for i := 1; i < n; i++ {
		d *= c.retry.Multiplier
		if d >= float64(c.retry.MaxDelay) {
			break
		}
	}
	if d > float64(c.retry.MaxDelay) {
		d = float64(c.retry.MaxDelay)
	}
	if j := c.retry.Jitter; j > 0 {
		c.mu.Lock()
		f := c.rng.Float64()
		c.mu.Unlock()
		d *= 1 + j*(2*f-1)
	}
	delay := time.Duration(d)
	if delay < hint {
		delay = hint
	}
	return delay
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// call performs one logical API call with retries: capped exponential
// backoff with jitter, per-attempt timeouts, budget accounting, and
// envelope-driven retryability (transport errors and truncated bodies
// are always considered retryable — every endpoint is idempotent by
// construction, transaction submission included via its idempotency
// key). It returns the response body of the first attempt that lands a
// 2xx, fully read.
func (c *Client) call(ctx context.Context, method, path string, body []byte, header http.Header) ([]byte, error) {
	data, _, err := c.callAccept(ctx, method, path, body, header, nil)
	return data, err
}

// callAccept is call with a custom success predicate over the status
// code (nil accepts any 2xx). The accepted response's body and status
// are returned; non-accepted statuses become *APIError and retry per
// the envelope's retryability.
func (c *Client) callAccept(ctx context.Context, method, path string, body []byte, header http.Header, accept func(int) bool) ([]byte, int, error) {
	mClientCalls.Inc()
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var lastErr error
	for attempt := 1; attempt <= c.retry.MaxAttempts; attempt++ {
		if attempt > 1 {
			if !c.spendRetryToken() {
				return nil, 0, fmt.Errorf("api: %s %s: retry budget exhausted: %w", method, path, lastErr)
			}
			mClientRetries.Inc()
			var hint time.Duration
			var ae *APIError
			if errors.As(lastErr, &ae) {
				hint = ae.RetryAfter
			}
			if err := sleep(ctx, c.backoff(attempt-1, hint)); err != nil {
				return nil, 0, fmt.Errorf("api: %s %s: %w", method, path, err)
			}
		}
		out, status, err := c.once(ctx, method, path, body, header, accept)
		if err == nil {
			c.refundSuccess()
			return out, status, nil
		}
		if ctx.Err() != nil {
			return nil, 0, fmt.Errorf("api: %s %s: %w", method, path, ctx.Err())
		}
		if ae, ok := err.(*APIError); ok && !ae.Retryable {
			return nil, 0, ae
		}
		lastErr = err
	}
	return nil, 0, fmt.Errorf("api: %s %s: attempts exhausted: %w", method, path, lastErr)
}

// once is a single attempt: issue the request, read the body in full
// (so truncated responses fail here, retryably), map non-accepted
// statuses to *APIError.
func (c *Client) once(ctx context.Context, method, path string, body []byte, header http.Header, accept func(int) bool) ([]byte, int, error) {
	actx := ctx
	if c.retry.PerAttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.retry.PerAttemptTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.baseURL+path, rd)
	if err != nil {
		return nil, 0, fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if !c.trace.IsZero() {
		req.Header.Set(TraceHeader, c.trace.String())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("api: %s %s: reading response: %w", method, path, err)
	}
	ok := resp.StatusCode >= 200 && resp.StatusCode <= 299
	if accept != nil {
		ok = accept(resp.StatusCode)
	}
	if !ok {
		return nil, 0, newAPIError(path, resp.StatusCode, resp.Header, data)
	}
	return data, resp.StatusCode, nil
}

// get fetches a JSON endpoint into out, retrying per policy.
func (c *Client) get(ctx context.Context, path string, out any) error {
	data, err := c.call(ctx, http.MethodGet, path, nil, nil)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// post sends a JSON body and decodes the 2xx response into out.
func (c *Client) post(ctx context.Context, path string, in, out any, header http.Header) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	data, err := c.call(ctx, http.MethodPost, path, body, header)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// put sends a JSON body via PUT and decodes the 2xx response into out.
func (c *Client) put(ctx context.Context, path string, in, out any, header http.Header) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	data, err := c.call(ctx, http.MethodPut, path, body, header)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Status fetches the node status.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.get(ctx, "/v1/status", &out)
	return out, err
}

// Account fetches balance and nonce for an address.
func (c *Client) Account(ctx context.Context, addr identity.Address) (AccountResponse, error) {
	var out AccountResponse
	err := c.get(ctx, "/v1/accounts/"+addr.Hex(), &out)
	return out, err
}

// Block fetches a block by height.
func (c *Client) Block(ctx context.Context, height uint64) (*ledger.Block, error) {
	var out ledger.Block
	if err := c.get(ctx, fmt.Sprintf("/v1/blocks/%d", height), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Receipt fetches a transaction receipt.
func (c *Client) Receipt(ctx context.Context, hash crypto.Digest) (*ledger.Receipt, error) {
	var out ledger.Receipt
	if err := c.get(ctx, "/v1/receipts/"+hash.Hex(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// listPath builds a list-endpoint URL with pagination parameters.
func listPath(base string, params ...[2]string) string {
	sep := "?"
	for _, kv := range params {
		if kv[1] == "" {
			continue
		}
		base += sep + kv[0] + "=" + kv[1]
		sep = "&"
	}
	return base
}

// EventsPage fetches one page of the audit log, optionally filtered by
// topic. after is the cursor from a previous page's Next ("" starts
// from the beginning); limit <= 0 selects the server default.
func (c *Client) EventsPage(ctx context.Context, topic, after string, limit int) (EventsResponse, error) {
	var out EventsResponse
	lim := ""
	if limit > 0 {
		lim = strconv.Itoa(limit)
	}
	err := c.get(ctx, listPath("/v1/events",
		[2]string{"topic", topic}, [2]string{"after", after}, [2]string{"limit", lim}), &out)
	return out, err
}

// Events fetches the complete audit log (all pages), optionally
// filtered by topic.
func (c *Client) Events(ctx context.Context, topic string) ([]ledger.Event, error) {
	var all []ledger.Event
	after := ""
	for {
		page, err := c.EventsPage(ctx, topic, after, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if all == nil {
		all = []ledger.Event{}
	}
	return all, nil
}

// WorkloadsPage fetches one page of the workload directory.
func (c *Client) WorkloadsPage(ctx context.Context, after string, limit int) (WorkloadsResponse, error) {
	var out WorkloadsResponse
	lim := ""
	if limit > 0 {
		lim = strconv.Itoa(limit)
	}
	err := c.get(ctx, listPath("/v1/workloads",
		[2]string{"after", after}, [2]string{"limit", lim}), &out)
	return out, err
}

// Workloads lists the complete workload directory (all pages).
func (c *Client) Workloads(ctx context.Context) ([]WorkloadSummary, error) {
	var all []WorkloadSummary
	after := ""
	for {
		page, err := c.WorkloadsPage(ctx, after, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if all == nil {
		all = []WorkloadSummary{}
	}
	return all, nil
}

// Workload fetches one workload's detail view.
func (c *Client) Workload(ctx context.Context, addr identity.Address) (WorkloadDetail, error) {
	var out WorkloadDetail
	err := c.get(ctx, "/v1/workloads/"+addr.Hex(), &out)
	return out, err
}

// LogsPage fetches one page of the node's structured-log ring
// (component "" fetches every component). after is a LogEvent.Seq
// cursor from a previous page's Next.
func (c *Client) LogsPage(ctx context.Context, component, after string, limit int) (LogsResponse, error) {
	var out LogsResponse
	lim := ""
	if limit > 0 {
		lim = strconv.Itoa(limit)
	}
	err := c.get(ctx, listPath("/logs",
		[2]string{"component", component}, [2]string{"after", after}, [2]string{"limit", lim}), &out)
	return out, err
}

// Logs fetches the node's full structured-log ring (all pages).
func (c *Client) Logs(ctx context.Context, component string) (LogsResponse, error) {
	var all LogsResponse
	after := ""
	for {
		page, err := c.LogsPage(ctx, component, after, 0)
		if err != nil {
			return LogsResponse{}, err
		}
		all.Components = page.Components
		all.Events = append(all.Events, page.Events...)
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	return all, nil
}

// Healthz fetches the node's component health report. A Degraded or
// Unhealthy node still returns the report (alongside a non-200 status),
// so err is non-nil only for transport or decoding failures — those are
// retried per policy like any other call.
func (c *Client) Healthz(ctx context.Context) (telemetry.HealthReport, error) {
	var out telemetry.HealthReport
	// An Unhealthy node answers 503 with the report attached; that is a
	// meaningful answer, not a failure to retry.
	accept := func(status int) bool {
		return (status >= 200 && status <= 299) || status == http.StatusServiceUnavailable
	}
	data, _, err := c.callAccept(ctx, http.MethodGet, "/healthz", nil, nil, accept)
	if err != nil {
		return out, err
	}
	err = json.Unmarshal(data, &out)
	return out, err
}

// Metrics fetches the node's telemetry snapshot (GET /metrics):
// counters, gauges and histograms with p50/p95/p99. Load harnesses use
// it to read server-side throughput counters around a run. The node
// answers 503 while telemetry is disabled; that surfaces as an APIError.
func (c *Client) Metrics(ctx context.Context) (telemetry.Snapshot, error) {
	var out telemetry.Snapshot
	err := c.get(ctx, "/metrics", &out)
	return out, err
}

// BuildInfo fetches the node's build identity (GET /v1/buildinfo).
func (c *Client) BuildInfo(ctx context.Context) (telemetry.BuildInfo, error) {
	var out telemetry.BuildInfo
	err := c.get(ctx, "/v1/buildinfo", &out)
	return out, err
}

// Trace fetches the node's finished-span ring (GET /trace), oldest
// first. The Collector merges traces from many nodes into one set.
func (c *Client) Trace(ctx context.Context) (telemetry.Trace, error) {
	var out telemetry.Trace
	err := c.get(ctx, "/trace", &out)
	return out, err
}

// MetricsHistory fetches the node's metrics-history ring (GET
// /metrics/history) — periodic registry snapshots turning every metric
// into a time series. window trims to the trailing window (0 fetches
// the whole ring). A node with history disabled answers a non-retryable
// "disabled" APIError.
func (c *Client) MetricsHistory(ctx context.Context, window time.Duration) (telemetry.HistoryDump, error) {
	var out telemetry.HistoryDump
	path := "/metrics/history"
	if window > 0 {
		path += "?window=" + window.String()
	}
	err := c.get(ctx, path, &out)
	return out, err
}

// Pprof fetches a profile from the node's /debug/pprof/ surface in raw
// pprof (gzipped protobuf) form — e.g. "goroutine", "heap", "mutex",
// "block", or "profile" with seconds > 0 for a timed CPU profile.
// Profile collection is not idempotent work worth duplicating, so the
// call runs without retries; long CPU captures rely on the server's
// deadline exemption for pprof paths.
func (c *Client) Pprof(ctx context.Context, profile string, seconds int) ([]byte, error) {
	path := "/debug/pprof/" + profile
	if seconds > 0 {
		path += "?seconds=" + strconv.Itoa(seconds)
	}
	mClientCalls.Inc()
	data, _, err := c.once(ctx, http.MethodGet, path, nil, nil, nil)
	return data, err
}

// SubmitTx queues a signed transaction and returns its hash. The
// request carries the transaction hash as an idempotency key, so
// retrying after a lost response can never double-spend the nonce: the
// server answers an already-admitted or already-committed transaction
// with its cached verdict instead of treating it as new work.
func (c *Client) SubmitTx(ctx context.Context, tx *ledger.Transaction) (crypto.Digest, error) {
	h := http.Header{}
	h.Set(IdempotencyHeader, tx.Hash().Hex())
	var out SubmitResponse
	if err := c.post(ctx, "/v1/transactions", tx, &out, h); err != nil {
		return crypto.ZeroDigest, err
	}
	return out.TxHash, nil
}

// DatasetsPage fetches one page of the dataset registry.
func (c *Client) DatasetsPage(ctx context.Context, after string, limit int) (DatasetsResponse, error) {
	var out DatasetsResponse
	lim := ""
	if limit > 0 {
		lim = strconv.Itoa(limit)
	}
	err := c.get(ctx, listPath("/v1/datasets",
		[2]string{"after", after}, [2]string{"limit", lim}), &out)
	return out, err
}

// Datasets lists the complete dataset registry (all pages).
func (c *Client) Datasets(ctx context.Context) ([]DatasetSummary, error) {
	var all []DatasetSummary
	after := ""
	for {
		page, err := c.DatasetsPage(ctx, after, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if all == nil {
		all = []DatasetSummary{}
	}
	return all, nil
}

// Dataset fetches one dataset's detail view, policy included.
func (c *Client) Dataset(ctx context.Context, id crypto.Digest) (DatasetResponse, error) {
	var out DatasetResponse
	err := c.get(ctx, "/v1/datasets/"+id.Hex(), &out)
	return out, err
}

// RegisterDataset submits a pre-signed registerData transaction through
// POST /v1/datasets. Like SubmitTx, the transaction hash rides along as
// an idempotency key, so retries can never double-spend the nonce.
func (c *Client) RegisterDataset(ctx context.Context, tx *ledger.Transaction) (crypto.Digest, error) {
	h := http.Header{}
	h.Set(IdempotencyHeader, tx.Hash().Hex())
	var out SubmitResponse
	if err := c.post(ctx, "/v1/datasets", TxEnvelope{Tx: tx}, &out, h); err != nil {
		return crypto.ZeroDigest, err
	}
	return out.TxHash, nil
}

// SetPolicy submits a pre-signed setPolicy transaction through PUT
// /v1/datasets/{id}/policy. The server rejects (with a client error,
// before any gas is spent) envelopes whose dataset argument does not
// match id or whose policy blob fails validation.
func (c *Client) SetPolicy(ctx context.Context, id crypto.Digest, tx *ledger.Transaction) (crypto.Digest, error) {
	h := http.Header{}
	h.Set(IdempotencyHeader, tx.Hash().Hex())
	var out SubmitResponse
	if err := c.put(ctx, "/v1/datasets/"+id.Hex()+"/policy", TxEnvelope{Tx: tx}, &out, h); err != nil {
		return crypto.ZeroDigest, err
	}
	return out.TxHash, nil
}

// DeployContract submits a pre-signed deployPolicy transaction through
// POST /v1/contracts, binding a compiled policy-program artifact to a
// dataset. The server rejects (with a client error, before any gas is
// spent) envelopes whose artifact fails container decoding or whose
// bytecode does not re-verify against its embedded source.
func (c *Client) DeployContract(ctx context.Context, tx *ledger.Transaction) (crypto.Digest, error) {
	h := http.Header{}
	h.Set(IdempotencyHeader, tx.Hash().Hex())
	var out SubmitResponse
	if err := c.post(ctx, "/v1/contracts", TxEnvelope{Tx: tx}, &out, h); err != nil {
		return crypto.ZeroDigest, err
	}
	return out.TxHash, nil
}

// CheckPolicy evaluates a dataset's usage-control policy without
// consuming an invocation or emitting a decision event. An allow
// returns the decision; a deny returns a non-retryable *APIError with
// code "policy_violation" whose Details name the violated clause and
// enforcement layer. layer "" selects match, class "" the default
// computation class, agg 0 an aggregation of 1.
func (c *Client) CheckPolicy(ctx context.Context, id crypto.Digest, layer, class, purpose string, agg uint64) (PolicyDecision, error) {
	var out PolicyDecision
	aggStr := ""
	if agg > 0 {
		aggStr = strconv.FormatUint(agg, 10)
	}
	err := c.get(ctx, listPath("/v1/datasets/"+id.Hex()+"/check",
		[2]string{"layer", layer}, [2]string{"class", class},
		[2]string{"purpose", purpose}, [2]string{"agg", aggStr}), &out)
	return out, err
}

// PolicyDecisionsPage fetches one page of the on-chain usage-control
// decision log, oldest first.
func (c *Client) PolicyDecisionsPage(ctx context.Context, after string, limit int) (PolicyDecisionsResponse, error) {
	var out PolicyDecisionsResponse
	lim := ""
	if limit > 0 {
		lim = strconv.Itoa(limit)
	}
	err := c.get(ctx, listPath("/v1/policies/decisions",
		[2]string{"after", after}, [2]string{"limit", lim}), &out)
	return out, err
}

// PolicyDecisions fetches the complete decision log (all pages).
func (c *Client) PolicyDecisions(ctx context.Context) ([]PolicyDecision, error) {
	var all []PolicyDecision
	after := ""
	for {
		page, err := c.PolicyDecisionsPage(ctx, after, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.Next == "" {
			break
		}
		after = page.Next
	}
	if all == nil {
		all = []PolicyDecision{}
	}
	return all, nil
}

// View performs a read-only contract call through the node.
func (c *Client) View(ctx context.Context, caller, to identity.Address, method string, args []byte) ([]byte, error) {
	var out ViewResponse
	req := ViewRequest{Caller: caller, To: to, Method: method, Args: args}
	if err := c.post(ctx, "/v1/views", req, &out, nil); err != nil {
		return nil, err
	}
	return out.Return, nil
}

// Seal asks an operator node to seal the pending transactions. Sealing
// is safe to retry: a duplicate seal after a lost response produces at
// worst an additional (possibly empty) block, never a duplicate
// transaction execution.
func (c *Client) Seal(ctx context.Context) (SealResponse, error) {
	var out SealResponse
	err := c.post(ctx, "/v1/blocks/seal", nil, &out, nil)
	return out, err
}
