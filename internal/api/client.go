package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/telemetry"
)

// Client is the Go client for a PDS² governance node's HTTP API. It is
// what a provider agent or executor daemon embeds to interact with a
// remote node.
type Client struct {
	// BaseURL is the node address, e.g. "http://localhost:8547".
	BaseURL string

	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// Trace, when non-zero, rides every request as the X-PDS2-Trace
	// header, so the server's api.request spans (and everything under
	// them) stitch into the caller's trace.
	Trace telemetry.SpanContext
}

// NewClient creates a client for the given node URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

// WithTrace returns a shallow copy of the client that stamps requests
// with the given span context.
func (c *Client) WithTrace(ctx telemetry.SpanContext) *Client {
	cp := *c
	cp.Trace = ctx
	return &cp
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request with the trace header attached.
func (c *Client) do(method, path string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return nil, fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if !c.Trace.IsZero() {
		req.Header.Set(TraceHeader, c.Trace.String())
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	return resp, nil
}

// get fetches a JSON endpoint into out.
func (c *Client) get(path string, out any) error {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeAPIError(path, resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func decodeAPIError(path string, resp *http.Response) error {
	var apiErr apiError
	if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
		return fmt.Errorf("api: %s: %s (HTTP %d)", path, apiErr.Error, resp.StatusCode)
	}
	return fmt.Errorf("api: %s: HTTP %d", path, resp.StatusCode)
}

// Status fetches the node status.
func (c *Client) Status() (StatusResponse, error) {
	var out StatusResponse
	err := c.get("/v1/status", &out)
	return out, err
}

// Account fetches balance and nonce for an address.
func (c *Client) Account(addr identity.Address) (AccountResponse, error) {
	var out AccountResponse
	err := c.get("/v1/accounts/"+addr.Hex(), &out)
	return out, err
}

// Block fetches a block by height.
func (c *Client) Block(height uint64) (*ledger.Block, error) {
	var out ledger.Block
	if err := c.get(fmt.Sprintf("/v1/blocks/%d", height), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Receipt fetches a transaction receipt.
func (c *Client) Receipt(hash crypto.Digest) (*ledger.Receipt, error) {
	var out ledger.Receipt
	if err := c.get("/v1/receipts/"+hash.Hex(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events fetches the audit log, optionally filtered by topic.
func (c *Client) Events(topic string) ([]ledger.Event, error) {
	path := "/v1/events"
	if topic != "" {
		path += "?topic=" + topic
	}
	var out []ledger.Event
	err := c.get(path, &out)
	return out, err
}

// Workloads lists the workload directory.
func (c *Client) Workloads() ([]WorkloadSummary, error) {
	var out []WorkloadSummary
	err := c.get("/v1/workloads", &out)
	return out, err
}

// Workload fetches one workload's detail view.
func (c *Client) Workload(addr identity.Address) (WorkloadDetail, error) {
	var out WorkloadDetail
	err := c.get("/v1/workloads/"+addr.Hex(), &out)
	return out, err
}

// Logs fetches the node's structured-log ring (component "" fetches
// every component).
func (c *Client) Logs(component string) (LogsResponse, error) {
	path := "/logs"
	if component != "" {
		path += "?component=" + component
	}
	var out LogsResponse
	err := c.get(path, &out)
	return out, err
}

// Healthz fetches the node's component health report. A Degraded or
// Unhealthy node still returns the report (alongside a non-200 status),
// so err is non-nil only for transport or decoding failures.
func (c *Client) Healthz() (telemetry.HealthReport, error) {
	var out telemetry.HealthReport
	resp, err := c.do(http.MethodGet, "/healthz", nil)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// SubmitTx queues a signed transaction and returns its hash.
func (c *Client) SubmitTx(tx *ledger.Transaction) (crypto.Digest, error) {
	body, err := json.Marshal(tx)
	if err != nil {
		return crypto.ZeroDigest, err
	}
	resp, err := c.do(http.MethodPost, "/v1/transactions", bytes.NewReader(body))
	if err != nil {
		return crypto.ZeroDigest, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return crypto.ZeroDigest, decodeAPIError("/v1/transactions", resp)
	}
	var out SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return crypto.ZeroDigest, err
	}
	return out.TxHash, nil
}

// View performs a read-only contract call through the node.
func (c *Client) View(caller, to identity.Address, method string, args []byte) ([]byte, error) {
	body, err := json.Marshal(ViewRequest{Caller: caller, To: to, Method: method, Args: args})
	if err != nil {
		return nil, err
	}
	resp, err := c.do(http.MethodPost, "/v1/views", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeAPIError("/v1/views", resp)
	}
	var out ViewResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Return, nil
}

// Seal asks an operator node to seal the pending transactions.
func (c *Client) Seal() (SealResponse, error) {
	var out SealResponse
	resp, err := c.do(http.MethodPost, "/v1/blocks/seal", nil)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, decodeAPIError("/v1/blocks/seal", resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
