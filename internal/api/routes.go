package api

import (
	"context"
	"net/http"
	"net/http/pprof"

	"pds2/internal/telemetry"
)

// routeFlag carries the per-route middleware selections of the route
// table. Flags replace ad-hoc wrapping at registration sites: a route
// states what it needs, and install derives the handler chain.
type routeFlag uint8

const (
	// flagTimeoutExempt skips the per-request deadline. pprof collection
	// endpoints run for caller-chosen durations (?seconds=30 CPU
	// profiles, delta mutex profiles) and must outlive it.
	flagTimeoutExempt routeFlag = 1 << iota

	// flagPprofGuarded answers a machine-readable 503 until the operator
	// enables profiling with SetPprof(true) — never an accidental
	// default on a public gateway.
	flagPprofGuarded

	// flagNeedsTelemetry answers 503 while the telemetry registry is
	// disabled: the response would otherwise be a misleading all-zeros.
	flagNeedsTelemetry
)

// route is one entry of the server's declarative route table. An empty
// method registers the bare path (method-agnostic, pprof only);
// everything else uses Go 1.22 "METHOD /path" patterns, which makes
// ServeMux derive 405 verdicts (with an Allow header) that ServeHTTP
// re-emits as the uniform JSON envelope.
type route struct {
	method string
	path   string
	flags  routeFlag
	h      http.HandlerFunc
}

// routes returns the server's full route table — the single source of
// truth for what this API serves. The /v1/ aliases of the operational
// endpoints (/metrics, /metrics/history, /trace, /logs) are ordinary
// rows sharing the legacy row's handler and flags, so both spellings
// behave identically by construction.
func (s *Server) routes() []route {
	return []route{
		{"GET", "/v1/status", 0, s.handleStatus},
		{"GET", "/v1/blocks/{height}", 0, s.handleBlock},
		{"GET", "/v1/accounts/{addr}", 0, s.handleAccount},
		{"GET", "/v1/receipts/{hash}", 0, s.handleReceipt},
		{"GET", "/v1/events", 0, s.handleEvents},
		{"GET", "/v1/workloads", 0, s.handleWorkloads},
		{"GET", "/v1/workloads/{addr}", 0, s.handleWorkload},
		{"GET", "/v1/datasets", 0, s.handleDatasets},
		{"POST", "/v1/datasets", 0, s.handleRegisterDataset},
		{"GET", "/v1/datasets/{id}", 0, s.handleDataset},
		{"PUT", "/v1/datasets/{id}/policy", 0, s.handleSetPolicy},
		{"GET", "/v1/datasets/{id}/check", 0, s.handleCheckPolicy},
		{"POST", "/v1/contracts", 0, s.handleDeployContract},
		{"GET", "/v1/policies/decisions", 0, s.handlePolicyDecisions},
		{"POST", "/v1/transactions", 0, s.handleSubmitTx},
		{"POST", "/v1/views", 0, s.handleView},
		{"POST", "/v1/blocks/seal", 0, s.handleSeal},
		{"GET", "/v1/buildinfo", 0, s.handleBuildInfo},
		{"GET", "/metrics", flagNeedsTelemetry, s.handleMetrics},
		{"GET", "/v1/metrics", flagNeedsTelemetry, s.handleMetrics},
		{"GET", "/metrics/history", flagNeedsTelemetry, s.handleMetricsHistory},
		{"GET", "/v1/metrics/history", flagNeedsTelemetry, s.handleMetricsHistory},
		{"GET", "/trace", flagNeedsTelemetry, s.handleTrace},
		{"GET", "/v1/trace", flagNeedsTelemetry, s.handleTrace},
		{"GET", "/logs", 0, s.handleLogs},
		{"GET", "/v1/logs", 0, s.handleLogs},
		{"GET", "/healthz", 0, s.handleHealthz},
		{"GET", "/readyz", 0, s.handleReadyz},
		// Standard pprof surface. The explicit non-index routes are
		// required because the Index handler only dispatches to named
		// profiles, not cmdline/profile/symbol/trace.
		{"", "/debug/pprof/", flagPprofGuarded | flagTimeoutExempt, pprof.Index},
		{"", "/debug/pprof/cmdline", flagPprofGuarded | flagTimeoutExempt, pprof.Cmdline},
		{"", "/debug/pprof/profile", flagPprofGuarded | flagTimeoutExempt, pprof.Profile},
		{"", "/debug/pprof/symbol", flagPprofGuarded | flagTimeoutExempt, pprof.Symbol},
		{"", "/debug/pprof/trace", flagPprofGuarded | flagTimeoutExempt, pprof.Trace},
	}
}

// install registers every table row on the mux with its flag-derived
// middleware chain.
func (s *Server) install() {
	for _, rt := range s.routes() {
		h := rt.h
		if rt.flags&flagPprofGuarded != 0 {
			h = s.pprofGuard(h)
		}
		if rt.flags&flagNeedsTelemetry != 0 {
			h = telemetryGate(h)
		}
		if rt.flags&flagTimeoutExempt == 0 {
			h = s.withTimeout(h)
		}
		pattern := rt.path
		if rt.method != "" {
			pattern = rt.method + " " + rt.path
		}
		s.mux.HandleFunc(pattern, h)
	}
}

// withTimeout bounds the request context with the server's per-request
// deadline (see SetRequestTimeout), so a stalled client cannot pin the
// market mutex.
func (s *Server) withTimeout(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.reqTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// telemetryGate answers the stable disabled envelope while the
// process-wide telemetry registry is off.
func telemetryGate(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !telemetry.Default().Enabled() {
			writeErr(w, http.StatusServiceUnavailable, CodeDisabled, "telemetry disabled on this node")
			return
		}
		h(w, r)
	}
}

// RouteInfo is one externally visible row of the route table, exposed
// for documentation drift gates and operational tooling.
type RouteInfo struct {
	// Method is the HTTP method; "ANY" marks method-agnostic routes.
	Method string `json:"method"`
	// Path is the Go 1.22 ServeMux pattern (may carry {wildcards}).
	Path string `json:"path"`
	// TimeoutExempt, PprofGuarded and NeedsTelemetry mirror the route's
	// middleware flags.
	TimeoutExempt  bool `json:"timeout_exempt,omitempty"`
	PprofGuarded   bool `json:"pprof_guarded,omitempty"`
	NeedsTelemetry bool `json:"needs_telemetry,omitempty"`
}

// Routes lists every route the server registers, in table order.
func (s *Server) Routes() []RouteInfo {
	table := s.routes()
	out := make([]RouteInfo, 0, len(table))
	for _, rt := range table {
		method := rt.method
		if method == "" {
			method = "ANY"
		}
		out = append(out, RouteInfo{
			Method:         method,
			Path:           rt.path,
			TimeoutExempt:  rt.flags&flagTimeoutExempt != 0,
			PprofGuarded:   rt.flags&flagPprofGuarded != 0,
			NeedsTelemetry: rt.flags&flagNeedsTelemetry != 0,
		})
	}
	return out
}
