package core

import "testing"

func TestRunDefaultScenario(t *testing.T) {
	res, err := Run(Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateComplete {
		t.Fatalf("state = %v", res.State)
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("accuracy = %v", res.Accuracy)
	}
	var paid uint64
	for _, v := range res.Payouts {
		paid += v
	}
	if paid != 100_000 {
		t.Fatalf("payouts sum to %d", paid)
	}
	if res.AuditEvents == 0 || res.TotalGas == 0 || res.Blocks == 0 {
		t.Fatalf("missing accounting: %+v", res)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(Scenario{Seed: 7, Providers: 3, Executors: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Scenario{Seed: 7, Providers: 3, Executors: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.TotalGas != b.TotalGas || a.Workload != b.Workload {
		t.Fatal("same-seed scenarios diverged")
	}
}

func TestRunScalesProviders(t *testing.T) {
	res, err := Run(Scenario{Seed: 2, Providers: 8, Executors: 4, SamplesEach: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != StateComplete {
		t.Fatalf("state = %v", res.State)
	}
	if len(res.Payouts) < 8 {
		t.Fatalf("only %d actors paid", len(res.Payouts))
	}
}

func TestScenarioDefaults(t *testing.T) {
	var s Scenario
	s.Defaults()
	if s.Providers == 0 || s.Executors == 0 || s.Budget == 0 || s.MinProviders == 0 {
		t.Fatalf("defaults not filled: %+v", s)
	}
}

func TestNewIdentityDeterministic(t *testing.T) {
	a := NewIdentity("x", 1)
	b := NewIdentity("x", 1)
	if a.Address() != b.Address() {
		t.Fatal("identity not deterministic")
	}
}
