package core

import (
	"encoding/json"
	"testing"

	"pds2/internal/telemetry"
)

// TestTraceDemoStitching is the distributed-tracing acceptance test: a
// two-node simnet workload must export exactly one stitched trace with
// a single workload.lifecycle root, each stage span attributed to the
// node that recorded it.
func TestTraceDemoStitching(t *testing.T) {
	tr, err := TraceDemo(42)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDemoTrace(tr); err != nil {
		t.Fatal(err)
	}

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "workload.lifecycle" {
		t.Fatalf("roots: %+v", roots)
	}
	root := roots[0]

	// The consumer stages and the executor stages hang under the one
	// root, each on its recording node.
	children := map[string]string{} // name -> node
	for _, s := range tr.Spans {
		if s.Parent == root.ID {
			children[s.Name] = s.Node
		}
	}
	for name, node := range map[string]string{
		"workload.submit":  "node-0",
		"workload.settle":  "node-0",
		"workload.match":   "node-1",
		"workload.execute": "node-1",
	} {
		if children[name] != node {
			t.Errorf("stage %q on node %q, want %q (children: %v)", name, children[name], node, children)
		}
	}

	// The executor.train span nests under workload.execute, not the root.
	var train, execute *telemetry.Span
	for i := range tr.Spans {
		switch tr.Spans[i].Name {
		case "executor.train":
			train = &tr.Spans[i]
		case "workload.execute":
			execute = &tr.Spans[i]
		}
	}
	if train == nil || execute == nil || train.Parent != execute.ID {
		t.Fatalf("train not nested under execute: train=%+v execute=%+v", train, execute)
	}

	// The export renders as valid Chrome trace-event JSON with both node
	// tracks present.
	raw, err := tr.ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	nodes := map[string]bool{}
	complete := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			nodes[ev.Args["name"].(string)] = true
		case "X":
			complete++
		}
	}
	if !nodes["node-0"] || !nodes["node-1"] {
		t.Fatalf("node tracks missing from chrome export: %v", nodes)
	}
	if complete != len(tr.Spans) {
		t.Fatalf("%d complete events for %d spans", complete, len(tr.Spans))
	}
}

// TestTraceDemoDeterministic pins that equal seeds produce equal span
// structure (names, nodes, nesting) — the property that makes the demo
// usable as a CI self-test.
func TestTraceDemoDeterministic(t *testing.T) {
	shape := func(tr telemetry.Trace) []string {
		byID := map[telemetry.SpanID]telemetry.Span{}
		for _, s := range tr.Spans {
			byID[s.ID] = s
		}
		out := make([]string, 0, len(tr.Spans))
		for _, s := range tr.Spans {
			parent := "-"
			if p, ok := byID[s.Parent]; ok {
				parent = p.Name
			}
			out = append(out, s.Name+"@"+s.Node+"<"+parent)
		}
		return out
	}
	a, err := TraceDemo(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceDemo(7)
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := shape(a), shape(b)
	if len(sa) != len(sb) {
		t.Fatalf("span counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("shape differs at %d: %s vs %s", i, sa[i], sb[i])
		}
	}
}
