package core

import (
	"fmt"

	"pds2/internal/simnet"
	"pds2/internal/telemetry"
)

// TraceDemo runs a two-node simnet workload exchange — a consumer node
// and an executor node, each with its own telemetry registry — and
// returns the stitched distributed trace. The consumer opens the
// workload.lifecycle root and records the submit and settle stages; the
// trace context rides the simnet message envelopes so the executor
// node's match and execute spans (with an executor.train child) join
// the same trace. It is the self-test workload behind `pds2 trace
// --self-test` and the distributed-stitching test: the exported trace
// has exactly one root span, with each stage attributed to the node
// that recorded it.
func TraceDemo(seed uint64) (telemetry.Trace, error) {
	consumerReg := telemetry.New()
	consumerReg.SetEnabled(true)
	consumerReg.SetNode("node-0")
	executorReg := telemetry.New()
	executorReg.SetEnabled(true)
	executorReg.SetNode("node-1")

	net := simnet.New(simnet.Config{Seed: seed})

	var root *telemetry.ActiveSpan
	var consumerID, executorID simnet.NodeID
	settled := false

	// Node 0 (consumer): settles when the executor's result arrives.
	consumerID = net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) {
		settle := consumerReg.Tracer().Start("workload.settle", msg.Trace)
		settle.SetAttr("result", fmt.Sprintf("%v", msg.Payload))
		settle.End()
		root.End()
		settled = true
	}))

	// Node 1 (executor): matches and executes on receipt of the offer,
	// continuing the consumer's trace from the message envelope.
	executorID = net.AddNode(simnet.HandlerFunc(func(now simnet.Time, msg simnet.Message) {
		match := executorReg.Tracer().Start("workload.match", msg.Trace)
		match.End()
		execute := executorReg.Tracer().Start("workload.execute", msg.Trace)
		train := executorReg.Tracer().Start("executor.train", execute.Context())
		train.SetAttr("epochs", "3")
		train.End()
		execute.End()
		net.SendCtx(executorID, consumerID, "result", 256, msg.Trace)
	}))

	// The consumer submits at t=0: lifecycle root plus submit stage, then
	// the workload offer travels to the executor with the root's context.
	net.At(0, func(now simnet.Time) {
		root = consumerReg.Tracer().Start("workload.lifecycle", telemetry.SpanContext{})
		submit := consumerReg.Tracer().Start("workload.submit", root.Context())
		submit.End()
		net.SendCtx(consumerID, executorID, "workload-offer", 512, root.Context())
	})

	net.Run(10 * simnet.Second)
	if !settled {
		return telemetry.Trace{}, fmt.Errorf("core: trace demo did not settle (pending events: %d)", net.Pending())
	}

	col := telemetry.NewCollector()
	col.AddRegistry(consumerReg)
	col.AddRegistry(executorReg)
	traces := col.Traces()
	if len(traces) != 1 {
		return telemetry.Trace{}, fmt.Errorf("core: trace demo produced %d traces, want 1", len(traces))
	}
	return traces[0], nil
}

// VerifyDemoTrace checks the invariants the trace demo promises: one
// root workload.lifecycle span, the consumer stages on node-0, the
// executor stages on node-1, and every span in one trace. It returns
// nil when the trace is a valid stitching.
func VerifyDemoTrace(tr telemetry.Trace) error {
	roots := tr.Roots()
	if len(roots) != 1 {
		return fmt.Errorf("core: %d roots, want 1", len(roots))
	}
	if roots[0].Name != "workload.lifecycle" {
		return fmt.Errorf("core: root span %q, want workload.lifecycle", roots[0].Name)
	}
	wantNode := map[string]string{
		"workload.lifecycle": "node-0",
		"workload.submit":    "node-0",
		"workload.settle":    "node-0",
		"workload.match":     "node-1",
		"workload.execute":   "node-1",
		"executor.train":     "node-1",
	}
	seen := map[string]bool{}
	for _, s := range tr.Spans {
		node, ok := wantNode[s.Name]
		if !ok {
			return fmt.Errorf("core: unexpected span %q", s.Name)
		}
		if s.Node != node {
			return fmt.Errorf("core: span %q on node %q, want %q", s.Name, s.Node, node)
		}
		if s.Trace != roots[0].Trace {
			return fmt.Errorf("core: span %q in trace %016x, want %016x", s.Name, uint64(s.Trace), uint64(roots[0].Trace))
		}
		seen[s.Name] = true
	}
	for name := range wantNode {
		if !seen[name] {
			return fmt.Errorf("core: missing span %q", name)
		}
	}
	return nil
}
