// Package core is the public facade of the PDS² library: it re-exports
// the marketplace types that applications interact with and provides a
// declarative Scenario runner that stands up a complete marketplace —
// governance chain, storage node, providers with synthetic data,
// TEE-backed executors — and drives a workload through the full Fig. 2
// lifecycle.
//
// Applications that need finer control use the underlying packages
// directly (market, ledger, contract, storage, tee, gossip, …); the
// examples/ directory shows both styles.
package core

import (
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
)

// Re-exported marketplace types, so that applications can depend on the
// facade alone.
type (
	// Market is the governance-layer deployment.
	Market = market.Market

	// MarketConfig parameterizes a Market.
	MarketConfig = market.Config

	// Spec is a binding workload specification.
	Spec = market.Spec

	// TrainerParams defines the built-in training workload.
	TrainerParams = market.TrainerParams

	// Consumer, Provider and Executor are the marketplace actors.
	Consumer = market.Consumer
	Provider = market.Provider
	Executor = market.Executor

	// Authorization hands one dataset to one executor for one workload.
	Authorization = market.Authorization

	// Score is one provider's attested contribution weight.
	Score = market.Score

	// WorkloadState is the lifecycle state machine.
	WorkloadState = market.WorkloadState

	// Identity is an actor key pair.
	Identity = identity.Identity

	// Address identifies an actor on the ledger.
	Address = identity.Address
)

// Lifecycle states, re-exported.
const (
	StateOpen      = market.StateOpen
	StateRunning   = market.StateRunning
	StateComplete  = market.StateComplete
	StateCancelled = market.StateCancelled
	StateDisputed  = market.StateDisputed
)

// NewMarket creates a governance-layer deployment.
func NewMarket(cfg MarketConfig) (*Market, error) { return market.New(cfg) }

// NewIdentity derives a deterministic identity from a seed.
func NewIdentity(name string, seed uint64) *Identity {
	return identity.New(name, crypto.NewDRBGFromUint64(seed, "core/"+name))
}

// Scenario declares a complete end-to-end marketplace run.
type Scenario struct {
	Seed         uint64  `json:"seed"`
	Providers    int     `json:"providers"`
	Executors    int     `json:"executors"`
	SamplesEach  int     `json:"samples_each"` // training examples per provider
	Dim          int     `json:"dim"`          // feature dimension
	Epochs       int     `json:"epochs"`
	Budget       uint64  `json:"budget"`       // escrowed reward
	ExecutorFee  uint64  `json:"executor_fee"` // basis points
	MinProviders uint64  `json:"min_providers"`
	LabelNoise   float64 `json:"label_noise"`
}

// Defaults fills zero fields with sensible values.
func (s *Scenario) Defaults() {
	if s.Providers == 0 {
		s.Providers = 4
	}
	if s.Executors == 0 {
		s.Executors = 2
	}
	if s.SamplesEach == 0 {
		s.SamplesEach = 200
	}
	if s.Dim == 0 {
		s.Dim = 8
	}
	if s.Epochs == 0 {
		s.Epochs = 3
	}
	if s.Budget == 0 {
		s.Budget = 100_000
	}
	if s.ExecutorFee == 0 {
		s.ExecutorFee = 1_000
	}
	if s.MinProviders == 0 {
		s.MinProviders = uint64(s.Providers)
	}
}

// Result summarizes a scenario run.
type Result struct {
	Workload     Address
	State        WorkloadState
	Accuracy     float64 // final model accuracy on held-out data
	Payouts      map[Address]uint64
	Blocks       uint64
	TotalGas     uint64
	AuditEvents  int
	ProviderAddr []Address
	ExecutorAddr []Address
}

// Run stands up a marketplace and drives the scenario through the full
// lifecycle.
func Run(s Scenario) (*Result, error) {
	res, _, err := RunDetailed(s)
	return res, err
}

// RunDetailed is Run, additionally returning the live market so callers
// can inspect contracts, query the audit log or export the chain for
// third-party auditing.
func RunDetailed(s Scenario) (*Result, *Market, error) {
	s.Defaults()
	rng := crypto.NewDRBGFromUint64(s.Seed, "scenario")

	ids := make([]*identity.Identity, 0, s.Providers+s.Executors+1)
	alloc := map[identity.Address]uint64{}
	for i := 0; i < s.Providers+s.Executors+1; i++ {
		id := identity.New(fmt.Sprintf("actor-%d", i), rng.Fork("id"))
		ids = append(ids, id)
		alloc[id.Address()] = 1_000_000
	}
	m, err := market.New(market.Config{Seed: s.Seed, GenesisAlloc: alloc})
	if err != nil {
		return nil, nil, err
	}
	node := storage.NewNode(storage.NewMemStore())

	consumer, err := market.NewConsumer(m, ids[0])
	if err != nil {
		return nil, nil, err
	}

	data, _ := ml.GenerateClassification(ml.SyntheticConfig{
		N: s.SamplesEach * s.Providers, Dim: s.Dim, LabelNoise: s.LabelNoise,
	}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	parts := train.PartitionIID(s.Providers, rng)

	providers := make([]*market.Provider, 0, s.Providers)
	for i := 0; i < s.Providers; i++ {
		p, err := market.NewProvider(m, ids[1+i], node)
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.AddDataset(parts[i], semantic.Metadata{
			"category": semantic.String("sensor.generic"),
			"samples":  semantic.Number(float64(parts[i].Len())),
		}); err != nil {
			return nil, nil, err
		}
		providers = append(providers, p)
	}
	executors := make([]*market.Executor, 0, s.Executors)
	for i := 0; i < s.Executors; i++ {
		e, err := market.NewExecutor(m, ids[1+s.Providers+i], node)
		if err != nil {
			return nil, nil, err
		}
		executors = append(executors, e)
	}

	params := market.TrainerParams{Dim: uint64(s.Dim), Epochs: uint64(s.Epochs), Lambda: 1e-3}
	spec := &market.Spec{
		Predicate:      `category isa "sensor" and samples >= 1`,
		MinProviders:   s.MinProviders,
		MinItems:       s.MinProviders,
		ExpiryHeight:   m.Height() + 100_000,
		ExecutorFeeBps: s.ExecutorFee,
		Measurement:    market.TrainerMeasurement(params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         params.Encode(),
	}

	before := map[identity.Address]uint64{}
	for _, id := range ids {
		before[id.Address()] = m.Chain.State().Balance(id.Address())
	}

	workload, err := consumer.SubmitWorkload(spec, s.Budget)
	if err != nil {
		return nil, nil, err
	}
	for i, p := range providers {
		refs, err := p.EligibleData(spec)
		if err != nil {
			return nil, nil, err
		}
		exec := executors[i%len(executors)]
		auths, err := p.Authorize(workload, exec.ID.Address(), refs, spec.ExpiryHeight)
		if err != nil {
			return nil, nil, err
		}
		exec.Accept(workload, auths)
	}
	active := executors[:0:0]
	for _, e := range executors {
		if err := e.Register(workload); err != nil {
			continue // executors without assignments skip this workload
		}
		active = append(active, e)
	}
	if err := consumer.Start(workload); err != nil {
		return nil, nil, err
	}
	payload, err := market.RunWorkloadExecution(workload, active)
	if err != nil {
		return nil, nil, err
	}
	if err := consumer.Finalize(workload); err != nil {
		return nil, nil, err
	}

	model, _, err := market.DecodeResultModel(payload, params.Lambda)
	if err != nil {
		return nil, nil, err
	}
	res := &Result{
		Workload: workload,
		Accuracy: ml.Accuracy(model, test),
		Payouts:  map[identity.Address]uint64{},
		Blocks:   m.Height(),
	}
	res.State, err = m.WorkloadStateOf(workload)
	if err != nil {
		return nil, nil, err
	}
	for _, id := range ids[1:] {
		gain := m.Chain.State().Balance(id.Address()) - before[id.Address()]
		if gain > 0 {
			res.Payouts[id.Address()] = gain
		}
	}
	for i := uint64(1); i <= m.Height(); i++ {
		b, err := m.Chain.BlockAt(i)
		if err != nil {
			return nil, nil, err
		}
		res.TotalGas += b.Header.GasUsed
	}
	res.AuditEvents = len(m.Chain.Events(""))
	for _, p := range providers {
		res.ProviderAddr = append(res.ProviderAddr, p.ID.Address())
	}
	for _, e := range executors {
		res.ExecutorAddr = append(res.ExecutorAddr, e.ID.Address())
	}
	return res, m, nil
}
