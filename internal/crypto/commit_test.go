package crypto

import "testing"

func TestCommitVerify(t *testing.T) {
	rng := NewDRBGFromUint64(1, "commit")
	c, o := Commit([]byte("result hash"), rng)
	if err := c.Verify(o); err != nil {
		t.Fatalf("valid opening rejected: %v", err)
	}
}

func TestCommitWrongValueRejected(t *testing.T) {
	rng := NewDRBGFromUint64(2, "commit")
	c, o := Commit([]byte("honest"), rng)
	o.Value = []byte("tampered")
	if err := c.Verify(o); err == nil {
		t.Fatal("tampered value accepted")
	}
}

func TestCommitWrongNonceRejected(t *testing.T) {
	rng := NewDRBGFromUint64(3, "commit")
	c, o := Commit([]byte("v"), rng)
	o.Nonce = rng.Bytes(commitNonceLen)
	if err := c.Verify(o); err == nil {
		t.Fatal("wrong nonce accepted")
	}
}

func TestCommitBadNonceLength(t *testing.T) {
	rng := NewDRBGFromUint64(4, "commit")
	c, o := Commit([]byte("v"), rng)
	o.Nonce = o.Nonce[:16]
	if err := c.Verify(o); err == nil {
		t.Fatal("short nonce accepted")
	}
}

func TestCommitHiding(t *testing.T) {
	// The same value committed twice yields different digests thanks to
	// the blinding nonce.
	rng := NewDRBGFromUint64(5, "commit")
	c1, _ := Commit([]byte("same"), rng)
	c2, _ := Commit([]byte("same"), rng)
	if c1.Digest == c2.Digest {
		t.Fatal("commitments to the same value are equal: not hiding")
	}
}

func TestCommitCopiesValue(t *testing.T) {
	rng := NewDRBGFromUint64(6, "commit")
	val := []byte("mutable")
	c, o := Commit(val, rng)
	val[0] = 'X' // mutate the caller's slice after committing
	if err := c.Verify(o); err != nil {
		t.Fatalf("opening invalidated by caller-side mutation: %v", err)
	}
}
