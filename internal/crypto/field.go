package crypto

import (
	"fmt"
	"math/bits"
)

// FieldPrime is the Mersenne prime 2^61 - 1. All Shamir secret sharing
// and SMC arithmetic in PDS² works in GF(FieldPrime): it is large enough
// to embed fixed-point encodings of ML values and small enough that
// products fit in 128 bits, keeping field multiplication branch-free and
// fast without math/big.
const FieldPrime uint64 = (1 << 61) - 1

// FieldElem is an element of GF(2^61-1), always kept in canonical reduced
// form [0, FieldPrime).
type FieldElem uint64

// NewFieldElem reduces v into the field.
func NewFieldElem(v uint64) FieldElem {
	return FieldElem(v % FieldPrime)
}

// FieldFromInt64 maps a signed integer into the field, representing
// negative values as p - |v|.
func FieldFromInt64(v int64) FieldElem {
	if v >= 0 {
		return NewFieldElem(uint64(v))
	}
	m := uint64(-v) % FieldPrime
	if m == 0 {
		return 0
	}
	return FieldElem(FieldPrime - m)
}

// Int64 maps the element back to a signed integer, interpreting values in
// the upper half of the field as negative. This is the inverse of
// FieldFromInt64 for |v| < p/2.
func (a FieldElem) Int64() int64 {
	if uint64(a) > FieldPrime/2 {
		return -int64(FieldPrime - uint64(a))
	}
	return int64(a)
}

// FieldAdd returns a+b mod p.
func FieldAdd(a, b FieldElem) FieldElem {
	s := uint64(a) + uint64(b) // < 2^62, no overflow
	if s >= FieldPrime {
		s -= FieldPrime
	}
	return FieldElem(s)
}

// FieldSub returns a-b mod p.
func FieldSub(a, b FieldElem) FieldElem {
	if a >= b {
		return a - b
	}
	return FieldElem(uint64(a) + FieldPrime - uint64(b))
}

// FieldNeg returns -a mod p.
func FieldNeg(a FieldElem) FieldElem {
	if a == 0 {
		return 0
	}
	return FieldElem(FieldPrime - uint64(a))
}

// FieldMul returns a*b mod p using the Mersenne-prime folding reduction:
// for p = 2^61-1, (hi*2^64 + lo) ≡ hi*8 + lo (mod p) after splitting lo
// at bit 61.
func FieldMul(a, b FieldElem) FieldElem {
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	// value = hi*2^64 + lo = hi*2^3*2^61 + lo ≡ hi*8 + lo (mod 2^61-1)
	// Split lo into low 61 bits and high 3 bits.
	sum := (lo & FieldPrime) + (lo >> 61) + (hi << 3)
	// sum < 2^61 + 2^3 + 2^64/2^61*2^3 … fold once more to be safe.
	sum = (sum & FieldPrime) + (sum >> 61)
	if sum >= FieldPrime {
		sum -= FieldPrime
	}
	return FieldElem(sum)
}

// FieldPow returns a^e mod p by square-and-multiply.
func FieldPow(a FieldElem, e uint64) FieldElem {
	result := FieldElem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = FieldMul(result, base)
		}
		base = FieldMul(base, base)
		e >>= 1
	}
	return result
}

// FieldInv returns the multiplicative inverse of a, using Fermat's little
// theorem (a^(p-2) mod p). It panics on zero, which has no inverse; the
// panic indicates a logic error in the caller, not bad external input.
func FieldInv(a FieldElem) FieldElem {
	if a == 0 {
		panic("crypto: inverse of zero field element")
	}
	return FieldPow(a, FieldPrime-2)
}

// FieldDiv returns a/b mod p.
func FieldDiv(a, b FieldElem) FieldElem {
	return FieldMul(a, FieldInv(b))
}

// String implements fmt.Stringer.
func (a FieldElem) String() string { return fmt.Sprintf("%d", uint64(a)) }
