// Package crypto provides the cryptographic primitives shared by every
// PDS² subsystem: hashing, Merkle trees, hash commitments, Shamir secret
// sharing over a 61-bit Mersenne prime field, and deterministic
// randomness (HMAC-DRBG).
//
// Everything in this package is built exclusively on the Go standard
// library and is fully deterministic given its inputs, which is what
// makes PDS² experiments exactly reproducible.
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// HashSize is the size in bytes of a Digest.
const HashSize = sha256.Size

// Digest is a SHA-256 hash value. It is the canonical content identifier
// throughout PDS²: datasets, workload code, blocks, transactions and
// enclave measurements are all addressed by their Digest.
type Digest [HashSize]byte

// ZeroDigest is the all-zero digest, used as a sentinel for "no value".
var ZeroDigest Digest

// HashBytes returns the SHA-256 digest of b.
func HashBytes(b []byte) Digest {
	return sha256.Sum256(b)
}

// HashString returns the SHA-256 digest of s.
func HashString(s string) Digest {
	return sha256.Sum256([]byte(s))
}

// HashConcat hashes the concatenation of the given byte slices. Each part
// is length-prefixed so that the encoding is injective: HashConcat(a, b)
// never equals HashConcat(ab) unless a and b already embed the framing.
func HashConcat(parts ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write(p)
	}
	var d Digest
	h.Sum(d[:0])
	return d
}

// HashDigests hashes a sequence of digests into one, preserving order.
func HashDigests(ds ...Digest) Digest {
	h := sha256.New()
	for _, d := range ds {
		h.Write(d[:])
	}
	var out Digest
	h.Sum(out[:0])
	return out
}

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == ZeroDigest }

// Hex returns the full lowercase hexadecimal encoding of d.
func (d Digest) Hex() string { return hex.EncodeToString(d[:]) }

// Short returns the first 8 hex characters of d, for logs and summaries.
func (d Digest) Short() string { return d.Hex()[:8] }

// String implements fmt.Stringer.
func (d Digest) String() string { return d.Hex() }

// MarshalText implements encoding.TextMarshaler.
func (d Digest) MarshalText() ([]byte, error) {
	return []byte(d.Hex()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (d *Digest) UnmarshalText(text []byte) error {
	b, err := hex.DecodeString(string(text))
	if err != nil {
		return fmt.Errorf("crypto: invalid digest hex: %w", err)
	}
	if len(b) != HashSize {
		return fmt.Errorf("crypto: digest must be %d bytes, got %d", HashSize, len(b))
	}
	copy(d[:], b)
	return nil
}

// DigestFromHex parses a 64-character hex string into a Digest.
func DigestFromHex(s string) (Digest, error) {
	var d Digest
	err := d.UnmarshalText([]byte(s))
	return d, err
}

// MAC computes HMAC-SHA256 of msg under key.
func MAC(key, msg []byte) Digest {
	m := hmac.New(sha256.New, key)
	m.Write(msg)
	var d Digest
	m.Sum(d[:0])
	return d
}

// VerifyMAC reports whether mac is a valid HMAC-SHA256 of msg under key,
// in constant time with respect to the MAC value.
func VerifyMAC(key, msg []byte, mac Digest) bool {
	want := MAC(key, msg)
	return hmac.Equal(want[:], mac[:])
}

// DeriveKey derives a labelled subkey from a master secret using an
// HKDF-style expand step (HMAC-SHA256). Distinct labels yield
// cryptographically independent keys.
func DeriveKey(master []byte, label string) []byte {
	d := MAC(master, append([]byte("pds2/derive/"), label...))
	return d[:]
}
