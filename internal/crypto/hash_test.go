package crypto

import (
	"bytes"
	"testing"
)

func TestHashBytesMatchesHashString(t *testing.T) {
	if HashBytes([]byte("pds2")) != HashString("pds2") {
		t.Fatal("HashBytes and HashString disagree")
	}
}

func TestHashConcatInjective(t *testing.T) {
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	c := HashConcat([]byte("abc"))
	if a == b || a == c || b == c {
		t.Fatal("HashConcat framing is not injective")
	}
}

func TestHashConcatDeterministic(t *testing.T) {
	if HashConcat([]byte("x"), []byte("y")) != HashConcat([]byte("x"), []byte("y")) {
		t.Fatal("HashConcat not deterministic")
	}
}

func TestHashDigestsOrderMatters(t *testing.T) {
	a, b := HashString("a"), HashString("b")
	if HashDigests(a, b) == HashDigests(b, a) {
		t.Fatal("HashDigests must be order sensitive")
	}
}

func TestDigestHexRoundTrip(t *testing.T) {
	d := HashString("round trip")
	parsed, err := DigestFromHex(d.Hex())
	if err != nil {
		t.Fatalf("DigestFromHex: %v", err)
	}
	if parsed != d {
		t.Fatalf("round trip mismatch: %v != %v", parsed, d)
	}
}

func TestDigestFromHexRejectsBadInput(t *testing.T) {
	if _, err := DigestFromHex("zz"); err == nil {
		t.Fatal("expected error for non-hex input")
	}
	if _, err := DigestFromHex("abcd"); err == nil {
		t.Fatal("expected error for short input")
	}
}

func TestDigestIsZero(t *testing.T) {
	if !ZeroDigest.IsZero() {
		t.Fatal("ZeroDigest.IsZero() = false")
	}
	if HashString("x").IsZero() {
		t.Fatal("non-zero digest reported as zero")
	}
}

func TestDigestShort(t *testing.T) {
	d := HashString("short")
	if got := d.Short(); len(got) != 8 || got != d.Hex()[:8] {
		t.Fatalf("Short() = %q", got)
	}
}

func TestMACVerify(t *testing.T) {
	key := []byte("secret key")
	msg := []byte("message")
	mac := MAC(key, msg)
	if !VerifyMAC(key, msg, mac) {
		t.Fatal("valid MAC rejected")
	}
	if VerifyMAC([]byte("wrong"), msg, mac) {
		t.Fatal("MAC verified under wrong key")
	}
	if VerifyMAC(key, []byte("other"), mac) {
		t.Fatal("MAC verified for wrong message")
	}
}

func TestDeriveKeyIndependence(t *testing.T) {
	master := []byte("master secret")
	k1 := DeriveKey(master, "ledger")
	k2 := DeriveKey(master, "storage")
	if bytes.Equal(k1, k2) {
		t.Fatal("distinct labels produced the same key")
	}
	if !bytes.Equal(k1, DeriveKey(master, "ledger")) {
		t.Fatal("DeriveKey not deterministic")
	}
}
