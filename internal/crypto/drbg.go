package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// DRBG is a deterministic random bit generator based on HMAC-SHA256
// (HMAC_DRBG from NIST SP 800-90A, without reseeding). PDS² uses it
// everywhere randomness is needed so that every simulation and experiment
// is exactly reproducible from its seed, while remaining
// cryptographically unpredictable to an observer who lacks the seed.
//
// A DRBG is not safe for concurrent use; create one per goroutine or
// protect it externally.
type DRBG struct {
	key []byte
	v   []byte
}

// NewDRBG creates a generator seeded with the given seed material and a
// personalization label. Distinct labels yield independent streams from
// the same seed.
func NewDRBG(seed []byte, label string) *DRBG {
	d := &DRBG{
		key: make([]byte, sha256.Size),
		v:   make([]byte, sha256.Size),
	}
	for i := range d.v {
		d.v[i] = 0x01
	}
	d.update(append(append([]byte{}, seed...), label...))
	return d
}

// NewDRBGFromUint64 seeds a DRBG from an integer seed, the common case in
// simulations.
func NewDRBGFromUint64(seed uint64, label string) *DRBG {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	return NewDRBG(b[:], label)
}

func (d *DRBG) update(provided []byte) {
	m := hmac.New(sha256.New, d.key)
	m.Write(d.v)
	m.Write([]byte{0x00})
	m.Write(provided)
	d.key = m.Sum(nil)

	m = hmac.New(sha256.New, d.key)
	m.Write(d.v)
	d.v = m.Sum(nil)

	if len(provided) > 0 {
		m = hmac.New(sha256.New, d.key)
		m.Write(d.v)
		m.Write([]byte{0x01})
		m.Write(provided)
		d.key = m.Sum(nil)

		m = hmac.New(sha256.New, d.key)
		m.Write(d.v)
		d.v = m.Sum(nil)
	}
}

// Read fills p with pseudo-random bytes. It never fails; the error is
// always nil and exists to satisfy io.Reader.
func (d *DRBG) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m := hmac.New(sha256.New, d.key)
		m.Write(d.v)
		d.v = m.Sum(nil)
		n += copy(p[n:], d.v)
	}
	d.update(nil)
	return len(p), nil
}

// Bytes returns n fresh pseudo-random bytes.
func (d *DRBG) Bytes(n int) []byte {
	b := make([]byte, n)
	d.Read(b)
	return b
}

// Uint64 returns a uniform pseudo-random 64-bit value.
func (d *DRBG) Uint64() uint64 {
	var b [8]byte
	d.Read(b[:])
	return binary.BigEndian.Uint64(b[:])
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (d *DRBG) Intn(n int) int {
	if n <= 0 {
		panic("crypto: DRBG.Intn requires n > 0")
	}
	// Rejection sampling to avoid modulo bias.
	max := uint64(n)
	limit := math.MaxUint64 - math.MaxUint64%max
	for {
		v := d.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63 returns a uniform value in [0, 2^63).
func (d *DRBG) Int63() int64 {
	return int64(d.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (d *DRBG) Float64() float64 {
	return float64(d.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal value using the Box–Muller
// transform (polar form would need rejection; the trigonometric form is
// branch-free and precise enough for simulation noise).
func (d *DRBG) NormFloat64() float64 {
	u1 := d.Float64()
	for u1 == 0 {
		u1 = d.Float64()
	}
	u2 := d.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (d *DRBG) ExpFloat64() float64 {
	u := d.Float64()
	for u == 0 {
		u = d.Float64()
	}
	return -math.Log(u)
}

// FieldElem returns a uniform element of GF(2^61-1).
func (d *DRBG) FieldElem() FieldElem {
	// Rejection-sample 61-bit values below the prime.
	for {
		v := d.Uint64() & FieldPrime // 61-bit mask equals the prime value
		if v < FieldPrime {
			return FieldElem(v)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n) via Fisher–Yates.
func (d *DRBG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := d.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly shuffles n elements using the provided swap
// function, via Fisher–Yates.
func (d *DRBG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := d.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent child generator labelled by label. The
// parent's state advances, so successive forks with the same label are
// still independent.
func (d *DRBG) Fork(label string) *DRBG {
	return NewDRBG(d.Bytes(32), label)
}
