package crypto

import (
	"testing"
	"testing/quick"
)

func TestFieldAddSubInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := NewFieldElem(a), NewFieldElem(b)
		return FieldSub(FieldAdd(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := NewFieldElem(a), NewFieldElem(b), NewFieldElem(c)
		if FieldMul(x, y) != FieldMul(y, x) {
			return false
		}
		return FieldMul(FieldMul(x, y), z) == FieldMul(x, FieldMul(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := NewFieldElem(a), NewFieldElem(b), NewFieldElem(c)
		return FieldMul(x, FieldAdd(y, z)) == FieldAdd(FieldMul(x, y), FieldMul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFieldMulAgainstBigIntSemantics(t *testing.T) {
	// Spot-check the Mersenne reduction against small cases computable by
	// hand and against the largest elements.
	cases := []struct{ a, b uint64 }{
		{0, 0}, {1, 1}, {2, 3},
		{FieldPrime - 1, FieldPrime - 1},
		{FieldPrime - 1, 2},
		{1 << 60, 1 << 60},
	}
	for _, c := range cases {
		got := FieldMul(FieldElem(c.a%FieldPrime), FieldElem(c.b%FieldPrime))
		// Compute reference via 128-bit decomposition without bits.Mul64:
		// use math/big-free double-and-add.
		want := mulRef(c.a%FieldPrime, c.b%FieldPrime)
		if uint64(got) != want {
			t.Fatalf("FieldMul(%d,%d) = %d, want %d", c.a, c.b, got, want)
		}
	}
}

// mulRef multiplies by repeated doubling, a slow but obviously correct
// reference implementation.
func mulRef(a, b uint64) uint64 {
	var acc uint64
	for b > 0 {
		if b&1 == 1 {
			acc = (acc + a) % FieldPrime
		}
		a = (a + a) % FieldPrime
		b >>= 1
	}
	return acc
}

func TestFieldInv(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 12345, FieldPrime - 1, 1 << 45} {
		a := FieldElem(v)
		if FieldMul(a, FieldInv(a)) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", v)
		}
	}
}

func TestFieldInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FieldInv(0) did not panic")
		}
	}()
	FieldInv(0)
}

func TestFieldPow(t *testing.T) {
	if FieldPow(3, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	if FieldPow(3, 1) != 3 {
		t.Fatal("a^1 != a")
	}
	if FieldPow(2, 10) != 1024 {
		t.Fatal("2^10 != 1024")
	}
	// Fermat: a^(p-1) = 1 for a != 0.
	if FieldPow(987654321, FieldPrime-1) != 1 {
		t.Fatal("Fermat's little theorem violated")
	}
}

func TestFieldInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -42, 1 << 40, -(1 << 40)} {
		if FieldFromInt64(v).Int64() != v {
			t.Fatalf("Int64 round trip failed for %d", v)
		}
	}
}

func TestFieldNeg(t *testing.T) {
	f := func(a uint64) bool {
		x := NewFieldElem(a)
		return FieldAdd(x, FieldNeg(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFieldMul(b *testing.B) {
	x, y := FieldElem(123456789012345), FieldElem(987654321098765)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = FieldMul(x, y)
	}
	_ = x
}
