package crypto

import (
	"crypto/subtle"
	"errors"
)

// Commitment is a binding, hiding hash commitment to a byte string.
// PDS² uses commitments when an actor must pin a value on the governance
// layer (for example an executor committing to a result before
// publishing it) without revealing the value itself.
type Commitment struct {
	Digest Digest `json:"digest"`
}

// Opening is the information needed to open a commitment: the committed
// value and the random blinding nonce.
type Opening struct {
	Value []byte `json:"value"`
	Nonce []byte `json:"nonce"`
}

// commitNonceLen is the blinding nonce length; 32 bytes gives the full
// security level of SHA-256's hiding property.
const commitNonceLen = 32

// Commit produces a commitment to value, drawing the blinding nonce from
// rng. The returned Opening must be kept secret until reveal time.
func Commit(value []byte, rng *DRBG) (Commitment, Opening) {
	nonce := rng.Bytes(commitNonceLen)
	o := Opening{Value: append([]byte(nil), value...), Nonce: nonce}
	return Commitment{Digest: commitmentDigest(o)}, o
}

func commitmentDigest(o Opening) Digest {
	return HashConcat([]byte("pds2/commit"), o.Nonce, o.Value)
}

// Verify checks that the opening matches the commitment in constant time.
func (c Commitment) Verify(o Opening) error {
	if len(o.Nonce) != commitNonceLen {
		return errors.New("crypto: commitment nonce has wrong length")
	}
	want := commitmentDigest(o)
	if subtle.ConstantTimeCompare(want[:], c.Digest[:]) != 1 {
		return errors.New("crypto: commitment opening does not match")
	}
	return nil
}
