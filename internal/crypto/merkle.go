package crypto

import (
	"errors"
	"fmt"
)

// Domain-separation prefixes for Merkle hashing. Leaves and interior
// nodes are hashed under different prefixes so that a proof for a leaf
// can never be re-interpreted as a proof for an interior node.
var (
	merkleLeafPrefix = []byte{0x00}
	merkleNodePrefix = []byte{0x01}
)

// MerkleTree is an immutable binary Merkle tree over a list of leaves.
// It is used by the ledger (transaction roots), by the storage subsystem
// (chunked dataset integrity) and by the governance layer (audit logs).
//
// The tree for n leaves is the unbalanced "Bitcoin-style" construction:
// an odd node at the end of a level is promoted unchanged to the level
// above, so no leaf is ever duplicated and second-preimage attacks via
// duplicated leaves are impossible.
type MerkleTree struct {
	levels [][]Digest // levels[0] are leaf hashes, last level is the root
}

// NewMerkleTree builds the tree for the given leaf payloads.
// It returns an error for an empty leaf list: an empty tree has no
// well-defined root and callers should use ZeroDigest explicitly instead.
func NewMerkleTree(leaves [][]byte) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, errors.New("crypto: merkle tree requires at least one leaf")
	}
	level := make([]Digest, len(leaves))
	for i, leaf := range leaves {
		level[i] = HashConcat(merkleLeafPrefix, leaf)
	}
	t := &MerkleTree{levels: [][]Digest{level}}
	for len(level) > 1 {
		next := make([]Digest, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, hashMerkleNode(level[i], level[i+1]))
			} else {
				next = append(next, level[i]) // promote odd node
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// MerkleRootOf is a convenience wrapper returning just the root digest of
// the given leaves, or ZeroDigest when leaves is empty.
func MerkleRootOf(leaves [][]byte) Digest {
	if len(leaves) == 0 {
		return ZeroDigest
	}
	t, _ := NewMerkleTree(leaves)
	return t.Root()
}

func hashMerkleNode(left, right Digest) Digest {
	return HashConcat(merkleNodePrefix, left[:], right[:])
}

// Root returns the Merkle root digest.
func (t *MerkleTree) Root() Digest {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// Len returns the number of leaves.
func (t *MerkleTree) Len() int { return len(t.levels[0]) }

// MerkleProof is an inclusion proof for a single leaf. Path holds the
// sibling digests from the leaf level upward; Index encodes the leaf
// position, whose bits determine on which side each sibling lies.
type MerkleProof struct {
	Index int      `json:"index"`
	Path  []Digest `json:"path"`
}

// Prove returns the inclusion proof for the leaf at index i.
func (t *MerkleTree) Prove(i int) (MerkleProof, error) {
	if i < 0 || i >= t.Len() {
		return MerkleProof{}, fmt.Errorf("crypto: merkle leaf index %d out of range [0,%d)", i, t.Len())
	}
	proof := MerkleProof{Index: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sibling := idx ^ 1
		if sibling < len(level) {
			proof.Path = append(proof.Path, level[sibling])
		} else {
			// Odd node promoted: no sibling at this level, mark with the
			// zero digest which VerifyMerkleProof treats as "promote".
			proof.Path = append(proof.Path, ZeroDigest)
		}
		idx /= 2
	}
	return proof, nil
}

// VerifyMerkleProof checks that leaf is included under root according to
// the proof. The zero digest in the path marks a promoted (sibling-less)
// position.
func VerifyMerkleProof(root Digest, leaf []byte, proof MerkleProof) bool {
	if proof.Index < 0 {
		return false
	}
	cur := HashConcat(merkleLeafPrefix, leaf)
	idx := proof.Index
	for _, sib := range proof.Path {
		switch {
		case sib.IsZero():
			// promoted node: unchanged
		case idx%2 == 0:
			cur = hashMerkleNode(cur, sib)
		default:
			cur = hashMerkleNode(sib, cur)
		}
		idx /= 2
	}
	return cur == root
}
