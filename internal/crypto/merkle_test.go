package crypto

import (
	"fmt"
	"testing"
	"testing/quick"
)

func makeLeaves(n int) [][]byte {
	leaves := make([][]byte, n)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	return leaves
}

func TestMerkleEmptyRejected(t *testing.T) {
	if _, err := NewMerkleTree(nil); err == nil {
		t.Fatal("expected error for empty leaf list")
	}
}

func TestMerkleRootOfEmptyIsZero(t *testing.T) {
	if !MerkleRootOf(nil).IsZero() {
		t.Fatal("MerkleRootOf(nil) should be the zero digest")
	}
}

func TestMerkleSingleLeaf(t *testing.T) {
	leaves := makeLeaves(1)
	tree, err := NewMerkleTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyMerkleProof(tree.Root(), leaves[0], proof) {
		t.Fatal("single-leaf proof rejected")
	}
}

func TestMerkleProofsAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := makeLeaves(n)
		tree, err := NewMerkleTree(leaves)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			proof, err := tree.Prove(i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !VerifyMerkleProof(tree.Root(), leaves[i], proof) {
				t.Fatalf("n=%d: valid proof for leaf %d rejected", n, i)
			}
			// A proof must not verify for a different leaf payload.
			if VerifyMerkleProof(tree.Root(), []byte("forged"), proof) {
				t.Fatalf("n=%d: forged leaf accepted at index %d", n, i)
			}
		}
	}
}

func TestMerkleProofWrongIndexFails(t *testing.T) {
	leaves := makeLeaves(8)
	tree, _ := NewMerkleTree(leaves)
	proof, _ := tree.Prove(3)
	proof.Index = 4
	if VerifyMerkleProof(tree.Root(), leaves[3], proof) {
		t.Fatal("proof accepted under wrong index")
	}
}

func TestMerkleProveOutOfRange(t *testing.T) {
	tree, _ := NewMerkleTree(makeLeaves(4))
	if _, err := tree.Prove(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := tree.Prove(4); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestMerkleRootChangesWithAnyLeaf(t *testing.T) {
	leaves := makeLeaves(7)
	orig := MerkleRootOf(leaves)
	for i := range leaves {
		mutated := makeLeaves(7)
		mutated[i] = []byte("tampered")
		if MerkleRootOf(mutated) == orig {
			t.Fatalf("root unchanged after mutating leaf %d", i)
		}
	}
}

func TestMerkleLeafVsNodeDomainSeparation(t *testing.T) {
	// The classic second-preimage attack: a two-leaf tree whose leaves are
	// the concatenation of an inner node's children must not share the
	// root of the four-leaf tree. Domain separation prevents it.
	four := makeLeaves(4)
	t4, _ := NewMerkleTree(four)
	l01 := HashConcat(merkleLeafPrefix, four[0])
	l23 := HashConcat(merkleLeafPrefix, four[1])
	inner := hashMerkleNode(l01, l23)
	t2, _ := NewMerkleTree([][]byte{inner[:], inner[:]})
	if t2.Root() == t4.Root() {
		t.Fatal("second-preimage via node/leaf confusion succeeded")
	}
}

func TestMerkleRootPropertyQuick(t *testing.T) {
	// Property: for random leaf sets, every proof verifies and the root is
	// stable across rebuilds.
	f := func(raw [][]byte) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		tree, err := NewMerkleTree(raw)
		if err != nil {
			return false
		}
		tree2, _ := NewMerkleTree(raw)
		if tree.Root() != tree2.Root() {
			return false
		}
		for i := range raw {
			proof, err := tree.Prove(i)
			if err != nil || !VerifyMerkleProof(tree.Root(), raw[i], proof) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
