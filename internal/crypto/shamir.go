package crypto

import (
	"errors"
	"fmt"
)

// Share is one Shamir share of a field element: the evaluation of the
// sharing polynomial at X (which is never zero; f(0) is the secret).
type Share struct {
	X FieldElem `json:"x"`
	Y FieldElem `json:"y"`
}

// SplitSecret splits secret into n shares such that any k of them
// reconstruct it and any k-1 reveal nothing. Randomness for the
// polynomial coefficients is drawn from rng, so the split is
// deterministic for a deterministic rng.
func SplitSecret(secret FieldElem, k, n int, rng *DRBG) ([]Share, error) {
	if k < 1 {
		return nil, errors.New("crypto: shamir threshold must be >= 1")
	}
	if n < k {
		return nil, fmt.Errorf("crypto: shamir needs n >= k, got n=%d k=%d", n, k)
	}
	if uint64(n) >= FieldPrime {
		return nil, errors.New("crypto: too many shares for field size")
	}
	// f(x) = secret + c1 x + ... + c_{k-1} x^{k-1}
	coeffs := make([]FieldElem, k)
	coeffs[0] = secret
	for i := 1; i < k; i++ {
		coeffs[i] = rng.FieldElem()
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := FieldElem(uint64(i + 1))
		shares[i] = Share{X: x, Y: evalPoly(coeffs, x)}
	}
	return shares, nil
}

func evalPoly(coeffs []FieldElem, x FieldElem) FieldElem {
	// Horner's rule.
	var y FieldElem
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = FieldAdd(FieldMul(y, x), coeffs[i])
	}
	return y
}

// CombineShares reconstructs the secret from at least k shares via
// Lagrange interpolation at zero. Shares with duplicate X values are
// rejected because interpolation through them is undefined.
func CombineShares(shares []Share) (FieldElem, error) {
	if len(shares) == 0 {
		return 0, errors.New("crypto: no shares to combine")
	}
	seen := make(map[FieldElem]bool, len(shares))
	for _, s := range shares {
		if s.X == 0 {
			return 0, errors.New("crypto: share with x=0 would reveal the secret directly")
		}
		if seen[s.X] {
			return 0, fmt.Errorf("crypto: duplicate share x=%v", s.X)
		}
		seen[s.X] = true
	}
	var secret FieldElem
	for i, si := range shares {
		// Lagrange basis polynomial evaluated at 0.
		num := FieldElem(1)
		den := FieldElem(1)
		for j, sj := range shares {
			if i == j {
				continue
			}
			num = FieldMul(num, sj.X)                 // (0 - xj) up to sign folded below
			den = FieldMul(den, FieldSub(sj.X, si.X)) // (xj - xi); sign matches num's
		}
		li := FieldDiv(num, den)
		secret = FieldAdd(secret, FieldMul(si.Y, li))
	}
	return secret, nil
}
