package crypto

import (
	"testing"
	"testing/quick"
)

func TestShamirRoundTrip(t *testing.T) {
	rng := NewDRBGFromUint64(1, "shamir")
	secret := FieldElem(424242)
	shares, err := SplitSecret(secret, 3, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 5 {
		t.Fatalf("want 5 shares, got %d", len(shares))
	}
	got, err := CombineShares(shares[:3])
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("reconstructed %v, want %v", got, secret)
	}
	// Any other subset of size k works too.
	got, err = CombineShares([]Share{shares[1], shares[4], shares[2]})
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("subset reconstruction failed: %v", got)
	}
}

func TestShamirMoreThanKShares(t *testing.T) {
	rng := NewDRBGFromUint64(2, "shamir")
	secret := FieldElem(7)
	shares, _ := SplitSecret(secret, 2, 6, rng)
	got, err := CombineShares(shares) // all six
	if err != nil {
		t.Fatal(err)
	}
	if got != secret {
		t.Fatalf("got %v want %v", got, secret)
	}
}

func TestShamirThresholdHiding(t *testing.T) {
	// With k-1 shares, every candidate secret is consistent with some
	// polynomial: verify that two different secrets can produce the same
	// k-1 shares under suitable randomness — statistically, check that
	// the k-1 shares of two random splits of different secrets are not
	// trivially distinguishable (the first share value differs across
	// secrets with the same rng only because the polynomial differs).
	// Practical check: reconstructing from k-1 shares must NOT return the
	// secret reliably.
	rng := NewDRBGFromUint64(3, "shamir")
	secret := FieldElem(999)
	hits := 0
	for trial := 0; trial < 50; trial++ {
		shares, _ := SplitSecret(secret, 3, 5, rng)
		got, err := CombineShares(shares[:2]) // below threshold
		if err == nil && got == secret {
			hits++
		}
	}
	if hits > 5 {
		t.Fatalf("below-threshold reconstruction matched secret %d/50 times", hits)
	}
}

func TestShamirParameterValidation(t *testing.T) {
	rng := NewDRBGFromUint64(4, "shamir")
	if _, err := SplitSecret(1, 0, 3, rng); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SplitSecret(1, 4, 3, rng); err == nil {
		t.Fatal("n<k accepted")
	}
}

func TestShamirCombineValidation(t *testing.T) {
	if _, err := CombineShares(nil); err == nil {
		t.Fatal("empty share list accepted")
	}
	if _, err := CombineShares([]Share{{X: 0, Y: 1}}); err == nil {
		t.Fatal("x=0 share accepted")
	}
	if _, err := CombineShares([]Share{{X: 1, Y: 1}, {X: 1, Y: 2}}); err == nil {
		t.Fatal("duplicate x accepted")
	}
}

func TestShamirPropertyQuick(t *testing.T) {
	rng := NewDRBGFromUint64(5, "shamir-quick")
	f := func(raw uint64, kRaw, extraRaw uint8) bool {
		secret := NewFieldElem(raw)
		k := int(kRaw)%8 + 1
		n := k + int(extraRaw)%8
		shares, err := SplitSecret(secret, k, n, rng)
		if err != nil {
			return false
		}
		got, err := CombineShares(shares[:k])
		return err == nil && got == secret
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
