package crypto

import (
	"math"
	"testing"
)

func TestDRBGDeterministic(t *testing.T) {
	a := NewDRBGFromUint64(42, "test")
	b := NewDRBGFromUint64(42, "test")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed DRBGs diverged at step %d", i)
		}
	}
}

func TestDRBGLabelSeparation(t *testing.T) {
	a := NewDRBGFromUint64(42, "alpha")
	b := NewDRBGFromUint64(42, "beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different labels produced %d identical outputs", same)
	}
}

func TestDRBGSeedSeparation(t *testing.T) {
	a := NewDRBGFromUint64(1, "x")
	b := NewDRBGFromUint64(2, "x")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different seeds produced identical first output")
	}
}

func TestDRBGIntnBounds(t *testing.T) {
	rng := NewDRBGFromUint64(7, "intn")
	for i := 0; i < 1000; i++ {
		v := rng.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestDRBGIntnPanicsOnNonPositive(t *testing.T) {
	rng := NewDRBGFromUint64(7, "intn")
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	rng.Intn(0)
}

func TestDRBGFloat64Range(t *testing.T) {
	rng := NewDRBGFromUint64(8, "f64")
	for i := 0; i < 1000; i++ {
		v := rng.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestDRBGFloat64Mean(t *testing.T) {
	rng := NewDRBGFromUint64(9, "mean")
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += rng.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestDRBGNormFloat64Moments(t *testing.T) {
	rng := NewDRBGFromUint64(10, "norm")
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestDRBGExpFloat64Mean(t *testing.T) {
	rng := NewDRBGFromUint64(11, "exp")
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential sample %v < 0", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestDRBGPermIsPermutation(t *testing.T) {
	rng := NewDRBGFromUint64(12, "perm")
	p := rng.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestDRBGFieldElemInRange(t *testing.T) {
	rng := NewDRBGFromUint64(13, "field")
	for i := 0; i < 1000; i++ {
		if v := rng.FieldElem(); uint64(v) >= FieldPrime {
			t.Fatalf("FieldElem out of range: %v", v)
		}
	}
}

func TestDRBGForkIndependence(t *testing.T) {
	parent := NewDRBGFromUint64(14, "parent")
	c1 := parent.Fork("child")
	c2 := parent.Fork("child")
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("successive forks with the same label are identical")
	}
}

func TestDRBGReadFillsBuffer(t *testing.T) {
	rng := NewDRBGFromUint64(15, "read")
	buf := make([]byte, 100)
	n, err := rng.Read(buf)
	if err != nil || n != 100 {
		t.Fatalf("Read = (%d, %v)", n, err)
	}
	allZero := true
	for _, b := range buf {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Fatal("Read produced all-zero output")
	}
}

func TestDRBGShuffle(t *testing.T) {
	rng := NewDRBGFromUint64(16, "shuffle")
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make(map[int]bool)
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}
