package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// HealthState classifies a component (or a whole node): Healthy serves
// normally, Degraded serves with reduced capability or capacity, and
// Unhealthy should be restarted or drained. States order by severity,
// so the aggregate of many checks is their maximum.
type HealthState int

// Health states, best to worst.
const (
	Healthy HealthState = iota
	Degraded
	Unhealthy
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// MarshalJSON encodes the state as its lowercase name.
func (s HealthState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes the lowercase name form.
func (s *HealthState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"healthy"`:
		*s = Healthy
	case `"degraded"`:
		*s = Degraded
	case `"unhealthy"`:
		*s = Unhealthy
	default:
		return fmt.Errorf("telemetry: bad health state %s", b)
	}
	return nil
}

// CheckResult is one component's verdict at evaluation time.
type CheckResult struct {
	State  HealthState `json:"state"`
	Detail string      `json:"detail,omitempty"`
}

// OK is the all-clear check result.
func OK(detail string) CheckResult { return CheckResult{State: Healthy, Detail: detail} }

// DegradedResult flags reduced capability.
func DegradedResult(detail string) CheckResult {
	return CheckResult{State: Degraded, Detail: detail}
}

// UnhealthyResult flags a component that cannot serve.
func UnhealthyResult(detail string) CheckResult {
	return CheckResult{State: Unhealthy, Detail: detail}
}

// HealthCheck probes one component. Checks run synchronously inside
// Evaluate, so they must be cheap and must tolerate the caller's
// locking discipline (the API server evaluates under its market mutex).
type HealthCheck func() CheckResult

// HealthReport is the aggregated GET /healthz body.
type HealthReport struct {
	Status     HealthState            `json:"status"`
	Components map[string]CheckResult `json:"components"`
}

// Health aggregates named component checks into one node verdict. It is
// safe for concurrent registration and evaluation. A Health bound to a
// registry (NewHealth) exports each evaluation as gauges:
// health.state (0 healthy / 1 degraded / 2 unhealthy) and one
// health.component.<name> per check.
type Health struct {
	r      *Registry // nil: no gauge export
	mu     sync.Mutex
	checks map[string]HealthCheck
}

// NewHealth returns an empty health aggregator exporting gauges into r
// (nil disables gauge export).
func NewHealth(r *Registry) *Health {
	return &Health{r: r, checks: make(map[string]HealthCheck)}
}

// Register adds (or replaces) a named component check.
func (h *Health) Register(name string, check HealthCheck) {
	h.mu.Lock()
	h.checks[name] = check
	h.mu.Unlock()
}

// Deregister removes a component check.
func (h *Health) Deregister(name string) {
	h.mu.Lock()
	delete(h.checks, name)
	h.mu.Unlock()
}

// Evaluate runs every check and aggregates: the node is as unhealthy as
// its worst component. A node with no checks registered is Healthy
// (vacuously — nothing claims otherwise).
func (h *Health) Evaluate() HealthReport {
	h.mu.Lock()
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	checks := make([]HealthCheck, len(names))
	for i, name := range names {
		checks[i] = h.checks[name]
	}
	h.mu.Unlock()

	report := HealthReport{Status: Healthy, Components: make(map[string]CheckResult, len(names))}
	for i, name := range names {
		res := checks[i]()
		report.Components[name] = res
		if res.State > report.Status {
			report.Status = res.State
		}
		if h.r != nil {
			h.r.Gauge("health.component." + name).Set(float64(res.State))
		}
	}
	if h.r != nil {
		h.r.Gauge("health.state").Set(float64(report.Status))
	}
	return report
}

// Heartbeat is a liveness signal for components that do work in bursts
// (executors, sealers): the worked path calls Beat, and the health
// check degrades when no beat arrived within MaxAge. The zero beat
// state reports Degraded ("no beat yet"), never Unhealthy, so a node
// that simply has not been asked to work is not flagged for restart.
type Heartbeat struct {
	maxAge time.Duration
	now    func() time.Time // injectable for tests
	beats  atomic.Uint64
	last   atomic.Int64 // unix nanoseconds of the last beat
}

// NewHeartbeat builds a heartbeat with the given staleness bound
// (<= 0 selects 5 minutes).
func NewHeartbeat(maxAge time.Duration) *Heartbeat {
	if maxAge <= 0 {
		maxAge = 5 * time.Minute
	}
	return &Heartbeat{maxAge: maxAge, now: time.Now}
}

// SetClock overrides the heartbeat's time source (tests).
func (hb *Heartbeat) SetClock(now func() time.Time) { hb.now = now }

// Beat records one unit of liveness.
func (hb *Heartbeat) Beat() {
	hb.beats.Add(1)
	hb.last.Store(hb.now().UnixNano())
}

// Beats returns the total number of beats.
func (hb *Heartbeat) Beats() uint64 { return hb.beats.Load() }

// Check is the HealthCheck over this heartbeat.
func (hb *Heartbeat) Check() CheckResult {
	n := hb.beats.Load()
	if n == 0 {
		return DegradedResult("no beat yet")
	}
	age := hb.now().Sub(time.Unix(0, hb.last.Load()))
	if age > hb.maxAge {
		return DegradedResult(fmt.Sprintf("last beat %s ago (max %s)", age.Round(time.Second), hb.maxAge))
	}
	return OK(fmt.Sprintf("%d beats", n))
}

// stdHealth is the process-wide health aggregator, exporting gauges
// into the default registry.
var stdHealth = NewHealth(std)

// DefaultHealth returns the process-wide health aggregator.
func DefaultHealth() *Health { return stdHealth }

// RegisterHealthCheck adds a check to the process-wide aggregator.
func RegisterHealthCheck(name string, check HealthCheck) {
	stdHealth.Register(name, check)
}

// EvalHealth evaluates the process-wide aggregator.
func EvalHealth() HealthReport { return stdHealth.Evaluate() }
