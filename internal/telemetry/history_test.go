package telemetry

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// fakeClock is an injectable history clock advancing by a fixed step per
// Record, letting tests fabricate precise (or skewed) timelines.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func historyAt(r *Registry, start time.Time, step time.Duration, capacity int) *History {
	h := NewHistory(r, time.Second, capacity)
	h.now = (&fakeClock{t: start, step: step}).now
	return h
}

func TestHistoryRecordAndSeries(t *testing.T) {
	r := enabled(t)
	r.SetNode("n1")
	g := r.Gauge("ledger.mempool.depth")
	h := historyAt(r, time.Unix(1000, 0), time.Second, 16)

	for i := 0; i < 5; i++ {
		g.Set(float64(i * 10))
		h.Record()
	}
	samples := h.Samples()
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].UnixNS <= samples[i-1].UnixNS {
			t.Fatal("samples out of record order")
		}
	}
	series := HistoryDump{Samples: samples}.Series("ledger.mempool.depth")
	if len(series) != 5 || series[0].Value != 0 || series[4].Value != 40 {
		t.Fatalf("series = %+v", series)
	}
	if samples[0].Node != "n1" {
		t.Fatalf("node = %q", samples[0].Node)
	}
}

func TestHistoryRingWraps(t *testing.T) {
	r := enabled(t)
	g := r.Gauge("v")
	h := historyAt(r, time.Unix(1000, 0), time.Second, 4)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		h.Record()
	}
	samples := h.Samples()
	if len(samples) != 4 {
		t.Fatalf("wrapped ring holds %d, want 4", len(samples))
	}
	// Oldest retained sample is i=6, newest i=9.
	first, _ := samples[0].Get("v")
	last, _ := samples[3].Get("v")
	if first.Value != 6 || last.Value != 9 {
		t.Fatalf("ring kept [%v..%v], want [6..9]", first.Value, last.Value)
	}
}

func TestHistoryWindow(t *testing.T) {
	r := enabled(t)
	r.Gauge("v").Set(1)
	clock := &fakeClock{t: time.Unix(1000, 0), step: time.Second}
	h := NewHistory(r, time.Second, 32)
	h.now = clock.now
	for i := 0; i < 10; i++ {
		h.Record()
	}
	// Clock is now at t=1010s; a 3.5s window cuts at 1006.5 and keeps the
	// samples stamped 1007..1010 — but Window() itself advances the fake
	// clock once, so cut = 1011-3.5 = 1007.5, keeping 1008..1010.
	got := h.Window(3500 * time.Millisecond)
	if len(got) != 3 {
		t.Fatalf("window = %d samples, want 3", len(got))
	}
	if all := h.Window(0); len(all) != 10 {
		t.Fatalf("zero window = %d samples, want all 10", len(all))
	}
}

func TestHistoryDumpJSONRoundTrip(t *testing.T) {
	r := enabled(t)
	r.SetNode("node-a")
	r.Gauge("depth").Set(7)
	r.Histogram("lat", nil).Observe(0.5)
	h := historyAt(r, time.Unix(1000, 0), time.Second, 8)
	h.Record()
	h.Record()

	raw, err := json.Marshal(h.Dump(0))
	if err != nil {
		t.Fatal(err)
	}
	var d HistoryDump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Node != "node-a" || d.Capacity != 8 || d.IntervalNS != int64(time.Second) {
		t.Fatalf("dump header %+v", d)
	}
	if len(d.Samples) != 2 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	if m, ok := d.Samples[0].Get("depth"); !ok || m.Value != 7 {
		t.Fatalf("depth metric lost in round trip: %+v ok=%v", m, ok)
	}
}

func TestHistoryEmptyDumpSerializesEmptyArray(t *testing.T) {
	h := NewHistory(enabled(t), time.Second, 4)
	raw, err := json.Marshal(h.Dump(0))
	if err != nil {
		t.Fatal(err)
	}
	var d struct {
		Samples []HistorySample `json:"samples"`
	}
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Samples == nil {
		t.Fatalf("samples serialized as null: %s", raw)
	}
}

func TestHistoryStartStop(t *testing.T) {
	r := enabled(t)
	r.Gauge("v").Set(1)
	h := NewHistory(r, time.Millisecond, 64)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(h.Samples()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	n := len(h.Samples())
	if n < 3 {
		t.Fatalf("ticker recorded %d samples, want >= 3", n)
	}
	time.Sleep(5 * time.Millisecond)
	if got := len(h.Samples()); got != n {
		t.Fatalf("history kept recording after Stop: %d -> %d", n, got)
	}
}

func TestEnableHistoryDefault(t *testing.T) {
	defer DisableHistory()
	h := EnableHistory(time.Millisecond, 16)
	if DefaultHistory() != h {
		t.Fatal("DefaultHistory did not return the enabled ring")
	}
	h2 := EnableHistory(time.Millisecond, 32)
	if DefaultHistory() != h2 || h2 == h {
		t.Fatal("re-enable did not swap the default ring")
	}
	DisableHistory()
	if DefaultHistory() != nil {
		t.Fatal("DisableHistory left a default ring")
	}
}

// --- Collector history merging (multi-node, disjoint metrics, skew) ---

func TestCollectorMergesMultiNodeHistory(t *testing.T) {
	ra := enabled(t)
	ra.SetNode("a")
	ra.Gauge("depth").Set(1)
	ha := historyAt(ra, time.Unix(100, 0), time.Second, 8)
	ha.Record()
	ha.Record()

	rb := enabled(t)
	rb.SetNode("b")
	rb.Gauge("depth").Set(2)
	hb := historyAt(rb, time.Unix(100, 500*int64(time.Millisecond)), time.Second, 8)
	hb.Record()
	hb.Record()

	c := NewCollector()
	c.AddHistory(ha.Samples()...)
	c.AddHistory(hb.Samples()...)

	merged := c.History()
	if len(merged) != 4 {
		t.Fatalf("merged %d samples, want 4", len(merged))
	}
	// a@101, b@101.5, a@102, b@102.5 — interleaved by timestamp.
	wantNodes := []string{"a", "b", "a", "b"}
	for i, s := range merged {
		if s.Node != wantNodes[i] {
			t.Fatalf("merged order %d = %q, want %q", i, s.Node, wantNodes[i])
		}
	}
	if nodes := c.HistoryNodes(); len(nodes) != 2 || nodes[0] != "a" || nodes[1] != "b" {
		t.Fatalf("nodes = %v", nodes)
	}
	if sa := c.Series("a", "depth"); len(sa) != 2 || sa[0].Value != 1 {
		t.Fatalf("node a series = %+v", sa)
	}
}

func TestCollectorHistoryIdempotentReAdd(t *testing.T) {
	r := enabled(t)
	r.SetNode("a")
	r.Gauge("v").Set(3)
	h := historyAt(r, time.Unix(100, 0), time.Second, 8)
	h.Record()
	h.Record()

	c := NewCollector()
	c.AddHistory(h.Samples()...)
	c.AddHistory(h.Samples()...) // second collection round, same ring
	if got := len(c.History()); got != 2 {
		t.Fatalf("re-add duplicated samples: %d, want 2", got)
	}
}

func TestCollectorHistoryDisjointMetricSets(t *testing.T) {
	ra := enabled(t)
	ra.SetNode("sealer")
	ra.Gauge("ledger.mempool.depth").Set(42)
	ha := historyAt(ra, time.Unix(100, 0), time.Second, 8)
	ha.Record()

	rb := enabled(t)
	rb.SetNode("follower")
	rb.Counter("gossip.rx.total").Add(9)
	hb := historyAt(rb, time.Unix(100, 0), time.Second, 8)
	hb.Record()

	c := NewCollector()
	c.AddHistory(ha.Samples()...)
	c.AddHistory(hb.Samples()...)

	if s := c.Series("sealer", "ledger.mempool.depth"); len(s) != 1 || s[0].Value != 42 {
		t.Fatalf("sealer series = %+v", s)
	}
	// The follower never registered mempool depth: its series must be
	// empty, not zero-filled.
	if s := c.Series("follower", "ledger.mempool.depth"); len(s) != 0 {
		t.Fatalf("follower grew a phantom mempool series: %+v", s)
	}
	if s := c.Series("follower", "gossip.rx.total"); len(s) != 1 || s[0].Value != 9 {
		t.Fatalf("follower gossip series = %+v", s)
	}
}

func TestCollectorHistoryClockSkew(t *testing.T) {
	// Node "late" runs 10 minutes behind node "early". The merge must
	// not drop or reorder either node's own series — it orders globally
	// by reported timestamps, and per-node series stay internally
	// consistent.
	rEarly := enabled(t)
	rEarly.SetNode("early")
	gE := rEarly.Gauge("v")
	hE := historyAt(rEarly, time.Unix(10000, 0), time.Second, 8)

	rLate := enabled(t)
	rLate.SetNode("late")
	gL := rLate.Gauge("v")
	hL := historyAt(rLate, time.Unix(10000-600, 0), time.Second, 8)

	for i := 0; i < 3; i++ {
		gE.Set(float64(100 + i))
		hE.Record()
		gL.Set(float64(200 + i))
		hL.Record()
	}
	c := NewCollector()
	c.AddHistory(hL.Samples()...)
	c.AddHistory(hE.Samples()...)

	merged := c.History()
	if len(merged) != 6 {
		t.Fatalf("merged %d, want 6", len(merged))
	}
	// All of late's (skewed-behind) samples sort before early's.
	for i := 0; i < 3; i++ {
		if merged[i].Node != "late" {
			t.Fatalf("skewed node not first in merge order: %+v", merged[i])
		}
	}
	// Each node's own series remains monotone and value-ordered.
	for node, want := range map[string]float64{"early": 100, "late": 200} {
		s := c.Series(node, "v")
		if len(s) != 3 {
			t.Fatalf("%s series len %d", node, len(s))
		}
		for i, p := range s {
			if p.Value != want+float64(i) {
				t.Fatalf("%s series out of order: %+v", node, s)
			}
			if i > 0 && p.UnixNS <= s[i-1].UnixNS {
				t.Fatalf("%s series timestamps not increasing", node)
			}
		}
	}
}

func TestCollectorAddHistoryDumpInheritsNode(t *testing.T) {
	r := enabled(t)
	r.Gauge("v").Set(5)
	h := historyAt(r, time.Unix(100, 0), time.Second, 8)
	h.Record()

	d := h.Dump(0)
	d.Node = "from-dump" // samples themselves have no node name
	c := NewCollector()
	c.AddHistoryDump(d)
	if s := c.Series("from-dump", "v"); len(s) != 1 || s[0].Value != 5 {
		t.Fatalf("dump node not inherited: %+v", s)
	}
}

func TestSeriesHistogramUsesP99(t *testing.T) {
	r := enabled(t)
	r.SetNode("n")
	hist := r.Histogram("lat", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		hist.Observe(0.005)
	}
	h := historyAt(r, time.Unix(100, 0), time.Second, 8)
	h.Record()
	s := HistoryDump{Samples: h.Samples()}.Series("lat")
	if len(s) != 1 || s[0].Count != 100 {
		t.Fatalf("histogram series = %+v", s)
	}
	if s[0].Value <= 0 {
		t.Fatalf("histogram series value (p99) = %v", s[0].Value)
	}
}

// BenchmarkHistoryRecord prices one history tick on a realistically
// sized registry (100 counters/gauges + 20 histograms). At the default
// 250ms interval the sampler pays this cost 4×/s; the per-tick figure
// bounds the steady-state overhead on any foreground workload — e.g.
// 100µs/tick × 4/s = 0.04% of one core.
func BenchmarkHistoryRecord(b *testing.B) {
	r := New()
	r.SetEnabled(true)
	for i := 0; i < 50; i++ {
		r.Counter(fmt.Sprintf("bench.counter_%02d_total", i)).Inc()
		r.Gauge(fmt.Sprintf("bench.gauge_%02d", i)).Set(float64(i))
	}
	for i := 0; i < 20; i++ {
		h := r.Histogram(fmt.Sprintf("bench.hist_%02d_seconds", i), TimeBuckets)
		for j := 0; j < 100; j++ {
			h.Observe(float64(j) * 1e-4)
		}
	}
	h := NewHistory(r, time.Second, DefaultHistoryCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record()
	}
}
