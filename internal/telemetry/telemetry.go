// Package telemetry is the observability substrate of the PDS²
// reproduction: a lock-sharded metrics registry (counters, gauges and
// fixed-bucket histograms with quantile snapshots) plus a lightweight
// span tracer (trace.go). Every hot path in the stack — ledger block
// production, contract execution, the workload lifecycle, gossip rounds,
// TEE calls — reports into the process-wide default registry, and the
// API server exposes the snapshot on /metrics and /trace.
//
// The design goal is near-zero cost when telemetry is off, which is the
// default: instruments are resolved once (typically into package-level
// vars) and every recording call starts with a single atomic load of the
// enabled flag, so a disabled Counter.Inc or Histogram.Time costs a few
// nanoseconds and allocates nothing (see BenchmarkTelemetryOverhead).
// When enabled, counters and gauges are single atomic operations and
// histogram observations touch one bucket plus a handful of CAS loops;
// registration (name → instrument lookup) is the only locking path and
// is sharded by name hash to stay off the contention radar.
package telemetry

import (
	"fmt"
	"hash/maphash"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the registration-lock fan-out. Registration is rare (hot
// paths hold instrument pointers), so this only matters for Snapshot
// concurrency and pathological lookup storms.
const numShards = 16

// shard is one slice of the name → instrument map with its own lock.
type shard struct {
	mu      sync.RWMutex
	metrics map[string]any // *Counter | *Gauge | *Histogram
}

// Registry holds named instruments and a tracer. The zero value is not
// usable; call New. A Registry starts disabled: instruments accept calls
// but record nothing until SetEnabled(true).
type Registry struct {
	enabled atomic.Bool
	node    atomic.Value // string: this node's identity on recorded spans
	shards  [numShards]shard
	tracer  *Tracer
	seed    maphash.Seed
}

// New returns an empty, disabled registry with a tracer of the default
// span capacity.
func New() *Registry {
	r := &Registry{seed: maphash.MakeSeed()}
	for i := range r.shards {
		r.shards[i].metrics = make(map[string]any)
	}
	r.tracer = newTracer(r, DefaultSpanCapacity)
	return r
}

// SetEnabled turns recording on or off. Off is the default and the
// near-zero-cost state; already-accumulated values are retained.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry records.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// SetNode names the node this registry belongs to. Spans recorded after
// the call carry the name, which is how a Collector attributes merged
// spans to nodes. Safe to call concurrently with recording.
func (r *Registry) SetNode(name string) { r.node.Store(name) }

// Node returns the registry's node name ("" until SetNode).
func (r *Registry) Node() string {
	if v, ok := r.node.Load().(string); ok {
		return v
	}
	return ""
}

// Tracer returns the registry's span tracer.
func (r *Registry) Tracer() *Tracer { return r.tracer }

func (r *Registry) shardFor(name string) *shard {
	return &r.shards[maphash.String(r.seed, name)%numShards]
}

// lookup finds or creates the instrument under name. create must return
// a fresh instrument; a kind mismatch with an existing name panics, as
// it is always a programming error.
func (r *Registry) lookup(name string, kind string, create func() any) any {
	s := r.shardFor(name)
	s.mu.RLock()
	m, ok := s.metrics[name]
	s.mu.RUnlock()
	if !ok {
		s.mu.Lock()
		if m, ok = s.metrics[name]; !ok {
			m = create()
			s.metrics[name] = m
		}
		s.mu.Unlock()
	}
	switch m.(type) {
	case *Counter:
		if kind != KindCounter {
			panic(fmt.Sprintf("telemetry: %q is a counter, requested as %s", name, kind))
		}
	case *Gauge:
		if kind != KindGauge {
			panic(fmt.Sprintf("telemetry: %q is a gauge, requested as %s", name, kind))
		}
	case *Histogram:
		if kind != KindHistogram {
			panic(fmt.Sprintf("telemetry: %q is a histogram, requested as %s", name, kind))
		}
	}
	return m
}

// Instrument kinds as they appear in snapshots.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter returns the monotonically increasing counter registered under
// name, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.lookup(name, KindCounter, func() any { return &Counter{r: r, name: name} }).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.lookup(name, KindGauge, func() any { return &Gauge{r: r, name: name} }).(*Gauge)
}

// Histogram returns the histogram registered under name, creating it
// with the given ascending bucket upper bounds on first use (later
// callers inherit the first caller's buckets). Nil buckets select
// TimeBuckets.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	return r.lookup(name, KindHistogram, func() any {
		if len(buckets) == 0 {
			buckets = TimeBuckets
		}
		h := &Histogram{r: r, name: name, bounds: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		h.reset()
		return h
	}).(*Histogram)
}

// --- Counter ---

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and nil-safe, so unwired instruments are inert.
type Counter struct {
	r    *Registry
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n when the registry is enabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.r.enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the accumulated total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge ---

// Gauge is a float64 that can move in both directions (queue depths,
// heights). Safe for concurrent use; nil-safe.
type Gauge struct {
	r    *Registry
	name string
	bits atomic.Uint64 // float64 bits
}

// Set stores v when the registry is enabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.r.enabled.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram ---

// Histogram accumulates observations into fixed buckets and tracks
// count, sum, min and max, from which snapshots derive p50/p95/p99.
// Observations are lock-free; safe for concurrent use; nil-safe.
type Histogram struct {
	r      *Registry
	name   string
	bounds []float64       // ascending upper bounds; implicit +Inf tail
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(math.Float64bits(0))
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
}

// Observe records one value when the registry is enabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.r.enabled.Load() {
		return
	}
	// Binary search for the first bound >= v; the tail bucket is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	casAdd(&h.sum, v)
	casMin(&h.min, v)
	casMax(&h.max, v)
}

func casAdd(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func casMin(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func casMax(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Timer is an in-flight latency measurement bound to a histogram. The
// zero Timer (returned when telemetry is disabled) is inert, so the
// disabled path never reads the clock.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Time starts a timer against the histogram. Observe the elapsed time
// with Stop.
func (h *Histogram) Time() Timer {
	if h == nil || !h.r.enabled.Load() {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the seconds elapsed since Time and returns them. A zero
// Timer records nothing.
func (t Timer) Stop() float64 {
	if t.h == nil {
		return 0
	}
	s := time.Since(t.start).Seconds()
	t.h.Observe(s)
	return s
}

// --- Bucket presets ---

// TimeBuckets covers latencies from 1 µs to 10 s, in seconds — the
// default for every *_seconds histogram.
var TimeBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets covers small cardinalities: batch sizes, depths, churn.
var CountBuckets = []float64{0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// GasBuckets covers contract gas consumption per call.
var GasBuckets = []float64{1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7, 5e7}

// ExpBuckets builds n buckets starting at start, each factor times the
// previous — for callers that need a custom range.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// --- Snapshot ---

// Metric is one instrument's state at snapshot time. Histogram-only
// fields are zero for counters and gauges.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`           // counter total or gauge level
	Count uint64  `json:"count,omitempty"` // histogram observations
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P95   float64 `json:"p95,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Snapshot is a consistent-enough point-in-time view of the registry:
// each instrument is read atomically, sorted by name.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered instrument. It works whether or
// not the registry is enabled (a disabled registry reports whatever was
// accumulated while it was on).
func (r *Registry) Snapshot() Snapshot {
	var out []Metric
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for name, m := range s.metrics {
			switch v := m.(type) {
			case *Counter:
				out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(v.Value())})
			case *Gauge:
				out = append(out, Metric{Name: name, Kind: KindGauge, Value: v.Value()})
			case *Histogram:
				out = append(out, v.snapshot())
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return Snapshot{Metrics: out}
}

func (h *Histogram) snapshot() Metric {
	m := Metric{Name: h.name, Kind: KindHistogram, Count: h.count.Load()}
	if m.Count == 0 {
		return m
	}
	m.Sum = math.Float64frombits(h.sum.Load())
	m.Min = math.Float64frombits(h.min.Load())
	m.Max = math.Float64frombits(h.max.Load())
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	m.P50 = h.quantile(counts, total, 0.50, m.Min, m.Max)
	m.P95 = h.quantile(counts, total, 0.95, m.Min, m.Max)
	m.P99 = h.quantile(counts, total, 0.99, m.Min, m.Max)
	return m
}

// quantile interpolates linearly inside the bucket containing the
// target rank; the open tail bucket reports the observed max.
func (h *Histogram) quantile(counts []uint64, total uint64, q, min, max float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := max
		if i < len(h.bounds) {
			hi = h.bounds[i]
		}
		if hi > max {
			hi = max
		}
		if lo < min {
			lo = min
		}
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return max
}

// Get returns the named metric from the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Families returns the sorted set of metric-name prefixes (the segment
// before the first dot) with at least one non-zero metric — the
// subsystems that actually reported.
func (s Snapshot) Families() []string {
	seen := map[string]bool{}
	for _, m := range s.Metrics {
		if m.Value == 0 && m.Count == 0 {
			continue
		}
		fam, _, _ := strings.Cut(m.Name, ".")
		seen[fam] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Summary renders the non-zero metrics as aligned text, one per line —
// the human-readable form used by the pds2 CLI and the experiment
// runner.
func (s Snapshot) Summary() string {
	var sb strings.Builder
	for _, m := range s.Metrics {
		switch m.Kind {
		case KindHistogram:
			if m.Count == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-34s count=%d sum=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g\n",
				m.Name, m.Count, m.Sum, m.P50, m.P95, m.P99, m.Max)
		default:
			if m.Value == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-34s %.6g\n", m.Name, m.Value)
		}
	}
	return sb.String()
}

// Reset zeroes every instrument and drops all recorded spans, keeping
// registrations intact. Concurrent observers may land on either side of
// the reset; the per-instrument state stays internally consistent.
func (r *Registry) Reset() {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, m := range s.metrics {
			switch v := m.(type) {
			case *Counter:
				v.v.Store(0)
			case *Gauge:
				v.bits.Store(0)
			case *Histogram:
				v.reset()
			}
		}
		s.mu.RUnlock()
	}
	r.tracer.Reset()
}

// --- Default registry ---

// std is the process-wide registry every instrumented package reports
// into. It starts disabled.
var std = New()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// Enable turns on recording in the default registry.
func Enable() { std.SetEnabled(true) }

// Disable turns off recording in the default registry.
func Disable() { std.SetEnabled(false) }

// C returns a counter in the default registry — the form instrumented
// packages use for their package-level instrument vars.
func C(name string) *Counter { return std.Counter(name) }

// G returns a gauge in the default registry.
func G(name string) *Gauge { return std.Gauge(name) }

// H returns a histogram in the default registry.
func H(name string, buckets []float64) *Histogram { return std.Histogram(name, buckets) }

// StartSpan opens a span in the default registry's tracer. A zero
// parent context starts a new trace. Returns nil (inert) when disabled.
func StartSpan(name string, parent SpanContext) *ActiveSpan {
	return std.tracer.Start(name, parent)
}

// SetNode names the default registry's node, for span attribution and
// the structured log.
func SetNode(name string) {
	std.SetNode(name)
	stdLog.SetNode(name)
}
