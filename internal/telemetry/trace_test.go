package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTracerDisabledReturnsNil(t *testing.T) {
	r := New()
	if sp := r.Tracer().Start("x", SpanContext{}); sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
}

func TestSpanTree(t *testing.T) {
	r := enabled(t)
	root := r.Tracer().Start("workload.lifecycle", SpanContext{})
	sub := r.Tracer().Start("workload.submit", root.Context())
	sub.SetAttr("workload", "abcd")
	sub.End()
	exec := r.Tracer().Start("workload.execute", root.Context())
	train := r.Tracer().Start("executor.train", exec.Context())
	train.End()
	exec.End()
	root.End()

	spans := r.Tracer().Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["workload.submit"].Parent != byName["workload.lifecycle"].ID {
		t.Fatal("submit not parented to lifecycle")
	}
	if byName["executor.train"].Parent != byName["workload.execute"].ID {
		t.Fatal("train not parented to execute")
	}
	if byName["workload.submit"].Attrs["workload"] != "abcd" {
		t.Fatal("attr lost")
	}
	for _, s := range spans {
		if s.Trace == 0 {
			t.Fatalf("span %s has no trace ID", s.Name)
		}
		if s.Trace != byName["workload.lifecycle"].Trace {
			t.Fatalf("span %s not in the root's trace", s.Name)
		}
	}
	if byName["workload.lifecycle"].DurNS < byName["workload.execute"].DurNS {
		t.Fatal("root shorter than child")
	}

	tree := r.Tracer().Export().TreeString()
	lifecycleAt := strings.Index(tree, "workload.lifecycle")
	trainAt := strings.Index(tree, "  executor.train")
	if lifecycleAt < 0 || trainAt < 0 || trainAt < lifecycleAt {
		t.Fatalf("tree rendering:\n%s", tree)
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	r := New()
	r.tracer = newTracer(r, 4)
	r.SetEnabled(true)
	for i := 0; i < 6; i++ {
		sp := r.Tracer().Start("s", SpanContext{})
		sp.SetAttr("i", string(rune('0'+i)))
		sp.End()
	}
	spans := r.Tracer().Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans in ring of 4", len(spans))
	}
	if spans[0].Attrs["i"] != "2" || spans[3].Attrs["i"] != "5" {
		t.Fatalf("ring order: %v ... %v", spans[0].Attrs, spans[3].Attrs)
	}
}

func TestTreeStringOrphanedChildBecomesRoot(t *testing.T) {
	r := enabled(t)
	// Parent ID 999 was never recorded (simulates a parent that fell off
	// the ring buffer).
	sp := r.Tracer().Start("orphan", SpanContext{Trace: 7, Span: 999})
	sp.End()
	tree := r.Tracer().Export().TreeString()
	if !strings.HasPrefix(tree, "orphan") {
		t.Fatalf("orphan not rendered as root:\n%s", tree)
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	for _, c := range []SpanContext{
		{},
		{Trace: 1, Span: 2},
		{Trace: 0xdeadbeef00000001, Span: 0xdeadbeef00000002},
	} {
		got, err := ParseSpanContext(c.String())
		if err != nil {
			t.Fatalf("parse %q: %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("round trip %v -> %q -> %v", c, c.String(), got)
		}
	}
	if got, err := ParseSpanContext(""); err != nil || !got.IsZero() {
		t.Fatalf("empty header: %v, %v", got, err)
	}
	if _, err := ParseSpanContext("not-a-context"); err == nil {
		t.Fatal("garbage header parsed")
	}
}

// TestTracerConcurrentOverflow hammers a small ring from many
// goroutines (run under -race), then pins the post-wraparound
// contract: Spans() returns oldest-first in record order, with parent
// linkage intact for every surviving parent/child pair.
func TestTracerConcurrentOverflow(t *testing.T) {
	const capacity = 64
	r := New()
	r.tracer = newTracer(r, capacity)
	r.SetEnabled(true)

	// Phase 1: concurrent parent+child recording, several times the
	// capacity, racing Spans/Export/Reset readers.
	const workers, perWorker = 8, 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				parent := r.Tracer().Start("parent", SpanContext{})
				child := r.Tracer().Start("child", parent.Context())
				child.SetAttr("parent_id", fmt.Sprintf("%d", uint64(parent.ID())))
				child.End()
				parent.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Tracer().Spans()
			_ = r.Tracer().Export()
		}
	}()
	wg.Wait()
	<-done

	spans := r.Tracer().Spans()
	if len(spans) != capacity {
		t.Fatalf("%d spans after overflow, want exactly the capacity %d", len(spans), capacity)
	}
	byID := make(map[SpanID]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		if s.Name != "child" {
			continue
		}
		// Parent linkage must be uncorrupted: the recorded Parent field
		// matches the ID the child saw at Start time.
		if want := s.Attrs["parent_id"]; want != fmt.Sprintf("%d", uint64(s.Parent)) {
			t.Fatalf("child parent link corrupted: recorded %d, attr says %s", uint64(s.Parent), want)
		}
		// A child whose parent survived the wraparound must appear after
		// it in oldest-first order only if the parent was recorded first;
		// in this workload children End before parents, so a surviving
		// pair is always (child, parent) — verify both directions resolve.
		if p, ok := byID[s.Parent]; ok && p.Name != "parent" {
			t.Fatalf("parent ID %d resolved to span %q", uint64(s.Parent), p.Name)
		}
	}

	// Phase 2: deterministic wraparound ordering. Fill the ring twice
	// over sequentially; the survivors must be exactly the newest
	// `capacity` spans, oldest first.
	r.Tracer().Reset()
	const total = capacity*2 + 17
	for i := 0; i < total; i++ {
		sp := r.Tracer().Start("seq", SpanContext{})
		sp.SetAttr("seq", fmt.Sprintf("%04d", i))
		sp.End()
	}
	spans = r.Tracer().Spans()
	if len(spans) != capacity {
		t.Fatalf("%d spans after sequential overflow", len(spans))
	}
	for i, s := range spans {
		want := fmt.Sprintf("%04d", total-capacity+i)
		if s.Attrs["seq"] != want {
			t.Fatalf("span %d: seq %s, want %s (not oldest-first)", i, s.Attrs["seq"], want)
		}
	}
}
