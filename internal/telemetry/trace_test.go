package telemetry

import (
	"strings"
	"testing"
)

func TestTracerDisabledReturnsNil(t *testing.T) {
	r := New()
	if sp := r.Tracer().Start("x", 0); sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
}

func TestSpanTree(t *testing.T) {
	r := enabled(t)
	root := r.Tracer().Start("workload.lifecycle", 0)
	sub := r.Tracer().Start("workload.submit", root.ID())
	sub.SetAttr("workload", "abcd")
	sub.End()
	exec := r.Tracer().Start("workload.execute", root.ID())
	train := r.Tracer().Start("executor.train", exec.ID())
	train.End()
	exec.End()
	root.End()

	spans := r.Tracer().Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["workload.submit"].Parent != byName["workload.lifecycle"].ID {
		t.Fatal("submit not parented to lifecycle")
	}
	if byName["executor.train"].Parent != byName["workload.execute"].ID {
		t.Fatal("train not parented to execute")
	}
	if byName["workload.submit"].Attrs["workload"] != "abcd" {
		t.Fatal("attr lost")
	}
	if byName["workload.lifecycle"].DurNS < byName["workload.execute"].DurNS {
		t.Fatal("root shorter than child")
	}

	tree := r.Tracer().Export().TreeString()
	lifecycleAt := strings.Index(tree, "workload.lifecycle")
	trainAt := strings.Index(tree, "  executor.train")
	if lifecycleAt < 0 || trainAt < 0 || trainAt < lifecycleAt {
		t.Fatalf("tree rendering:\n%s", tree)
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	r := New()
	r.tracer = newTracer(r, 4)
	r.SetEnabled(true)
	for i := 0; i < 6; i++ {
		sp := r.Tracer().Start("s", 0)
		sp.SetAttr("i", string(rune('0'+i)))
		sp.End()
	}
	spans := r.Tracer().Spans()
	if len(spans) != 4 {
		t.Fatalf("%d spans in ring of 4", len(spans))
	}
	if spans[0].Attrs["i"] != "2" || spans[3].Attrs["i"] != "5" {
		t.Fatalf("ring order: %v ... %v", spans[0].Attrs, spans[3].Attrs)
	}
}

func TestTreeStringOrphanedChildBecomesRoot(t *testing.T) {
	r := enabled(t)
	// Parent ID 999 was never recorded (simulates a parent that fell off
	// the ring buffer).
	sp := r.Tracer().Start("orphan", SpanID(999))
	sp.End()
	tree := r.Tracer().Export().TreeString()
	if !strings.HasPrefix(tree, "orphan") {
		t.Fatalf("orphan not rendered as root:\n%s", tree)
	}
}
