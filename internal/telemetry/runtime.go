package telemetry

import (
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sort"
	"sync"
	"time"
)

// Runtime gauge names. The sampler owns these; everything else (the
// loadgen report, the diag bundle, dashboards) reads them by name out
// of snapshots and the metrics history.
const (
	MetricHeapInuse      = "runtime.mem.heap_inuse_bytes"
	MetricHeapAlloc      = "runtime.mem.heap_alloc_bytes"
	MetricHeapSys        = "runtime.mem.heap_sys_bytes"
	MetricHeapInusePeak  = "runtime.mem.heap_inuse_peak_bytes"
	MetricTotalAlloc     = "runtime.mem.total_alloc_bytes"
	MetricGoroutines     = "runtime.goroutines"
	MetricGoroutinesPeak = "runtime.goroutines_peak"
	MetricGOMAXPROCS     = "runtime.gomaxprocs"
	MetricGCCycles       = "runtime.gc.cycles"
	MetricGCPauseP50     = "runtime.gc.pause_p50_seconds"
	MetricGCPauseP99     = "runtime.gc.pause_p99_seconds"
	MetricGCPauseMax     = "runtime.gc.pause_max_seconds"
	MetricSchedLatP50    = "runtime.sched.latency_p50_seconds"
	MetricSchedLatP99    = "runtime.sched.latency_p99_seconds"
)

// gcPauseMetrics and schedLatencyMetrics are the runtime/metrics
// histogram names sampled for pause and scheduler-latency quantiles, in
// preference order — the first one the runtime knows wins, so the
// sampler survives the go1.22 rename of /gc/pauses:seconds.
var (
	gcPauseMetrics      = []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}
	schedLatencyMetrics = []string{"/sched/latencies:seconds"}
)

// RuntimeSampler periodically folds Go runtime health — heap occupancy,
// GC pause quantiles, goroutine counts, scheduler latency — into a
// registry's gauges, which is what makes "what was the GC doing during
// that chaos run" answerable from the metrics history after the fact.
// One sampler samples one registry; Stop is idempotent.
type RuntimeSampler struct {
	r        *Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	samples    []metrics.Sample
	gcPauseIdx int // index into samples, -1 if unsupported
	schedIdx   int

	gHeapInuse     *Gauge
	gHeapAlloc     *Gauge
	gHeapSys       *Gauge
	gHeapPeak      *Gauge
	gTotalAlloc    *Gauge
	gGoroutines    *Gauge
	gGoroutinePeak *Gauge
	gGOMAXPROCS    *Gauge
	gGCCycles      *Gauge
	gGCPauseP50    *Gauge
	gGCPauseP99    *Gauge
	gGCPauseMax    *Gauge
	gSchedP50      *Gauge
	gSchedP99      *Gauge
}

// DefaultRuntimeSampleInterval is how often the runtime sampler reads
// the Go runtime when the caller passes no interval. ReadMemStats
// stops the world for microseconds, so second-granularity is the
// sweet spot between resolution and perturbation.
const DefaultRuntimeSampleInterval = time.Second

// NewRuntimeSampler builds a sampler against r without starting it.
// interval <= 0 selects DefaultRuntimeSampleInterval.
func NewRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	s := &RuntimeSampler{
		r:              r,
		interval:       interval,
		gHeapInuse:     r.Gauge(MetricHeapInuse),
		gHeapAlloc:     r.Gauge(MetricHeapAlloc),
		gHeapSys:       r.Gauge(MetricHeapSys),
		gHeapPeak:      r.Gauge(MetricHeapInusePeak),
		gTotalAlloc:    r.Gauge(MetricTotalAlloc),
		gGoroutines:    r.Gauge(MetricGoroutines),
		gGoroutinePeak: r.Gauge(MetricGoroutinesPeak),
		gGOMAXPROCS:    r.Gauge(MetricGOMAXPROCS),
		gGCCycles:      r.Gauge(MetricGCCycles),
		gGCPauseP50:    r.Gauge(MetricGCPauseP50),
		gGCPauseP99:    r.Gauge(MetricGCPauseP99),
		gGCPauseMax:    r.Gauge(MetricGCPauseMax),
		gSchedP50:      r.Gauge(MetricSchedLatP50),
		gSchedP99:      r.Gauge(MetricSchedLatP99),
	}
	s.gcPauseIdx = s.addSample(gcPauseMetrics)
	s.schedIdx = s.addSample(schedLatencyMetrics)
	return s
}

// addSample registers the first supported metric of the candidate list
// with the sample batch, returning its index or -1.
func (s *RuntimeSampler) addSample(candidates []string) int {
	supported := map[string]bool{}
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	for _, name := range candidates {
		if supported[name] {
			s.samples = append(s.samples, metrics.Sample{Name: name})
			return len(s.samples) - 1
		}
	}
	return -1
}

// StartRuntimeSampler builds a sampler against r, takes one immediate
// sample, and keeps sampling every interval until Stop.
func StartRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	s := NewRuntimeSampler(r, interval)
	s.Sample()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.Sample()
			}
		}
	}()
	return s
}

// Stop halts the background sampling goroutine and waits for it to
// exit. Safe to call more than once; a never-started sampler ignores it.
func (s *RuntimeSampler) Stop() {
	if s.stop == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Sample reads the Go runtime once and stores the result in the
// registry's gauges. Peaks (heap in-use, goroutines) are monotone over
// the sampler's lifetime — a registry Reset restarts them.
func (s *RuntimeSampler) Sample() {
	if !s.r.Enabled() {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.gHeapInuse.Set(float64(ms.HeapInuse))
	s.gHeapAlloc.Set(float64(ms.HeapAlloc))
	s.gHeapSys.Set(float64(ms.HeapSys))
	s.gTotalAlloc.Set(float64(ms.TotalAlloc))
	s.gGCCycles.Set(float64(ms.NumGC))
	if f := float64(ms.HeapInuse); f > s.gHeapPeak.Value() {
		s.gHeapPeak.Set(f)
	}
	n := float64(runtime.NumGoroutine())
	s.gGoroutines.Set(n)
	if n > s.gGoroutinePeak.Value() {
		s.gGoroutinePeak.Set(n)
	}
	s.gGOMAXPROCS.Set(float64(runtime.GOMAXPROCS(0)))

	if len(s.samples) > 0 {
		metrics.Read(s.samples)
		if s.gcPauseIdx >= 0 {
			if h := histOf(&s.samples[s.gcPauseIdx]); h != nil {
				s.gGCPauseP50.Set(histQuantile(h, 0.50))
				s.gGCPauseP99.Set(histQuantile(h, 0.99))
				s.gGCPauseMax.Set(histMax(h))
			}
		}
		if s.schedIdx >= 0 {
			if h := histOf(&s.samples[s.schedIdx]); h != nil {
				s.gSchedP50.Set(histQuantile(h, 0.50))
				s.gSchedP99.Set(histQuantile(h, 0.99))
			}
		}
	}
}

// histOf extracts a runtime/metrics float64 histogram, nil otherwise.
func histOf(s *metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// histQuantile computes q over a runtime/metrics cumulative-lifetime
// histogram (len(Buckets) == len(Counts)+1), attributing each bucket's
// count to its upper bound — conservative for tail quantiles.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank {
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) { // +Inf tail: fall back to the bucket floor
				hi = h.Buckets[i]
			}
			return hi
		}
	}
	last := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(last, 1) {
		last = h.Buckets[len(h.Buckets)-2]
	}
	return last
}

// histMax returns the upper bound of the highest non-empty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		hi := h.Buckets[i+1]
		if math.IsInf(hi, 1) {
			hi = h.Buckets[i]
		}
		return hi
	}
	return 0
}

// --- Profiling control ---

// profileRates remembers what SetProfileRates installed, because the Go
// runtime exposes no getter for the block profile rate.
var profileRates struct {
	mu          sync.Mutex
	mutexFrac   int
	blockRateNS int
}

// SetProfileRates installs runtime contention-profiling rates:
// mutexFraction is the 1/n sampling rate for mutex contention events
// (0 disables, 1 records everything), blockRateNS is the blocking
// threshold in nanoseconds for the block profile (0 disables, 1 records
// everything). Both default to off because they tax the hot paths;
// pds2-node exposes them as flags and `pds2 diag` reads the resulting
// profiles into the bundle.
func SetProfileRates(mutexFraction, blockRateNS int) {
	profileRates.mu.Lock()
	defer profileRates.mu.Unlock()
	runtime.SetMutexProfileFraction(mutexFraction)
	runtime.SetBlockProfileRate(blockRateNS)
	profileRates.mutexFrac = mutexFraction
	profileRates.blockRateNS = blockRateNS
}

// ProfileRates reports the rates last installed via SetProfileRates.
func ProfileRates() (mutexFraction, blockRateNS int) {
	profileRates.mu.Lock()
	defer profileRates.mu.Unlock()
	return profileRates.mutexFrac, profileRates.blockRateNS
}

// --- Build info ---

// BuildInfo pins a measurement to the binary and machine that produced
// it, so a BENCH_*.json or diag bundle from last month is attributable:
// which commit, which Go, which host, how many cores.
type BuildInfo struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	Hostname   string `json:"hostname,omitempty"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitCommit  string `json:"git_commit,omitempty"`
	GitDirty   bool   `json:"git_dirty,omitempty"`
}

// CollectBuildInfo reads the current process's build identity. The git
// commit comes from the module build info (-buildvcs, the default for
// `go build` in a repo) and is empty for `go test` binaries and
// vcs-stripped builds.
func CollectBuildInfo() BuildInfo {
	bi := BuildInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if host, err := os.Hostname(); err == nil {
		bi.Hostname = host
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		settings := make(map[string]string, len(info.Settings))
		for _, s := range info.Settings {
			settings[s.Key] = s.Value
		}
		bi.GitCommit = settings["vcs.revision"]
		bi.GitDirty = settings["vcs.modified"] == "true"
	}
	return bi
}

// sortedRuntimeMetricNames returns every runtime.* gauge name the
// sampler maintains — the diag bundle lists them so postmortems know
// which series to expect in the history.
func sortedRuntimeMetricNames() []string {
	names := []string{
		MetricHeapInuse, MetricHeapAlloc, MetricHeapSys, MetricHeapInusePeak,
		MetricTotalAlloc, MetricGoroutines, MetricGoroutinesPeak, MetricGOMAXPROCS,
		MetricGCCycles, MetricGCPauseP50, MetricGCPauseP99, MetricGCPauseMax,
		MetricSchedLatP50, MetricSchedLatP99,
	}
	sort.Strings(names)
	return names
}
