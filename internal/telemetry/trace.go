package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a recorded span. 0 is "no span" and is the parent of
// root spans. The high 32 bits are a per-tracer random salt, so span IDs
// from different nodes' registries never collide when a Collector merges
// them.
type SpanID uint64

// TraceID groups all spans of one distributed workload, across however
// many nodes it touched. A root span allocates a fresh trace ID; every
// descendant — including spans recorded on other nodes after the context
// crossed the wire — inherits it. 0 means "no trace".
type TraceID uint64

// SpanContext is the compact trace context that crosses process and
// node boundaries: enough to continue a trace on the receiving side.
// It rides in simnet message envelopes, gossip payloads and the
// X-PDS2-Trace HTTP header.
type SpanContext struct {
	Trace TraceID `json:"trace,omitempty"`
	Span  SpanID  `json:"span,omitempty"`
}

// IsZero reports whether the context carries no trace.
func (c SpanContext) IsZero() bool { return c.Trace == 0 && c.Span == 0 }

// String encodes the context as "traceID-spanID" in fixed-width hex —
// the HTTP header wire format.
func (c SpanContext) String() string {
	return fmt.Sprintf("%016x-%016x", uint64(c.Trace), uint64(c.Span))
}

// ParseSpanContext decodes the String form. An empty string is the zero
// context, not an error, so absent headers parse cleanly.
func ParseSpanContext(s string) (SpanContext, error) {
	if s == "" {
		return SpanContext{}, nil
	}
	var tr, sp uint64
	if _, err := fmt.Sscanf(s, "%16x-%16x", &tr, &sp); err != nil {
		return SpanContext{}, fmt.Errorf("telemetry: bad span context %q: %w", s, err)
	}
	return SpanContext{Trace: TraceID(tr), Span: SpanID(sp)}, nil
}

// Span is one finished timed operation. Spans link to their parent by
// ID, forming per-workload trees (workload.lifecycle → submit → match →
// execute → settle); Trace stitches the fragments of one workload back
// together after they were recorded on different nodes, and Node says
// where the span ran.
type Span struct {
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Trace   TraceID           `json:"trace,omitempty"`
	Name    string            `json:"name"`
	Node    string            `json:"node,omitempty"`
	StartNS int64             `json:"start_ns"` // unix nanoseconds
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's propagation context, for parenting remote
// children.
func (s Span) Context() SpanContext { return SpanContext{Trace: s.Trace, Span: s.ID} }

// DefaultSpanCapacity bounds the tracer ring buffer: old spans are
// overwritten once the buffer is full, so tracing is always safe to
// leave on.
const DefaultSpanCapacity = 4096

// Tracer records finished spans into a fixed-capacity ring buffer.
// Starting a span is one atomic increment; recording takes the tracer
// lock once, at End.
type Tracer struct {
	r         *Registry
	salt      uint64 // random high 32 bits of every ID this tracer mints
	next      atomic.Uint64
	nextTrace atomic.Uint64

	mu   sync.Mutex
	buf  []Span
	pos  int
	full bool
}

func newTracer(r *Registry, capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{r: r, salt: idSalt(), buf: make([]Span, capacity)}
}

// idSalt draws the random high half of this tracer's span and trace IDs.
// Two registries colliding requires a 32-bit birthday collision, far
// beyond any realistic node count per collector.
func idSalt() uint64 {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to
		// an unsalted tracer rather than panicking in instrumentation.
		return 0
	}
	return uint64(binary.BigEndian.Uint32(b[:])) << 32
}

// Start opens a span under the given parent context. A zero parent
// starts a new trace. It returns nil when the registry is disabled; all
// ActiveSpan methods are nil-safe, so callers never branch.
func (t *Tracer) Start(name string, parent SpanContext) *ActiveSpan {
	if t == nil || !t.r.enabled.Load() {
		return nil
	}
	trace := parent.Trace
	if trace == 0 {
		trace = TraceID(t.salt | t.nextTrace.Add(1)&0xffffffff)
	}
	return &ActiveSpan{
		t:      t,
		id:     SpanID(t.salt | t.next.Add(1)&0xffffffff),
		trace:  trace,
		parent: parent.Span,
		name:   name,
		start:  time.Now(),
	}
}

// record appends a finished span, overwriting the oldest when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.buf[t.pos] = s
	t.pos++
	if t.pos == len(t.buf) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.buf[:t.pos]...)
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.pos:]...)
	return append(out, t.buf[:t.pos]...)
}

// Reset drops all recorded spans. Span IDs keep increasing, so parent
// links from before a reset never collide with spans after it.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.pos, t.full = 0, false
	t.mu.Unlock()
}

// Trace is the exportable form of the span buffer (the /trace body).
type Trace struct {
	Spans []Span `json:"spans"`
}

// Export snapshots the recorded spans. The slice is never nil, so an
// empty tracer serializes as {"spans": []} rather than null.
func (t *Tracer) Export() Trace {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	return Trace{Spans: spans}
}

// TreeString renders the spans as an indented forest, children under
// parents in start order — the human-readable form for the CLI.
func (tr Trace) TreeString() string {
	children := make(map[SpanID][]Span)
	byID := make(map[SpanID]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		byID[s.ID] = true
	}
	var roots []Span
	for _, s := range tr.Spans {
		// A span whose parent fell off the ring renders as a root.
		if s.Parent == 0 || !byID[s.Parent] {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	byStart := func(spans []Span) {
		sort.Slice(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })
	}
	byStart(roots)
	var sb strings.Builder
	var render func(s Span, depth int)
	render = func(s Span, depth int) {
		fmt.Fprintf(&sb, "%s%s  %s", strings.Repeat("  ", depth), s.Name,
			time.Duration(s.DurNS).Round(time.Microsecond))
		if s.Node != "" {
			fmt.Fprintf(&sb, " @%s", s.Node)
		}
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, s.Attrs[k])
			}
		}
		sb.WriteByte('\n')
		kids := children[s.ID]
		byStart(kids)
		for _, c := range kids {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return sb.String()
}

// ActiveSpan is an open span held by the code path being traced. The
// nil ActiveSpan (telemetry disabled) accepts every call and does
// nothing.
type ActiveSpan struct {
	t      *Tracer
	id     SpanID
	trace  TraceID
	parent SpanID
	name   string
	start  time.Time
	attrs  map[string]string
}

// ID returns the span's ID, for parenting children. Nil spans return 0,
// so children of a disabled span become roots — harmless, since they
// are only created when telemetry is re-enabled mid-flight.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the propagation context children should parent under,
// locally or across the wire. Nil spans return the zero context, so
// disabled-telemetry sends carry no trace bytes.
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// SetAttr attaches a key/value label to the span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// End closes the span and records it. Calling End twice records twice;
// don't.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.record(Span{
		ID:      s.id,
		Parent:  s.parent,
		Trace:   s.trace,
		Name:    s.name,
		Node:    s.t.r.Node(),
		StartNS: s.start.UnixNano(),
		DurNS:   int64(time.Since(s.start)),
		Attrs:   s.attrs,
	})
}
