package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a recorded span. 0 is "no span" and is the parent of
// root spans.
type SpanID uint64

// Span is one finished timed operation. Spans link to their parent by
// ID, forming per-workload trees (workload.lifecycle → submit → match →
// execute → settle).
type Span struct {
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"` // unix nanoseconds
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// DefaultSpanCapacity bounds the tracer ring buffer: old spans are
// overwritten once the buffer is full, so tracing is always safe to
// leave on.
const DefaultSpanCapacity = 4096

// Tracer records finished spans into a fixed-capacity ring buffer.
// Starting a span is one atomic increment; recording takes the tracer
// lock once, at End.
type Tracer struct {
	r    *Registry
	next atomic.Uint64

	mu   sync.Mutex
	buf  []Span
	pos  int
	full bool
}

func newTracer(r *Registry, capacity int) *Tracer {
	if capacity < 1 {
		capacity = DefaultSpanCapacity
	}
	return &Tracer{r: r, buf: make([]Span, capacity)}
}

// Start opens a span. It returns nil when the registry is disabled; all
// ActiveSpan methods are nil-safe, so callers never branch.
func (t *Tracer) Start(name string, parent SpanID) *ActiveSpan {
	if t == nil || !t.r.enabled.Load() {
		return nil
	}
	return &ActiveSpan{
		t:      t,
		id:     SpanID(t.next.Add(1)),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// record appends a finished span, overwriting the oldest when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	t.buf[t.pos] = s
	t.pos++
	if t.pos == len(t.buf) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the recorded spans, oldest first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.buf[:t.pos]...)
	}
	out := make([]Span, 0, len(t.buf))
	out = append(out, t.buf[t.pos:]...)
	return append(out, t.buf[:t.pos]...)
}

// Reset drops all recorded spans. Span IDs keep increasing, so parent
// links from before a reset never collide with spans after it.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.pos, t.full = 0, false
	t.mu.Unlock()
}

// Trace is the exportable form of the span buffer (the /trace body).
type Trace struct {
	Spans []Span `json:"spans"`
}

// Export snapshots the recorded spans. The slice is never nil, so an
// empty tracer serializes as {"spans": []} rather than null.
func (t *Tracer) Export() Trace {
	spans := t.Spans()
	if spans == nil {
		spans = []Span{}
	}
	return Trace{Spans: spans}
}

// TreeString renders the spans as an indented forest, children under
// parents in start order — the human-readable form for the CLI.
func (tr Trace) TreeString() string {
	children := make(map[SpanID][]Span)
	byID := make(map[SpanID]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		byID[s.ID] = true
	}
	var roots []Span
	for _, s := range tr.Spans {
		// A span whose parent fell off the ring renders as a root.
		if s.Parent == 0 || !byID[s.Parent] {
			roots = append(roots, s)
		} else {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	byStart := func(spans []Span) {
		sort.Slice(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })
	}
	byStart(roots)
	var sb strings.Builder
	var render func(s Span, depth int)
	render = func(s Span, depth int) {
		fmt.Fprintf(&sb, "%s%s  %s", strings.Repeat("  ", depth), s.Name,
			time.Duration(s.DurNS).Round(time.Microsecond))
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, " %s=%s", k, s.Attrs[k])
			}
		}
		sb.WriteByte('\n')
		kids := children[s.ID]
		byStart(kids)
		for _, c := range kids {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return sb.String()
}

// ActiveSpan is an open span held by the code path being traced. The
// nil ActiveSpan (telemetry disabled) accepts every call and does
// nothing.
type ActiveSpan struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	attrs  map[string]string
}

// ID returns the span's ID, for parenting children. Nil spans return 0,
// so children of a disabled span become roots — harmless, since they
// are only created when telemetry is re-enabled mid-flight.
func (s *ActiveSpan) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr attaches a key/value label to the span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
}

// End closes the span and records it. Calling End twice records twice;
// don't.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.t.record(Span{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.UnixNano(),
		DurNS:   int64(time.Since(s.start)),
		Attrs:   s.attrs,
	})
}
