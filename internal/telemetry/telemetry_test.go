package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func enabled(t *testing.T) *Registry {
	t.Helper()
	r := New()
	r.SetEnabled(true)
	return r
}

func TestCounterDisabledRecordsNothing(t *testing.T) {
	r := New()
	c := r.Counter("x.total")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("disabled counter recorded %d", c.Value())
	}
	r.SetEnabled(true)
	c.Add(3)
	if c.Value() != 3 {
		t.Fatalf("value %d", c.Value())
	}
	r.SetEnabled(false)
	c.Inc()
	if c.Value() != 3 {
		t.Fatal("counter moved while disabled")
	}
}

func TestGaugeSet(t *testing.T) {
	r := enabled(t)
	g := r.Gauge("depth")
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge %v", g.Value())
	}
	g.Set(-1.5)
	if g.Value() != -1.5 {
		t.Fatalf("gauge %v", g.Value())
	}
}

func TestLookupReturnsSameInstrument(t *testing.T) {
	r := enabled(t)
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity")
	}
	if r.Histogram("h", CountBuckets) != r.Histogram("h", TimeBuckets) {
		t.Fatal("histogram identity (first buckets win)")
	}
}

func TestLookupKindMismatchPanics(t *testing.T) {
	r := enabled(t)
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("dual")
}

func TestNilInstrumentsAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(2)
	g.Set(1)
	h.Observe(1)
	h.Time().Stop()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instrument recorded")
	}
	var s *ActiveSpan
	s.SetAttr("k", "v")
	s.End()
	if s.ID() != 0 {
		t.Fatal("nil span has an ID")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := enabled(t)
	h := r.Histogram("lat", []float64{1, 2, 5, 10, 100})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	snap, ok := r.Snapshot().Get("lat")
	if !ok {
		t.Fatal("missing histogram")
	}
	if snap.Count != 100 {
		t.Fatalf("count %d", snap.Count)
	}
	if snap.Min != 1 || snap.Max != 100 {
		t.Fatalf("min/max %v/%v", snap.Min, snap.Max)
	}
	if want := 5050.0; math.Abs(snap.Sum-want) > 1e-9 {
		t.Fatalf("sum %v", snap.Sum)
	}
	// 50 of 100 observations are <= 50, inside the (10, 100] bucket.
	if snap.P50 < 10 || snap.P50 > 100 {
		t.Fatalf("p50 %v out of bucket", snap.P50)
	}
	if snap.P99 < snap.P95 || snap.P95 < snap.P50 {
		t.Fatalf("quantiles not monotone: %v %v %v", snap.P50, snap.P95, snap.P99)
	}
	if snap.P99 > 100 {
		t.Fatalf("p99 %v above max", snap.P99)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	r := enabled(t)
	h := r.Histogram("one", CountBuckets)
	h.Observe(7)
	m, _ := r.Snapshot().Get("one")
	if m.Count != 1 || m.Min != 7 || m.Max != 7 {
		t.Fatalf("snapshot %+v", m)
	}
	for _, q := range []float64{m.P50, m.P95, m.P99} {
		if q < 5 || q > 10 {
			t.Fatalf("quantile %v outside the (5,10] bucket", q)
		}
	}
}

func TestTimerObservesElapsed(t *testing.T) {
	r := enabled(t)
	h := r.Histogram("t", TimeBuckets)
	tm := h.Time()
	time.Sleep(2 * time.Millisecond)
	s := tm.Stop()
	if s <= 0 || h.Count() != 1 {
		t.Fatalf("timer: %v count %d", s, h.Count())
	}
	r.SetEnabled(false)
	if tm := h.Time(); tm.h != nil {
		t.Fatal("disabled Time returned a live timer")
	}
}

func TestSnapshotSortedAndJSONRoundTrip(t *testing.T) {
	r := enabled(t)
	r.Counter("z.last").Inc()
	r.Counter("a.first").Inc()
	r.Gauge("m.mid").Set(3)
	snap := r.Snapshot()
	for i := 1; i < len(snap.Metrics); i++ {
		if snap.Metrics[i-1].Name >= snap.Metrics[i].Name {
			t.Fatal("snapshot not sorted")
		}
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != len(snap.Metrics) {
		t.Fatal("round trip lost metrics")
	}
}

func TestFamilies(t *testing.T) {
	r := enabled(t)
	r.Counter("ledger.tx.applied_total").Add(2)
	r.Counter("gossip.messages_total") // zero: excluded
	r.Histogram("market.stage.submit_seconds", TimeBuckets).Observe(0.1)
	fams := r.Snapshot().Families()
	if len(fams) != 2 || fams[0] != "ledger" || fams[1] != "market" {
		t.Fatalf("families %v", fams)
	}
}

func TestReset(t *testing.T) {
	r := enabled(t)
	r.Counter("c").Add(9)
	r.Gauge("g").Set(9)
	h := r.Histogram("h", CountBuckets)
	h.Observe(9)
	r.Tracer().Start("s", SpanContext{}).End()
	r.Reset()
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || h.Count() != 0 {
		t.Fatal("metrics survived reset")
	}
	if len(r.Tracer().Spans()) != 0 {
		t.Fatal("spans survived reset")
	}
	h.Observe(3)
	m, _ := r.Snapshot().Get("h")
	if m.Count != 1 || m.Min != 3 || m.Max != 3 {
		t.Fatalf("post-reset snapshot %+v", m)
	}
}

func TestSummaryOmitsZeroes(t *testing.T) {
	r := enabled(t)
	r.Counter("live").Add(4)
	r.Counter("dead")
	r.Histogram("empty", CountBuckets)
	s := r.Snapshot().Summary()
	if !contains(s, "live") || contains(s, "dead") || contains(s, "empty") {
		t.Fatalf("summary:\n%s", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// TestRegistryConcurrentStress is the dedicated race-lane test: many
// goroutines hammer every instrument kind plus the tracer while a
// reader snapshots and resets. Run with -race.
func TestRegistryConcurrentStress(t *testing.T) {
	r := enabled(t)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			names := []string{"stress.a", "stress.b", "stress.c"}
			for i := 0; i < iters; i++ {
				n := names[i%len(names)]
				r.Counter(n + ".total").Add(1)
				r.Gauge(n + ".depth").Set(float64(i))
				r.Histogram(n+".lat", TimeBuckets).Observe(float64(i%100) * 1e-4)
				sp := r.Tracer().Start(n, SpanContext{})
				child := r.Tracer().Start(n+".child", sp.Context())
				child.End()
				sp.End()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			snap := r.Snapshot()
			_ = snap.Families()
			_ = r.Tracer().Spans()
			if i%50 == 49 {
				r.Reset()
			}
		}
	}()
	wg.Wait()

	// After the dust settles the totals must be internally consistent:
	// hammer once more with no concurrency and verify exact counts.
	r.Reset()
	for i := 0; i < 100; i++ {
		r.Counter("stress.a.total").Inc()
	}
	if v := r.Counter("stress.a.total").Value(); v != 100 {
		t.Fatalf("post-stress count %d", v)
	}
}

func TestConcurrentRegistrationOneWinner(t *testing.T) {
	r := enabled(t)
	const workers = 16
	got := make([]*Counter, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = r.Counter("same.name")
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent registration produced distinct instruments")
		}
	}
}
