package telemetry

import (
	"encoding/json"
	"testing"
)

func TestCollectorMergesRegistries(t *testing.T) {
	a := enabled(t)
	a.SetNode("node-a")
	b := enabled(t)
	b.SetNode("node-b")

	root := a.Tracer().Start("lifecycle", SpanContext{})
	child := b.Tracer().Start("remote", root.Context())
	child.End()
	root.End()

	col := NewCollector()
	col.AddRegistry(a)
	col.AddRegistry(b)
	// Re-adding is idempotent.
	col.AddRegistry(a)

	tr := col.Trace()
	if len(tr.Spans) != 2 {
		t.Fatalf("%d spans", len(tr.Spans))
	}
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "lifecycle" || roots[0].Node != "node-a" {
		t.Fatalf("roots: %+v", roots)
	}
	for _, s := range tr.Spans {
		if s.Trace != roots[0].Trace {
			t.Fatalf("span %q in a different trace", s.Name)
		}
	}
	traces := col.Traces()
	if len(traces) != 1 {
		t.Fatalf("%d traces", len(traces))
	}
}

func TestCollectorSplitsTraces(t *testing.T) {
	r := enabled(t)
	for i := 0; i < 3; i++ {
		sp := r.Tracer().Start("independent", SpanContext{})
		sp.End()
	}
	col := NewCollector()
	col.AddRegistry(r)
	if traces := col.Traces(); len(traces) != 3 {
		t.Fatalf("%d traces, want 3 independent roots", len(traces))
	}
}

func TestChromeTraceJSON(t *testing.T) {
	a := enabled(t)
	a.SetNode("consumer")
	b := enabled(t)
	b.SetNode("executor")
	root := a.Tracer().Start("workload.lifecycle", SpanContext{})
	remote := b.Tracer().Start("workload.execute", root.Context())
	remote.SetAttr("epochs", "3")
	remote.End()
	root.End()

	col := NewCollector()
	col.AddRegistry(a)
	col.AddRegistry(b)
	raw, err := col.Trace().ChromeTraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not valid chrome trace JSON: %v", err)
	}
	names := map[string]int{} // name -> pid
	procs := map[int]string{} // pid -> process name
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			procs[ev.PID] = ev.Args["name"].(string)
		case "X":
			names[ev.Name] = ev.PID
			if ev.Args["span"] == "" {
				t.Fatalf("event %s has no span context arg", ev.Name)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if procs[names["workload.lifecycle"]] != "consumer" {
		t.Fatalf("lifecycle not attributed to consumer: %v / %v", names, procs)
	}
	if procs[names["workload.execute"]] != "executor" {
		t.Fatalf("execute not attributed to executor: %v / %v", names, procs)
	}
	// Same trace, so both complete events share a tid row.
	if names["workload.lifecycle"] == names["workload.execute"] {
		t.Fatal("distinct nodes mapped to one pid")
	}
}
