package telemetry

import (
	"encoding/json"
	"sort"
	"sync"
)

// Collector merges finished spans from many per-node registries into
// one trace set — the stitching half of distributed tracing. Each node
// records spans locally (cheap, lock-once-per-span); a collector pulls
// the ring snapshots together after the fact, deduplicates, and groups
// by TraceID so a workload that hopped consumer → governance → executor
// renders as a single tree.
type Collector struct {
	mu      sync.Mutex
	spans   map[SpanID]Span
	history map[historyKey]HistorySample
}

// historyKey identifies one history sample across repeated collection
// rounds: a node takes at most one registry snapshot per instant.
type historyKey struct {
	node   string
	unixNS int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		spans:   make(map[SpanID]Span),
		history: make(map[historyKey]HistorySample),
	}
}

// Add merges spans into the collector. Re-added span IDs overwrite, so
// repeated collection rounds from the same node are idempotent.
func (c *Collector) Add(spans ...Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range spans {
		c.spans[s.ID] = s
	}
}

// AddRegistry snapshots a registry's tracer into the collector.
func (c *Collector) AddRegistry(r *Registry) {
	c.Add(r.Tracer().Spans()...)
}

// AddHistory merges one node's metrics-history samples into the
// collector. Keyed by (node, sample time), so re-collecting the same
// ring — or a longer window that overlaps a previous pull — is
// idempotent. Nodes with disjoint metric sets coexist: each sample
// carries its own metric list and History() keeps them separate
// per node.
func (c *Collector) AddHistory(samples ...HistorySample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range samples {
		c.history[historyKey{node: s.Node, unixNS: s.UnixNS}] = s
	}
}

// AddHistoryDump merges a /metrics/history response into the collector.
// Samples missing a node name inherit the dump's.
func (c *Collector) AddHistoryDump(d HistoryDump) {
	for i := range d.Samples {
		if d.Samples[i].Node == "" {
			d.Samples[i].Node = d.Node
		}
	}
	c.AddHistory(d.Samples...)
}

// History returns every collected sample ordered by sample time, ties
// broken by node name for determinism. Clock skew between nodes is the
// caller's problem to interpret — the merge preserves each node's own
// timestamps rather than trying to correct them, so a skewed node's
// samples interleave wherever its clock placed them.
func (c *Collector) History() []HistorySample {
	c.mu.Lock()
	out := make([]HistorySample, 0, len(c.history))
	for _, s := range c.history {
		out = append(out, s)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].UnixNS != out[j].UnixNS {
			return out[i].UnixNS < out[j].UnixNS
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// NodeHistory returns one node's samples in time order.
func (c *Collector) NodeHistory(node string) []HistorySample {
	all := c.History()
	out := all[:0:0]
	for _, s := range all {
		if s.Node == node {
			out = append(out, s)
		}
	}
	return out
}

// HistoryNodes returns the node names present in the merged history,
// sorted.
func (c *Collector) HistoryNodes() []string {
	c.mu.Lock()
	seen := make(map[string]bool)
	for k := range c.history {
		seen[k.node] = true
	}
	c.mu.Unlock()
	nodes := make([]string, 0, len(seen))
	for n := range seen {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// Series extracts one metric's merged time series for one node. Samples
// where the node never registered the metric are skipped, so nodes with
// disjoint metric sets yield disjoint series rather than zero-filled
// ones.
func (c *Collector) Series(node, metric string) []SeriesPoint {
	return seriesOf(c.NodeHistory(node), metric)
}

// Trace returns every collected span as one Trace, ordered by start
// time (ties broken by span ID for determinism).
func (c *Collector) Trace() Trace {
	c.mu.Lock()
	spans := make([]Span, 0, len(c.spans))
	for _, s := range c.spans {
		spans = append(spans, s)
	}
	c.mu.Unlock()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].ID < spans[j].ID
	})
	return Trace{Spans: spans}
}

// Traces splits the collected spans by TraceID, each sorted by start
// time, ordered by the earliest span of each trace. Spans recorded
// before trace propagation existed (TraceID 0) group together.
func (c *Collector) Traces() []Trace {
	all := c.Trace().Spans
	byTrace := make(map[TraceID][]Span)
	var order []TraceID
	for _, s := range all {
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	out := make([]Trace, 0, len(order))
	for _, id := range order {
		out = append(out, Trace{Spans: byTrace[id]})
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event, "M" = metadata). chrome://tracing and Perfetto both
// load the {"traceEvents": [...]} container emitted by ChromeTraceJSON.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTraceJSON exports the trace in Chrome trace-event JSON. Each
// node maps to a process (pid) named after it via process_name metadata
// events, and each TraceID maps to a thread (tid) within the node, so
// the viewer lays a distributed workload out as parallel tracks with
// one row per node.
func (tr Trace) ChromeTraceJSON() ([]byte, error) {
	pids := make(map[string]int)
	tids := make(map[TraceID]int)
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	pidOf := func(node string) int {
		if node == "" {
			node = "unknown"
		}
		pid, ok := pids[node]
		if !ok {
			pid = len(pids) + 1
			pids[node] = pid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": node},
			})
		}
		return pid
	}
	for _, s := range tr.Spans {
		tid, ok := tids[s.Trace]
		if !ok {
			tid = len(tids) + 1
			tids[s.Trace] = tid
		}
		args := map[string]any{
			"span":   SpanContext{Trace: s.Trace, Span: s.ID}.String(),
			"parent": uint64(s.Parent),
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  pidOf(s.Node),
			TID:  tid,
			Cat:  "pds2",
			Args: args,
		})
	}
	return json.MarshalIndent(out, "", " ")
}

// Roots returns the spans with no parent present in the trace, in start
// order — the tree roots TreeString would render at depth zero.
func (tr Trace) Roots() []Span {
	present := make(map[SpanID]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		present[s.ID] = true
	}
	var roots []Span
	for _, s := range tr.Spans {
		if s.Parent == 0 || !present[s.Parent] {
			roots = append(roots, s)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].StartNS < roots[j].StartNS })
	return roots
}
