package telemetry

import (
	"context"
	"runtime/pprof"
)

// LabelComponent is the pprof label key stamped on hot-path goroutines.
// A CPU profile of a busy node then attributes samples by subsystem
// ("ledger.parallel.worker", "ledger.seal", "chainstore.fsync", ...)
// instead of lumping everything under anonymous goroutine stacks — the
// attribution that answers "where does the scheduler overhead go".
const LabelComponent = "component"

// WithComponent runs f with the component pprof label applied to the
// current goroutine (and inherited by goroutines it spawns). The label
// shows up in CPU and goroutine profiles under the "component" key.
//
// Cost when nobody is profiling is a few tens of nanoseconds — cheap
// enough for per-block paths (seal, import, fsync), but the parallel
// executor applies it once per worker goroutine, not once per tx.
func WithComponent(name string, f func()) {
	pprof.Do(context.Background(), pprof.Labels(LabelComponent, name), func(context.Context) { f() })
}

// WithComponentCtx is WithComponent for callers that already carry a
// context and want the label set alongside it.
func WithComponentCtx(ctx context.Context, name string, f func(context.Context)) {
	pprof.Do(ctx, pprof.Labels(LabelComponent, name), f)
}
