package telemetry

import (
	"sync"
	"time"
)

// History turns the registry's point-in-time snapshots into a bounded
// time series: a fixed-interval ring of full registry snapshots, each
// stamped with the node name and sample time. With it, "what was the
// mempool depth / conflict rate / fsync p99 during that 30-second chaos
// run" is answerable after the fact — the question a lone /metrics
// snapshot cannot answer. The ring is bounded, so history is always
// safe to leave on; the API serves it at GET /metrics/history and the
// Collector merges rings from many nodes into per-node series.
type History struct {
	r        *Registry
	interval time.Duration

	// now is the sample clock, swappable by tests that need to fabricate
	// skewed or out-of-order timelines.
	now func() time.Time

	mu   sync.Mutex
	buf  []HistorySample
	pos  int
	full bool

	stop chan struct{}
	done chan struct{}
}

// HistorySample is one ring entry: the full registry snapshot at one
// instant on one node.
type HistorySample struct {
	Node    string   `json:"node,omitempty"`
	UnixNS  int64    `json:"unix_ns"`
	Metrics []Metric `json:"metrics"`
}

// Get returns the named metric from the sample.
func (s HistorySample) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Default history cadence: 250ms keeps a 5-second window at 20 samples
// (sub-second phenomena like a seal stall are visible) while a full
// ring spans five minutes — enough to cover any smoke or chaos run.
const (
	DefaultHistoryInterval = 250 * time.Millisecond
	DefaultHistoryCapacity = 1200
)

// NewHistory builds a history ring over r without starting the sampling
// ticker. interval <= 0 selects DefaultHistoryInterval; capacity <= 0
// selects DefaultHistoryCapacity.
func NewHistory(r *Registry, interval time.Duration, capacity int) *History {
	if interval <= 0 {
		interval = DefaultHistoryInterval
	}
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	return &History{
		r:        r,
		interval: interval,
		now:      time.Now,
		buf:      make([]HistorySample, capacity),
	}
}

// Interval returns the sampling cadence.
func (h *History) Interval() time.Duration { return h.interval }

// Capacity returns the ring size in samples.
func (h *History) Capacity() int { return len(h.buf) }

// Record takes one sample now. The ticker calls this; tests and the
// diag capture path may call it directly for an up-to-the-instant tail
// sample.
func (h *History) Record() {
	s := HistorySample{
		Node:    h.r.Node(),
		UnixNS:  h.now().UnixNano(),
		Metrics: h.r.Snapshot().Metrics,
	}
	h.mu.Lock()
	h.buf[h.pos] = s
	h.pos++
	if h.pos == len(h.buf) {
		h.pos = 0
		h.full = true
	}
	h.mu.Unlock()
}

// Start begins background sampling every Interval. Starting an already
// started history is a no-op.
func (h *History) Start() {
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(h.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				h.Record()
			}
		}
	}()
}

// Stop halts background sampling and waits for the ticker goroutine to
// exit. The recorded ring is retained. Safe to call repeatedly.
func (h *History) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Samples returns the recorded ring, oldest first.
func (h *History) Samples() []HistorySample {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.full {
		return append([]HistorySample(nil), h.buf[:h.pos]...)
	}
	out := make([]HistorySample, 0, len(h.buf))
	out = append(out, h.buf[h.pos:]...)
	return append(out, h.buf[:h.pos]...)
}

// Window returns the samples from the trailing window d (0 returns
// everything), oldest first.
func (h *History) Window(d time.Duration) []HistorySample {
	all := h.Samples()
	if d <= 0 {
		return all
	}
	cut := h.now().Add(-d).UnixNano()
	// The ring is in record order; find the first retained sample.
	for i, s := range all {
		if s.UnixNS >= cut {
			return all[i:]
		}
	}
	return []HistorySample{}
}

// HistoryDump is the GET /metrics/history wire format: the ring (or a
// trailing window of it) plus the sampling parameters a reader needs to
// interpret gaps.
type HistoryDump struct {
	Node       string          `json:"node,omitempty"`
	IntervalNS int64           `json:"interval_ns"`
	Capacity   int             `json:"capacity"`
	Samples    []HistorySample `json:"samples"`
}

// Dump packages a window of the ring for serving. The sample slice is
// never nil, so an empty history serializes as {"samples": []}.
func (h *History) Dump(window time.Duration) HistoryDump {
	samples := h.Window(window)
	if samples == nil {
		samples = []HistorySample{}
	}
	return HistoryDump{
		Node:       h.r.Node(),
		IntervalNS: int64(h.interval),
		Capacity:   h.Capacity(),
		Samples:    samples,
	}
}

// SeriesPoint is one observation of one metric over time. Value carries
// the counter total or gauge level; for histograms it is the p99, with
// Count alongside so rate math stays possible.
type SeriesPoint struct {
	UnixNS int64   `json:"unix_ns"`
	Value  float64 `json:"value"`
	Count  uint64  `json:"count,omitempty"`
}

// Series extracts one metric's time series from a dump, in sample
// order. Samples that lack the metric (e.g. recorded before the
// instrument first registered) are skipped.
func (d HistoryDump) Series(name string) []SeriesPoint {
	return seriesOf(d.Samples, name)
}

func seriesOf(samples []HistorySample, name string) []SeriesPoint {
	var out []SeriesPoint
	for _, s := range samples {
		m, ok := s.Get(name)
		if !ok {
			continue
		}
		p := SeriesPoint{UnixNS: s.UnixNS, Value: m.Value}
		if m.Kind == KindHistogram {
			p.Value = m.P99
			p.Count = m.Count
		}
		out = append(out, p)
	}
	return out
}

// --- Default history ---

var (
	stdHistMu sync.Mutex
	stdHist   *History
)

// EnableHistory starts (or restarts with new parameters) the default
// registry's metrics history and returns it. interval/capacity <= 0
// select the defaults.
func EnableHistory(interval time.Duration, capacity int) *History {
	stdHistMu.Lock()
	defer stdHistMu.Unlock()
	if stdHist != nil {
		stdHist.Stop()
	}
	stdHist = NewHistory(std, interval, capacity)
	stdHist.Start()
	return stdHist
}

// DisableHistory stops and detaches the default history. The /metrics/
// history endpoint answers 503 afterwards.
func DisableHistory() {
	stdHistMu.Lock()
	defer stdHistMu.Unlock()
	if stdHist != nil {
		stdHist.Stop()
		stdHist = nil
	}
}

// DefaultHistory returns the default registry's history, nil until
// EnableHistory.
func DefaultHistory() *History {
	stdHistMu.Lock()
	defer stdHistMu.Unlock()
	return stdHist
}
