package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders structured-log severities. A component emits a record
// only when the record's level is at or above the component's effective
// level; LevelOff silences the component entirely and is the default,
// matching the rest of telemetry.
type LogLevel int32

// Log levels, least to most severe.
const (
	LevelDebug LogLevel = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff // disables a component; never used on records
)

// String implements fmt.Stringer.
func (l LogLevel) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("LogLevel(%d)", int32(l))
	}
}

// ParseLogLevel parses a level name as used by -log-level specs.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// F is one structured field of a log record. Constructors only copy
// values — no formatting, no allocation — so a filtered-out call costs
// the level check plus a few stack stores (see BenchmarkLogDisabled).
// Formatting to text happens in emit, on the enabled path only.
type F struct {
	K    string
	s    string
	num  uint64 // int64/float64 bit patterns and bools share one word
	kind uint8
}

const (
	fkString uint8 = iota
	fkInt
	fkUint
	fkFloat
	fkBool
)

// Str builds a string field. The value is referenced, not formatted.
func Str(k, v string) F { return F{K: k, kind: fkString, s: v} }

// Int builds an int field.
func Int(k string, v int) F { return F{K: k, kind: fkInt, num: uint64(v)} }

// I64 builds an int64 field.
func I64(k string, v int64) F { return F{K: k, kind: fkInt, num: uint64(v)} }

// U64 builds a uint64 field.
func U64(k string, v uint64) F { return F{K: k, kind: fkUint, num: v} }

// F64 builds a float64 field.
func F64(k string, v float64) F { return F{K: k, kind: fkFloat, num: math.Float64bits(v)} }

// Bool builds a bool field.
func Bool(k string, v bool) F {
	var u uint64
	if v {
		u = 1
	}
	return F{K: k, kind: fkBool, num: u}
}

// Err builds the conventional "err" field from an error.
func Err(err error) F {
	if err == nil {
		return F{K: "err", kind: fkString, s: "<nil>"}
	}
	return F{K: "err", kind: fkString, s: err.Error()}
}

// value formats the field for retention; only emit calls it.
func (f F) value() string {
	switch f.kind {
	case fkInt:
		return strconv.FormatInt(int64(f.num), 10)
	case fkUint:
		return strconv.FormatUint(f.num, 10)
	case fkFloat:
		return strconv.FormatFloat(math.Float64frombits(f.num), 'g', -1, 64)
	case fkBool:
		return strconv.FormatBool(f.num == 1)
	default:
		return f.s
	}
}

// LogField is the retained (formatted) form of a field.
type LogField struct {
	K string `json:"k"`
	V string `json:"v"`
}

// LogEvent is one retained structured-log record — the GET /logs wire
// element.
type LogEvent struct {
	// Seq numbers records monotonically from 1 for the life of the
	// log (Reset does not rewind it), so consumers can page through
	// the ring with a stable cursor even while old records are
	// evicted.
	Seq       uint64     `json:"seq"`
	TimeNS    int64      `json:"time_ns"`
	Level     string     `json:"level"`
	Component string     `json:"component"`
	Node      string     `json:"node,omitempty"`
	Msg       string     `json:"msg"`
	Fields    []LogField `json:"fields,omitempty"`
}

// Text renders the event as one "ts level component msg k=v …" line.
func (e LogEvent) Text() string {
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString(time.Unix(0, e.TimeNS).UTC().Format("15:04:05.000000"))
	fmt.Fprintf(&sb, " %-5s %-8s %s", e.Level, e.Component, e.Msg)
	for _, f := range e.Fields {
		sb.WriteByte(' ')
		sb.WriteString(f.K)
		sb.WriteByte('=')
		sb.WriteString(f.V)
	}
	return sb.String()
}

// DefaultLogCapacity bounds the log ring: old records are overwritten
// once the buffer is full, so logging is always safe to leave on.
const DefaultLogCapacity = 4096

// Log is a leveled, structured, ring-retained event log. Components
// (per-subsystem handles) carry their own atomic effective level, so a
// record below a component's level costs one atomic load and no lock;
// enabled records take the ring mutex once.
type Log struct {
	def atomic.Int32 // default LogLevel for components without overrides

	mu        sync.Mutex
	comps     map[string]*Component
	overrides map[string]LogLevel
	node      string
	out       io.Writer // optional mirror, one Text line per record
	buf       []LogEvent
	pos       int
	full      bool
	seq       uint64 // last assigned LogEvent.Seq
}

// NewLog returns a log retaining up to capacity records (<= 0 selects
// DefaultLogCapacity). All components start at LevelOff.
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = DefaultLogCapacity
	}
	l := &Log{
		comps:     make(map[string]*Component),
		overrides: make(map[string]LogLevel),
		buf:       make([]LogEvent, capacity),
	}
	l.def.Store(int32(LevelOff))
	return l
}

// Component returns the named component handle, creating it at the
// current effective level on first use.
func (l *Log) Component(name string) *Component {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok := l.comps[name]; ok {
		return c
	}
	c := &Component{l: l, name: name}
	lvl := LogLevel(l.def.Load())
	if o, ok := l.overrides[name]; ok {
		lvl = o
	}
	c.level.Store(int32(lvl))
	l.comps[name] = c
	return c
}

// SetDefaultLevel sets the level of every component without an explicit
// override.
func (l *Log) SetDefaultLevel(lvl LogLevel) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.def.Store(int32(lvl))
	for name, c := range l.comps {
		if _, ok := l.overrides[name]; !ok {
			c.level.Store(int32(lvl))
		}
	}
}

// SetLevel overrides one component's level, creating the component if
// needed.
func (l *Log) SetLevel(component string, lvl LogLevel) {
	c := l.Component(component)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.overrides[component] = lvl
	c.level.Store(int32(lvl))
}

// SetLevelSpec applies a -log-level spec: a default level optionally
// followed by per-component overrides, e.g. "info" or
// "info,ledger=debug,gossip=off". Component entries contain '='; the
// bare entry (at most one) sets the default.
func (l *Log) SetLevelSpec(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if name, lvlStr, ok := strings.Cut(part, "="); ok {
			lvl, err := ParseLogLevel(lvlStr)
			if err != nil {
				return err
			}
			l.SetLevel(strings.TrimSpace(name), lvl)
			continue
		}
		lvl, err := ParseLogLevel(part)
		if err != nil {
			return err
		}
		l.SetDefaultLevel(lvl)
	}
	return nil
}

// SetOutput mirrors every retained record as a Text line to w (nil
// disables the mirror). The ring is unaffected.
func (l *Log) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.out = w
	l.mu.Unlock()
}

// SetNode stamps subsequent records with the node's identity.
func (l *Log) SetNode(name string) {
	l.mu.Lock()
	l.node = name
	l.mu.Unlock()
}

// emit formats the fields and appends the record to the ring,
// overwriting the oldest when full. It never retains the fields slice,
// so variadic call sites keep it on their stack.
func (l *Log) emit(lvl LogLevel, component, msg string, fields []F) {
	ev := LogEvent{
		TimeNS:    time.Now().UnixNano(),
		Level:     lvl.String(),
		Component: component,
		Msg:       msg,
	}
	if len(fields) > 0 {
		fs := make([]LogField, len(fields))
		for i, f := range fields {
			fs[i] = LogField{K: f.K, V: f.value()}
		}
		ev.Fields = fs
	}
	l.mu.Lock()
	l.seq++
	ev.Seq = l.seq
	ev.Node = l.node
	out := l.out
	l.buf[l.pos] = ev
	l.pos++
	if l.pos == len(l.buf) {
		l.pos = 0
		l.full = true
	}
	l.mu.Unlock()
	if out != nil {
		fmt.Fprintln(out, ev.Text())
	}
}

// Events returns the retained records, oldest first.
func (l *Log) Events() []LogEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.full {
		return append([]LogEvent(nil), l.buf[:l.pos]...)
	}
	out := make([]LogEvent, 0, len(l.buf))
	out = append(out, l.buf[l.pos:]...)
	return append(out, l.buf[:l.pos]...)
}

// Reset drops all retained records; levels and components persist.
func (l *Log) Reset() {
	l.mu.Lock()
	l.pos, l.full = 0, false
	l.mu.Unlock()
}

// Components returns the sorted names of all registered components.
func (l *Log) Components() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, len(l.comps))
	for name := range l.comps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Component is a subsystem's handle into a Log. All methods are
// nil-safe; a nil component is inert.
type Component struct {
	l     *Log
	name  string
	level atomic.Int32
}

// Enabled reports whether records at lvl would be retained — the guard
// for call sites whose field *values* are expensive to obtain.
func (c *Component) Enabled(lvl LogLevel) bool {
	return c != nil && lvl >= LogLevel(c.level.Load())
}

// slow is the retained-record path, outlined so the level-filtered
// fast path above stays within the inlining budget.
//
//go:noinline
func (c *Component) slow(lvl LogLevel, msg string, fields []F) {
	c.l.emit(lvl, c.name, msg, fields)
}

// Debug records a debug-level event.
func (c *Component) Debug(msg string, fields ...F) {
	if c == nil || c.level.Load() > int32(LevelDebug) {
		return
	}
	c.slow(LevelDebug, msg, fields)
}

// Info records an info-level event.
func (c *Component) Info(msg string, fields ...F) {
	if c == nil || c.level.Load() > int32(LevelInfo) {
		return
	}
	c.slow(LevelInfo, msg, fields)
}

// Warn records a warn-level event.
func (c *Component) Warn(msg string, fields ...F) {
	if c == nil || c.level.Load() > int32(LevelWarn) {
		return
	}
	c.slow(LevelWarn, msg, fields)
}

// Error records an error-level event.
func (c *Component) Error(msg string, fields ...F) {
	if c == nil || c.level.Load() > int32(LevelError) {
		return
	}
	c.slow(LevelError, msg, fields)
}

// stdLog is the process-wide log every instrumented package reports
// into. Like the metrics registry it starts silent (LevelOff).
var stdLog = NewLog(DefaultLogCapacity)

// DefaultLog returns the process-wide log.
func DefaultLog() *Log { return stdLog }

// L returns a component of the process-wide log — the form instrumented
// packages use for their package-level logger vars.
func L(component string) *Component { return stdLog.Component(component) }

// SetLogSpec applies a -log-level spec to the process-wide log.
func SetLogSpec(spec string) error { return stdLog.SetLevelSpec(spec) }
