package telemetry

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestLogLevelParsing(t *testing.T) {
	for in, want := range map[string]LogLevel{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff, "none": LevelOff,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("bad level parsed")
	}
}

func TestLogDefaultIsOff(t *testing.T) {
	l := NewLog(16)
	c := l.Component("ledger")
	c.Info("dropped", Int("n", 1))
	c.Error("also dropped")
	if got := l.Events(); len(got) != 0 {
		t.Fatalf("%d events retained while off", len(got))
	}
}

func TestLogLevelsFilter(t *testing.T) {
	l := NewLog(16)
	l.SetDefaultLevel(LevelWarn)
	c := l.Component("market")
	c.Debug("no")
	c.Info("no")
	c.Warn("yes")
	c.Error("yes too", Err(errors.New("boom")))
	got := l.Events()
	if len(got) != 2 || got[0].Level != "warn" || got[1].Level != "error" {
		t.Fatalf("events: %+v", got)
	}
	if got[1].Fields[0].K != "err" || got[1].Fields[0].V != "boom" {
		t.Fatalf("error field: %+v", got[1].Fields)
	}
}

func TestLogFieldFormatting(t *testing.T) {
	l := NewLog(16)
	l.SetDefaultLevel(LevelDebug)
	l.Component("x").Info("kv",
		Str("s", "v"), Int("i", -3), I64("i64", 9), U64("u", 7),
		F64("f", 1.5), Bool("b", true), Err(nil))
	ev := l.Events()[0]
	want := map[string]string{
		"s": "v", "i": "-3", "i64": "9", "u": "7", "f": "1.5", "b": "true", "err": "<nil>",
	}
	if len(ev.Fields) != len(want) {
		t.Fatalf("%d fields", len(ev.Fields))
	}
	for _, f := range ev.Fields {
		if want[f.K] != f.V {
			t.Fatalf("field %s = %q, want %q", f.K, f.V, want[f.K])
		}
	}
	text := ev.Text()
	if !strings.Contains(text, "kv s=v i=-3") {
		t.Fatalf("text: %s", text)
	}
}

func TestLogSetLevelSpec(t *testing.T) {
	l := NewLog(16)
	if err := l.SetLevelSpec("info,ledger=debug,gossip=off"); err != nil {
		t.Fatal(err)
	}
	l.Component("ledger").Debug("kept")
	l.Component("gossip").Error("silenced")
	l.Component("market").Debug("filtered")
	l.Component("market").Info("kept")
	got := l.Events()
	if len(got) != 2 {
		t.Fatalf("events: %+v", got)
	}
	if got[0].Component != "ledger" || got[1].Component != "market" {
		t.Fatalf("events: %+v", got)
	}
	// Overrides survive a later default change.
	l.SetDefaultLevel(LevelError)
	l.Component("ledger").Debug("still kept")
	if got := l.Events(); len(got) != 3 {
		t.Fatalf("override lost: %+v", got)
	}
	if err := l.SetLevelSpec("ledger=loud"); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestLogRingRetention(t *testing.T) {
	l := NewLog(4)
	l.SetDefaultLevel(LevelDebug)
	c := l.Component("x")
	for i := 0; i < 7; i++ {
		c.Info("m", Int("i", i))
	}
	got := l.Events()
	if len(got) != 4 {
		t.Fatalf("%d events in ring of 4", len(got))
	}
	for i, ev := range got {
		if want := 3 + i; ev.Fields[0].V != itoa(want) {
			t.Fatalf("event %d: i=%s, want %d (not oldest-first)", i, ev.Fields[0].V, want)
		}
	}
	l.Reset()
	if len(l.Events()) != 0 {
		t.Fatal("reset kept events")
	}
	c.Info("after")
	if len(l.Events()) != 1 {
		t.Fatal("log dead after reset")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestLogOutputMirror(t *testing.T) {
	l := NewLog(16)
	l.SetDefaultLevel(LevelInfo)
	var sb strings.Builder
	l.SetOutput(&sb)
	l.SetNode("n1")
	l.Component("api").Info("hello", Str("k", "v"))
	if !strings.Contains(sb.String(), "hello k=v") {
		t.Fatalf("mirror: %q", sb.String())
	}
	if l.Events()[0].Node != "n1" {
		t.Fatal("node not stamped")
	}
}

func TestLogNilComponentInert(t *testing.T) {
	var c *Component
	c.Debug("x")
	c.Info("x")
	c.Warn("x")
	c.Error("x")
	if c.Enabled(LevelError) {
		t.Fatal("nil component enabled")
	}
}

func TestLogConcurrent(t *testing.T) {
	l := NewLog(64)
	l.SetDefaultLevel(LevelDebug)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := l.Component("comp")
			for i := 0; i < 200; i++ {
				c.Info("m", Int("w", w), Int("i", i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = l.Events()
			_ = l.Components()
		}
	}()
	wg.Wait()
	<-done
	if got := l.Events(); len(got) != 64 {
		t.Fatalf("%d events after concurrent overflow", len(got))
	}
}
