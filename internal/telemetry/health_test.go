package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestHealthEmptyIsHealthy(t *testing.T) {
	h := NewHealth(nil)
	rep := h.Evaluate()
	if rep.Status != Healthy || len(rep.Components) != 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestHealthWorstComponentWins(t *testing.T) {
	h := NewHealth(nil)
	h.Register("a", func() CheckResult { return OK("fine") })
	h.Register("b", func() CheckResult { return DegradedResult("meh") })
	rep := h.Evaluate()
	if rep.Status != Degraded {
		t.Fatalf("status %v", rep.Status)
	}
	h.Register("c", func() CheckResult { return UnhealthyResult("down") })
	rep = h.Evaluate()
	if rep.Status != Unhealthy {
		t.Fatalf("status %v", rep.Status)
	}
	if rep.Components["b"].Detail != "meh" {
		t.Fatalf("components: %+v", rep.Components)
	}
	h.Deregister("c")
	h.Deregister("b")
	if rep := h.Evaluate(); rep.Status != Healthy {
		t.Fatalf("status after deregister: %v", rep.Status)
	}
}

func TestHealthExportsGauges(t *testing.T) {
	r := enabled(t)
	h := NewHealth(r)
	h.Register("pool", func() CheckResult { return DegradedResult("filling") })
	h.Evaluate()
	if v := r.Gauge("health.state").Value(); v != float64(Degraded) {
		t.Fatalf("health.state = %v", v)
	}
	if v := r.Gauge("health.component.pool").Value(); v != float64(Degraded) {
		t.Fatalf("component gauge = %v", v)
	}
}

func TestHealthStateJSONRoundTrip(t *testing.T) {
	for _, s := range []HealthState{Healthy, Degraded, Unhealthy} {
		raw, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back HealthState
		if err := json.Unmarshal(raw, &back); err != nil || back != s {
			t.Fatalf("round trip %v -> %s -> %v (%v)", s, raw, back, err)
		}
	}
	var s HealthState
	if err := json.Unmarshal([]byte(`"sideways"`), &s); err == nil {
		t.Fatal("bad state parsed")
	}
}

func TestHeartbeat(t *testing.T) {
	hb := NewHeartbeat(time.Minute)
	now := time.Unix(1000, 0)
	hb.SetClock(func() time.Time { return now })

	if res := hb.Check(); res.State != Degraded {
		t.Fatalf("no-beat state: %+v", res)
	}
	hb.Beat()
	if res := hb.Check(); res.State != Healthy {
		t.Fatalf("fresh state: %+v", res)
	}
	now = now.Add(2 * time.Minute)
	if res := hb.Check(); res.State != Degraded {
		t.Fatalf("stale state: %+v", res)
	}
	hb.Beat()
	if res := hb.Check(); res.State != Healthy || hb.Beats() != 2 {
		t.Fatalf("re-beaten: %+v beats=%d", res, hb.Beats())
	}
}
