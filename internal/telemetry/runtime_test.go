package telemetry

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
	"time"
)

func TestRuntimeSamplerPopulatesGauges(t *testing.T) {
	r := enabled(t)
	s := NewRuntimeSampler(r, 0)
	s.Sample()

	snap := r.Snapshot()
	heap, ok := snap.Get(MetricHeapInuse)
	if !ok || heap.Value <= 0 {
		t.Fatalf("heap in-use gauge not set: %+v ok=%v", heap, ok)
	}
	gor, ok := snap.Get(MetricGoroutines)
	if !ok || gor.Value < 1 {
		t.Fatalf("goroutine gauge not set: %+v ok=%v", gor, ok)
	}
	maxprocs, ok := snap.Get(MetricGOMAXPROCS)
	if !ok || int(maxprocs.Value) != runtime.GOMAXPROCS(0) {
		t.Fatalf("gomaxprocs gauge %v, want %d", maxprocs.Value, runtime.GOMAXPROCS(0))
	}
}

func TestRuntimeSamplerTracksPeaks(t *testing.T) {
	r := enabled(t)
	s := NewRuntimeSampler(r, 0)
	s.Sample()

	// Spin up extra goroutines, sample, let them exit, sample again: the
	// live gauge may fall back but the peak must not.
	stop := make(chan struct{})
	for i := 0; i < 50; i++ {
		go func() { <-stop }()
	}
	// Wait for the goroutines to be running.
	deadline := time.Now().Add(2 * time.Second)
	base := int(r.Gauge(MetricGoroutines).Value())
	for runtime.NumGoroutine() < base+50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Sample()
	peakDuring := r.Gauge(MetricGoroutinesPeak).Value()
	close(stop)
	for runtime.NumGoroutine() >= base+50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Sample()
	peakAfter := r.Gauge(MetricGoroutinesPeak).Value()
	if peakAfter < peakDuring {
		t.Fatalf("peak regressed: during=%v after=%v", peakDuring, peakAfter)
	}
	if peakDuring < float64(base+50) {
		t.Fatalf("peak %v did not capture the 50-goroutine burst over base %d", peakDuring, base)
	}
}

func TestRuntimeSamplerGCPause(t *testing.T) {
	r := enabled(t)
	s := NewRuntimeSampler(r, 0)
	runtime.GC()
	runtime.GC()
	s.Sample()
	snap := r.Snapshot()
	p99, ok := snap.Get(MetricGCPauseP99)
	if !ok {
		t.Fatal("gc pause p99 gauge missing")
	}
	if p99.Value < 0 {
		t.Fatalf("negative gc pause p99 %v", p99.Value)
	}
	cycles, ok := snap.Get(MetricGCCycles)
	if !ok || cycles.Value < 2 {
		t.Fatalf("gc cycles %v after two forced GCs", cycles.Value)
	}
}

func TestRuntimeSamplerDisabledRegistryIsNoop(t *testing.T) {
	r := New() // disabled
	s := NewRuntimeSampler(r, 0)
	s.Sample()
	// Registration shows the gauges in the snapshot, but a disabled
	// registry must not record values into them.
	if m, ok := r.Snapshot().Get(MetricHeapInuse); ok && m.Value != 0 {
		t.Fatalf("disabled registry recorded heap in-use %v", m.Value)
	}
	if m, ok := r.Snapshot().Get(MetricGoroutines); ok && m.Value != 0 {
		t.Fatalf("disabled registry recorded goroutines %v", m.Value)
	}
}

func TestStartRuntimeSamplerStopIdempotent(t *testing.T) {
	r := enabled(t)
	s := StartRuntimeSampler(r, time.Millisecond)
	// Immediate sample on start.
	if _, ok := r.Snapshot().Get(MetricHeapInuse); !ok {
		t.Fatal("no immediate sample on start")
	}
	s.Stop()
	s.Stop() // must not panic or block
}

func TestHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 10, 0, 90},
		Buckets: []float64{0, 1, 2, 3, 4},
	}
	if got := histQuantile(h, 0.05); got < 1 || got > 2 {
		t.Fatalf("p5 = %v, want within bucket [1,2)", got)
	}
	if got := histQuantile(h, 0.99); got < 3 || got > 4 {
		t.Fatalf("p99 = %v, want within bucket [3,4)", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{}, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
}

func TestHistQuantileInfTail(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{0, 100},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	got := histQuantile(h, 0.99)
	if got != 1 {
		t.Fatalf("inf-tail quantile = %v, want bucket floor 1", got)
	}
	if m := histMax(h); m != 1 {
		t.Fatalf("inf-tail max = %v, want bucket floor 1", m)
	}
}

func TestSetProfileRates(t *testing.T) {
	origMutex, origBlock := ProfileRates()
	defer SetProfileRates(origMutex, origBlock)
	SetProfileRates(7, 1000)
	m, b := ProfileRates()
	if m != 7 || b != 1000 {
		t.Fatalf("rates = (%d, %d), want (7, 1000)", m, b)
	}
}

func TestCollectBuildInfo(t *testing.T) {
	bi := CollectBuildInfo()
	if bi.GoVersion == "" {
		t.Fatal("missing go version")
	}
	if bi.NumCPU < 1 || bi.GOMAXPROCS < 1 {
		t.Fatalf("bogus cpu info: %+v", bi)
	}
	if bi.OS == "" || bi.Arch == "" {
		t.Fatalf("missing os/arch: %+v", bi)
	}
}
