package privacy

import (
	"errors"
	"math"
	"sort"

	"pds2/internal/ml"
)

// AttackResult summarizes a membership-inference attack.
type AttackResult struct {
	// Advantage is max over thresholds of TPR - FPR, in [0, 1]: zero
	// means the model leaks nothing distinguishable; one means perfect
	// membership recovery.
	Advantage float64

	// AUC is the area under the ROC curve of the loss-threshold attack
	// (0.5 = no signal).
	AUC float64

	// Threshold is the loss threshold achieving Advantage.
	Threshold float64
}

// exampleLoss is the per-example logistic loss -log σ(y·z), the signal
// the Yeom et al. threshold attack uses: members tend to have lower loss
// than non-members on an overfit model.
func exampleLoss(m ml.Predictor, x []float64, y float64) float64 {
	z := m.Predict(x)
	margin := y * z
	if margin > 0 {
		return math.Log1p(math.Exp(-margin))
	}
	return -margin + math.Log1p(math.Exp(margin))
}

// MembershipAttack runs the loss-threshold membership-inference attack
// against the model: for every threshold τ, an example is declared a
// member when its loss is below τ; the result reports the best
// achievable advantage and the ROC AUC. members should be (a sample of)
// the training data, nonMembers fresh data from the same distribution.
func MembershipAttack(m ml.Predictor, members, nonMembers *ml.Dataset) (AttackResult, error) {
	if members.Len() == 0 || nonMembers.Len() == 0 {
		return AttackResult{}, errors.New("privacy: attack needs non-empty member and non-member sets")
	}
	type scored struct {
		loss   float64
		member bool
	}
	all := make([]scored, 0, members.Len()+nonMembers.Len())
	for i := range members.X {
		all = append(all, scored{loss: exampleLoss(m, members.X[i], members.Y[i]), member: true})
	}
	for i := range nonMembers.X {
		all = append(all, scored{loss: exampleLoss(m, nonMembers.X[i], nonMembers.Y[i]), member: false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].loss < all[j].loss })

	nM := float64(members.Len())
	nN := float64(nonMembers.Len())
	var tp, fp float64
	best := AttackResult{}
	var auc float64
	var prevFPR, prevTPR float64
	for _, s := range all {
		if s.member {
			tp++
		} else {
			fp++
		}
		tpr, fpr := tp/nM, fp/nN
		if adv := tpr - fpr; adv > best.Advantage {
			best.Advantage = adv
			best.Threshold = s.loss
		}
		// Trapezoidal AUC accumulation over the ROC path.
		auc += (fpr - prevFPR) * (tpr + prevTPR) / 2
		prevFPR, prevTPR = fpr, tpr
	}
	best.AUC = auc
	return best, nil
}

// TrainOverfitModel is a helper for leakage experiments: it trains a
// deliberately overfit logistic model (many epochs, weak regularization
// on a small dataset), the worst case for membership leakage.
func TrainOverfitModel(train *ml.Dataset, epochs int) *ml.LogisticModel {
	m := ml.NewLogisticModel(train.Dim(), 1e-6)
	ml.TrainEpochs(m, train, epochs)
	return m
}
