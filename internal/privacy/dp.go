// Package privacy implements the §IV-D leakage defences: differential-
// privacy mechanisms (Laplace and Gaussian), a privacy-budget ledger
// with additive composition, differentially-private model release via
// clipping plus Gaussian output perturbation, and a membership-inference
// attack harness that *measures* how much a released model leaks about
// its training data — the "previous works have measured the extent of
// this issue" [36] side of the section, which experiment E12 reproduces
// with and without DP.
package privacy

import (
	"errors"
	"fmt"
	"math"

	"pds2/internal/crypto"
	"pds2/internal/ml"
)

// LaplaceNoise draws Laplace(0, scale) noise via inverse-CDF sampling.
func LaplaceNoise(scale float64, rng *crypto.DRBG) float64 {
	u := rng.Float64() - 0.5
	// Inverse CDF: -scale * sign(u) * ln(1 - 2|u|)
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// LaplaceMechanism releases value + Laplace(sensitivity/epsilon), which
// is (epsilon, 0)-differentially private for a query with the given L1
// sensitivity.
func LaplaceMechanism(value, sensitivity, epsilon float64, rng *crypto.DRBG) (float64, error) {
	if epsilon <= 0 || sensitivity < 0 {
		return 0, fmt.Errorf("privacy: invalid parameters eps=%v sens=%v", epsilon, sensitivity)
	}
	return value + LaplaceNoise(sensitivity/epsilon, rng), nil
}

// GaussianSigma returns the noise standard deviation of the analytic
// Gaussian mechanism bound σ = √(2 ln(1.25/δ)) · sensitivity / ε, valid
// for ε ≤ 1 and commonly used beyond.
func GaussianSigma(sensitivity, epsilon, delta float64) (float64, error) {
	if epsilon <= 0 || delta <= 0 || delta >= 1 || sensitivity < 0 {
		return 0, fmt.Errorf("privacy: invalid parameters eps=%v delta=%v sens=%v", epsilon, delta, sensitivity)
	}
	return math.Sqrt(2*math.Log(1.25/delta)) * sensitivity / epsilon, nil
}

// GaussianMechanism releases value + N(0, σ²) with σ from GaussianSigma;
// (epsilon, delta)-differentially private for L2 sensitivity.
func GaussianMechanism(value, sensitivity, epsilon, delta float64, rng *crypto.DRBG) (float64, error) {
	sigma, err := GaussianSigma(sensitivity, epsilon, delta)
	if err != nil {
		return 0, err
	}
	return value + sigma*rng.NormFloat64(), nil
}

// Ledger tracks a privacy budget under basic (additive) composition:
// every released query spends its (ε, δ), and releases beyond the budget
// are refused. In PDS² the executor maintains one ledger per (provider,
// consumer) pair, implementing §IV-D's "apply the most suitable measures
// to limit" leakage.
type Ledger struct {
	EpsBudget   float64
	DeltaBudget float64
	spentEps    float64
	spentDelta  float64
	releases    int
}

// NewLedger creates a budget ledger.
func NewLedger(epsBudget, deltaBudget float64) *Ledger {
	return &Ledger{EpsBudget: epsBudget, DeltaBudget: deltaBudget}
}

// ErrBudgetExhausted is returned when a release would exceed the budget.
var ErrBudgetExhausted = errors.New("privacy: budget exhausted")

// Spend records a release of (eps, delta), failing without recording if
// the budget would be exceeded.
func (l *Ledger) Spend(eps, delta float64) error {
	if eps <= 0 || delta < 0 {
		return fmt.Errorf("privacy: invalid spend eps=%v delta=%v", eps, delta)
	}
	if l.spentEps+eps > l.EpsBudget || l.spentDelta+delta > l.DeltaBudget {
		return fmt.Errorf("%w: spent (%.3f, %.2g) of (%.3f, %.2g)",
			ErrBudgetExhausted, l.spentEps, l.spentDelta, l.EpsBudget, l.DeltaBudget)
	}
	l.spentEps += eps
	l.spentDelta += delta
	l.releases++
	return nil
}

// Spent returns the cumulative (ε, δ) consumed so far.
func (l *Ledger) Spent() (eps, delta float64) { return l.spentEps, l.spentDelta }

// Releases returns the number of recorded releases.
func (l *Ledger) Releases() int { return l.releases }

// ClipL2 scales the vector down to the given L2 norm bound if it exceeds
// it, returning the scaling factor applied (1 when unchanged).
func ClipL2(v []float64, bound float64) float64 {
	if bound <= 0 {
		return 1
	}
	norm := ml.Norm2(v)
	if norm <= bound {
		return 1
	}
	f := bound / norm
	ml.Scale(f, v)
	return f
}

// ReleaseModelDP produces an (epsilon, delta)-DP copy of a trained model
// by output perturbation: clip the weights to L2 norm clip (bounding any
// one example's influence on the released weights) and add Gaussian
// noise calibrated to that sensitivity. The ledger, when non-nil, is
// charged.
func ReleaseModelDP(m ml.Model, clip, epsilon, delta float64, ledger *Ledger, rng *crypto.DRBG) (ml.Model, error) {
	if clip <= 0 {
		return nil, errors.New("privacy: clip bound must be positive")
	}
	sigma, err := GaussianSigma(2*clip, epsilon, delta) // neighbour models differ by ≤ 2·clip
	if err != nil {
		return nil, err
	}
	if ledger != nil {
		if err := ledger.Spend(epsilon, delta); err != nil {
			return nil, err
		}
	}
	out := m.Clone()
	w := out.Weights()
	ClipL2(w, clip)
	for i := range w {
		w[i] += sigma * rng.NormFloat64()
	}
	return out, nil
}
