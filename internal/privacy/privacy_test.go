package privacy

import (
	"errors"
	"math"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/ml"
)

func TestLaplaceNoiseMoments(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(1, "dp")
	const n = 30000
	scale := 2.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		v := LaplaceNoise(scale, rng)
		sum += v
		sumAbs += math.Abs(v)
	}
	if mean := sum / n; math.Abs(mean) > 0.1 {
		t.Fatalf("laplace mean = %v", mean)
	}
	// E|X| = scale for Laplace.
	if meanAbs := sumAbs / n; math.Abs(meanAbs-scale) > 0.1 {
		t.Fatalf("laplace E|X| = %v, want %v", meanAbs, scale)
	}
}

func TestLaplaceMechanismValidation(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(2, "dp")
	if _, err := LaplaceMechanism(1, 1, 0, rng); err == nil {
		t.Fatal("eps=0 accepted")
	}
	if _, err := LaplaceMechanism(1, -1, 1, rng); err == nil {
		t.Fatal("negative sensitivity accepted")
	}
	if _, err := LaplaceMechanism(1, 1, 1, rng); err != nil {
		t.Fatal(err)
	}
}

func TestGaussianSigmaScaling(t *testing.T) {
	s1, err := GaussianSigma(1, 1, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := GaussianSigma(1, 2, 1e-5)
	if s2 >= s1 {
		t.Fatal("sigma not decreasing in epsilon")
	}
	s3, _ := GaussianSigma(2, 1, 1e-5)
	if math.Abs(s3-2*s1) > 1e-9 {
		t.Fatal("sigma not linear in sensitivity")
	}
	if _, err := GaussianSigma(1, 1, 1.5); err == nil {
		t.Fatal("delta >= 1 accepted")
	}
}

func TestGaussianMechanismNoiseLevel(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "dp")
	const n = 20000
	sigma, _ := GaussianSigma(1, 1, 1e-5)
	var sumSq float64
	for i := 0; i < n; i++ {
		v, err := GaussianMechanism(0, 1, 1, 1e-5, rng)
		if err != nil {
			t.Fatal(err)
		}
		sumSq += v * v
	}
	empirical := math.Sqrt(sumSq / n)
	if math.Abs(empirical-sigma)/sigma > 0.05 {
		t.Fatalf("empirical sigma %v, want %v", empirical, sigma)
	}
}

func TestLedgerComposition(t *testing.T) {
	l := NewLedger(1.0, 1e-4)
	if err := l.Spend(0.4, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.4, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.4, 1e-5); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
	eps, delta := l.Spent()
	if math.Abs(eps-0.8) > 1e-9 || math.Abs(delta-2e-5) > 1e-12 {
		t.Fatalf("spent = (%v, %v)", eps, delta)
	}
	if l.Releases() != 2 {
		t.Fatalf("releases = %d", l.Releases())
	}
	if err := l.Spend(-1, 0); err == nil {
		t.Fatal("negative spend accepted")
	}
}

func TestLedgerDeltaBudget(t *testing.T) {
	l := NewLedger(100, 1e-5)
	if err := l.Spend(0.1, 1e-5); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.1, 1e-6); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatal("delta budget not enforced")
	}
}

func TestClipL2(t *testing.T) {
	v := []float64{3, 4} // norm 5
	f := ClipL2(v, 1)
	if math.Abs(f-0.2) > 1e-9 {
		t.Fatalf("factor = %v", f)
	}
	if math.Abs(ml.Norm2(v)-1) > 1e-9 {
		t.Fatalf("norm after clip = %v", ml.Norm2(v))
	}
	// Under the bound: untouched.
	v2 := []float64{0.1, 0.1}
	if f := ClipL2(v2, 1); f != 1 || v2[0] != 0.1 {
		t.Fatal("clip modified small vector")
	}
}

func TestReleaseModelDPChargesLedger(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(4, "dp")
	m := ml.NewLogisticModel(4, 1e-3)
	ledger := NewLedger(1.0, 1e-4)
	if _, err := ReleaseModelDP(m, 1, 0.6, 1e-5, ledger, rng); err != nil {
		t.Fatal(err)
	}
	if _, err := ReleaseModelDP(m, 1, 0.6, 1e-5, ledger, rng); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("want ErrBudgetExhausted, got %v", err)
	}
}

func TestReleaseModelDPDoesNotMutateOriginal(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(5, "dp")
	m := ml.NewLogisticModel(2, 1e-3)
	m.W[0] = 10 // above clip bound
	released, err := ReleaseModelDP(m, 1, 1, 1e-5, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if m.W[0] != 10 {
		t.Fatal("original model clipped")
	}
	if released.Weights()[0] == 10 {
		t.Fatal("released model not clipped/noised")
	}
}

func TestMembershipAttackDetectsOverfitting(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(6, "attack")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 400, Dim: 20, LabelNoise: 0.2}, rng)
	train, test := data.TrainTestSplit(0.5, rng)

	overfit := TrainOverfitModel(train, 300)
	res, err := MembershipAttack(overfit, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advantage < 0.1 {
		t.Fatalf("attack advantage on overfit model = %v, expected measurable leakage", res.Advantage)
	}
	if res.AUC < 0.55 {
		t.Fatalf("attack AUC = %v", res.AUC)
	}
}

func TestDPReducesAttackAdvantage(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(7, "attack")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 400, Dim: 20, LabelNoise: 0.2}, rng)
	train, test := data.TrainTestSplit(0.5, rng)

	overfit := TrainOverfitModel(train, 300)
	raw, _ := MembershipAttack(overfit, train, test)

	private, err := ReleaseModelDP(overfit, 1.0, 0.5, 1e-5, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	dp, _ := MembershipAttack(private, train, test)
	if dp.Advantage >= raw.Advantage {
		t.Fatalf("DP did not reduce advantage: %v -> %v", raw.Advantage, dp.Advantage)
	}
}

func TestAccuracyCostOfDP(t *testing.T) {
	// Stronger privacy (smaller epsilon) must cost accuracy,
	// at least monotonically in expectation across a wide sweep.
	rng := crypto.NewDRBGFromUint64(8, "tradeoff")
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 3000, Dim: 10}, rng)
	train, test := data.TrainTestSplit(0.3, rng)
	m := ml.NewLogisticModel(10, 1e-3)
	ml.TrainEpochs(m, train, 5)
	base := ml.Accuracy(m, test)

	accAt := func(eps float64) float64 {
		var sum float64
		const trials = 10
		for i := 0; i < trials; i++ {
			rel, err := ReleaseModelDP(m, 1.0, eps, 1e-5, nil, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += ml.Accuracy(rel, test)
		}
		return sum / trials
	}
	tight := accAt(0.1)
	loose := accAt(10)
	if !(tight < loose) {
		t.Fatalf("accuracy not increasing with epsilon: %v vs %v", tight, loose)
	}
	if loose > base+0.01 {
		t.Fatalf("noisy model beats base: %v > %v", loose, base)
	}
}

func TestMembershipAttackValidation(t *testing.T) {
	m := ml.NewLogisticModel(2, 1e-3)
	if _, err := MembershipAttack(m, &ml.Dataset{}, &ml.Dataset{}); err == nil {
		t.Fatal("empty sets accepted")
	}
}

func TestReleaseModelDPValidation(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(9, "dp")
	m := ml.NewLogisticModel(2, 1e-3)
	if _, err := ReleaseModelDP(m, 0, 1, 1e-5, nil, rng); err == nil {
		t.Fatal("zero clip accepted")
	}
	if _, err := ReleaseModelDP(m, 1, 0, 1e-5, nil, rng); err == nil {
		t.Fatal("zero epsilon accepted")
	}
}
