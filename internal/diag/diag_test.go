package diag

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pds2/internal/api"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/market"
	"pds2/internal/telemetry"
)

func withTelemetry(t *testing.T) {
	t.Helper()
	telemetry.Default().Reset()
	telemetry.Enable()
	telemetry.EnableHistory(2*time.Millisecond, 256)
	t.Cleanup(func() {
		telemetry.DisableHistory()
		telemetry.Disable()
	})
}

func TestCaptureLocalVerifyRoundTrip(t *testing.T) {
	withTelemetry(t)
	telemetry.G("ledger.mempool.depth").Set(3)
	sp := telemetry.StartSpan("diag.test", telemetry.SpanContext{})
	sp.End()
	time.Sleep(10 * time.Millisecond) // a few history ticks

	dir := t.TempDir()
	got, m, err := CaptureLocal(Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got != dir {
		t.Fatalf("bundle dir %q, want %q", got, dir)
	}
	if m.Schema != ManifestSchema || m.Source != "local" {
		t.Fatalf("manifest header %+v", m)
	}
	// Local capture cannot serve health (no API server); everything else
	// must have succeeded.
	for _, name := range m.Failed() {
		if name != "health" {
			t.Fatalf("artifact %q failed in local capture", name)
		}
	}
	vm, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vm.Artifacts) != len(m.Artifacts) {
		t.Fatalf("verify read %d artifacts, capture wrote %d", len(vm.Artifacts), len(m.Artifacts))
	}

	// The history artifact actually carries the gauge series.
	raw, err := os.ReadFile(filepath.Join(dir, "metrics_history.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dump telemetry.HistoryDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	series := dump.Series("ledger.mempool.depth")
	if len(series) == 0 || series[len(series)-1].Value != 3 {
		t.Fatalf("mempool series in bundle = %+v", series)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	withTelemetry(t)
	dir := t.TempDir()
	if _, _, err := CaptureLocal(Options{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err != nil {
		t.Fatalf("clean bundle failed verification: %v", err)
	}

	// Flip a byte in the goroutine profile: checksum must catch it.
	path := filepath.Join(dir, "goroutine.pprof")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted profile passed verification (err=%v)", err)
	}
}

func TestVerifyDetectsTruncation(t *testing.T) {
	withTelemetry(t)
	dir := t.TempDir()
	if _, _, err := CaptureLocal(Options{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "heap.pprof")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil {
		t.Fatal("truncated profile passed verification")
	}
}

func TestVerifyDetectsMissingRequiredArtifact(t *testing.T) {
	withTelemetry(t)
	dir := t.TempDir()
	if _, _, err := CaptureLocal(Options{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	kept := m.Artifacts[:0]
	for _, a := range m.Artifacts {
		if a.Name != "metrics" {
			kept = append(kept, a)
		}
	}
	m.Artifacts = kept
	out, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(dir, ManifestName), out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(dir); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("manifest missing metrics passed verification (err=%v)", err)
	}
}

// TestCaptureRemote drives the full operator path: a real node served
// over HTTP with pprof on, captured into a bundle that verifies.
func TestCaptureRemote(t *testing.T) {
	withTelemetry(t)
	user := identity.New("user", crypto.NewDRBGFromUint64(1, "diag-test"))
	m, err := market.New(market.Config{
		Seed:         1,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	apiSrv := api.NewServer(m, true)
	apiSrv.SetPprof(true)
	srv := httptest.NewServer(apiSrv)
	defer srv.Close()

	// Light traffic so the bundle has content.
	tx := m.SignedTx(user, identity.New("peer", crypto.NewDRBGFromUint64(2, "diag-test")).Address(), 100, nil)
	if err := m.Submit(tx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SealBlockAt(m.Timestamp() + 1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // history ticks

	dir := t.TempDir()
	cl := api.NewClient(srv.URL)
	_, man, err := CaptureRemote(context.Background(), cl, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if failed := man.Failed(); len(failed) != 0 {
		t.Fatalf("artifacts failed against a fully enabled node: %v", failed)
	}
	if man.Build.GoVersion == "" {
		t.Fatal("manifest carries no build info")
	}
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}
	// Health came from the real /healthz this time.
	raw, err := os.ReadFile(filepath.Join(dir, "health.json"))
	if err != nil {
		t.Fatal(err)
	}
	var hr telemetry.HealthReport
	if err := json.Unmarshal(raw, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Components) == 0 {
		t.Fatal("health report has no components")
	}
}

// TestCaptureRemotePartialBundle pins the degraded path: a node with
// pprof off yields a bundle whose manifest records the profile failures
// instead of the capture failing outright.
func TestCaptureRemotePartialBundle(t *testing.T) {
	withTelemetry(t)
	user := identity.New("user", crypto.NewDRBGFromUint64(3, "diag-test"))
	m, err := market.New(market.Config{
		Seed:         3,
		GenesisAlloc: map[identity.Address]uint64{user.Address(): 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.NewServer(m, false)) // pprof stays off
	defer srv.Close()

	dir := t.TempDir()
	// NoRetry: the disabled envelope is non-retryable anyway, but the
	// profile fetches bypass the envelope logic (raw bytes), so don't
	// spend the retry budget on a node that will keep saying 503.
	cl := api.NewClient(srv.URL, api.WithRetryPolicy(api.NoRetry))
	_, man, err := CaptureRemote(context.Background(), cl, Options{OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	failed := map[string]bool{}
	for _, name := range man.Failed() {
		failed[name] = true
	}
	for _, p := range []string{"goroutine", "heap", "mutex", "block"} {
		if !failed[p] {
			t.Fatalf("profile %q captured from a pprof-disabled node", p)
		}
	}
	if failed["metrics"] || failed["metrics_history"] {
		t.Fatalf("metrics artifacts failed: %v", man.Failed())
	}
	// A partial bundle still verifies: failures are recorded, not hidden.
	if _, err := Verify(dir); err != nil {
		t.Fatal(err)
	}
}
