// Package diag captures flight-recorder diagnostic bundles: one
// directory holding everything needed for a postmortem of a PDS² node —
// metrics snapshot and history, structured logs, trace spans (raw and
// Chrome trace-event export), goroutine/heap/mutex/block profiles, an
// optional timed CPU profile, the health report and build identity —
// plus a manifest with a checksum per artifact so a bundle shipped
// around for analysis can prove it is complete and uncorrupted.
//
// Capture comes in two flavors: CaptureRemote pulls everything over a
// running node's HTTP API (the operator's "grab me a bundle from prod"
// path), and CaptureLocal reads the process-local telemetry and runtime
// profiles directly (the path for self-hosted harnesses like pds2-load,
// where the node lives in the same process). Both produce the same
// bundle layout, verified by Verify.
package diag

import (
	"bytes"
	"compress/gzip"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"pds2/internal/api"
	"pds2/internal/telemetry"
)

// ManifestSchema versions the bundle layout for forward compatibility.
const ManifestSchema = "pds2/diag/v1"

// ManifestName is the manifest's file name inside a bundle directory.
const ManifestName = "manifest.json"

// Artifact describes one captured file. A failed capture keeps its
// entry with Err set and no file, so the manifest records what was
// attempted, not just what succeeded — a bundle from a node with pprof
// disabled says so instead of silently lacking profiles.
type Artifact struct {
	// Name is the logical artifact name ("metrics", "cpu_profile", ...).
	Name string `json:"name"`

	// File is the name inside the bundle directory, empty when Err set.
	File string `json:"file,omitempty"`

	// Bytes and SHA256 fingerprint the file for integrity verification.
	Bytes  int64  `json:"bytes,omitempty"`
	SHA256 string `json:"sha256,omitempty"`

	// Err records why capture failed, empty on success.
	Err string `json:"err,omitempty"`
}

// Manifest indexes a bundle.
type Manifest struct {
	Schema     string              `json:"schema"`
	CapturedNS int64               `json:"captured_unix_ns"`
	Source     string              `json:"source"` // node URL, or "local"
	Node       string              `json:"node,omitempty"`
	Build      telemetry.BuildInfo `json:"build"`
	Artifacts  []Artifact          `json:"artifacts"`
}

// Artifact returns the named entry.
func (m Manifest) Artifact(name string) (Artifact, bool) {
	for _, a := range m.Artifacts {
		if a.Name == name {
			return a, true
		}
	}
	return Artifact{}, false
}

// Options shapes a capture.
type Options struct {
	// OutDir is the bundle directory; it is created if missing. Empty
	// selects pds2-diag-<unix-ms> under the OS temp directory.
	OutDir string

	// CPUSeconds > 0 additionally captures a timed CPU profile — the
	// expensive artifact, so it is opt-in.
	CPUSeconds int

	// Window trims the metrics history artifact (0 takes the full ring).
	Window time.Duration

	// LogComponent filters the logs artifact ("" takes every component).
	LogComponent string
}

func (o Options) outDir() (string, error) {
	dir := o.OutDir
	if dir == "" {
		dir = filepath.Join(os.TempDir(), fmt.Sprintf("pds2-diag-%d", time.Now().UnixMilli()))
	}
	return dir, os.MkdirAll(dir, 0o755)
}

// capture accumulates artifacts and writes the manifest at the end.
type capture struct {
	dir      string
	manifest Manifest
}

// add writes one artifact file (or records the error that prevented it).
func (c *capture) add(name, file string, data []byte, err error) {
	if err != nil {
		c.manifest.Artifacts = append(c.manifest.Artifacts, Artifact{Name: name, Err: err.Error()})
		return
	}
	if err := os.WriteFile(filepath.Join(c.dir, file), data, 0o644); err != nil {
		c.manifest.Artifacts = append(c.manifest.Artifacts, Artifact{Name: name, Err: err.Error()})
		return
	}
	sum := sha256.Sum256(data)
	c.manifest.Artifacts = append(c.manifest.Artifacts, Artifact{
		Name:   name,
		File:   file,
		Bytes:  int64(len(data)),
		SHA256: hex.EncodeToString(sum[:]),
	})
}

// addJSON marshals v (pretty, so bundles are human-greppable) as one
// artifact.
func (c *capture) addJSON(name, file string, v any, err error) {
	if err != nil {
		c.add(name, file, nil, err)
		return
	}
	data, merr := json.MarshalIndent(v, "", " ")
	c.add(name, file, data, merr)
}

// finish writes the manifest and returns it.
func (c *capture) finish() (Manifest, error) {
	sort.Slice(c.manifest.Artifacts, func(i, j int) bool {
		return c.manifest.Artifacts[i].Name < c.manifest.Artifacts[j].Name
	})
	data, err := json.MarshalIndent(c.manifest, "", " ")
	if err != nil {
		return c.manifest, err
	}
	return c.manifest, os.WriteFile(filepath.Join(c.dir, ManifestName), data, 0o644)
}

// Failed returns the names of artifacts whose capture failed.
func (m Manifest) Failed() []string {
	var out []string
	for _, a := range m.Artifacts {
		if a.Err != "" {
			out = append(out, a.Name)
		}
	}
	return out
}

// CaptureRemote pulls a bundle from a running node over its HTTP API.
// Individual artifact failures (telemetry disabled, pprof off, history
// off) are recorded in the manifest rather than failing the capture —
// a partial bundle beats none during an incident. The error return is
// reserved for failures to produce the bundle itself (bad directory,
// manifest write).
func CaptureRemote(ctx context.Context, client *api.Client, opts Options) (string, Manifest, error) {
	dir, err := opts.outDir()
	if err != nil {
		return "", Manifest{}, err
	}
	c := &capture{dir: dir, manifest: Manifest{
		Schema:     ManifestSchema,
		CapturedNS: time.Now().UnixNano(),
		Source:     client.BaseURL(),
	}}

	if bi, err := client.BuildInfo(ctx); err == nil {
		c.manifest.Build = bi
		c.addJSON("build", "build.json", bi, nil)
	} else {
		c.manifest.Build = telemetry.CollectBuildInfo() // best effort: the capturing binary
		c.addJSON("build", "build.json", nil, err)
	}

	snap, err := client.Metrics(ctx)
	c.addJSON("metrics", "metrics.json", snap, err)
	hist, err := client.MetricsHistory(ctx, opts.Window)
	c.addJSON("metrics_history", "metrics_history.json", hist, err)
	if err == nil {
		c.manifest.Node = hist.Node
	}
	logs, err := client.Logs(ctx, opts.LogComponent)
	c.addJSON("logs", "logs.json", logs, err)
	health, err := client.Healthz(ctx)
	c.addJSON("health", "health.json", health, err)

	trace, err := client.Trace(ctx)
	c.addJSON("trace", "trace.json", trace, err)
	if err == nil {
		chrome, cerr := trace.ChromeTraceJSON()
		c.add("trace_chrome", "trace_chrome.json", chrome, cerr)
	} else {
		c.add("trace_chrome", "trace_chrome.json", nil, err)
	}

	for _, p := range []string{"goroutine", "heap", "mutex", "block"} {
		data, err := client.Pprof(ctx, p, 0)
		c.add(p, p+".pprof", data, err)
	}
	if opts.CPUSeconds > 0 {
		data, err := client.Pprof(ctx, "profile", opts.CPUSeconds)
		c.add("cpu_profile", "cpu.pprof", data, err)
	}

	m, err := c.finish()
	return dir, m, err
}

// CaptureLocal reads the bundle out of the current process: the default
// telemetry registry, history ring, log ring and tracer, plus runtime
// profiles taken in-process. This is the self-hosted path — the load
// harness and tests run node and capture in one process, no HTTP hop.
func CaptureLocal(opts Options) (string, Manifest, error) {
	dir, err := opts.outDir()
	if err != nil {
		return "", Manifest{}, err
	}
	reg := telemetry.Default()
	c := &capture{dir: dir, manifest: Manifest{
		Schema:     ManifestSchema,
		CapturedNS: time.Now().UnixNano(),
		Source:     "local",
		Node:       reg.Node(),
		Build:      telemetry.CollectBuildInfo(),
	}}
	c.addJSON("build", "build.json", c.manifest.Build, nil)

	if !reg.Enabled() {
		c.addJSON("metrics", "metrics.json", nil, fmt.Errorf("telemetry disabled"))
	} else {
		c.addJSON("metrics", "metrics.json", reg.Snapshot(), nil)
	}
	if h := telemetry.DefaultHistory(); h != nil {
		h.Record() // up-to-the-instant tail sample
		c.addJSON("metrics_history", "metrics_history.json", h.Dump(opts.Window), nil)
	} else {
		c.addJSON("metrics_history", "metrics_history.json", nil, fmt.Errorf("metrics history disabled"))
	}
	c.addJSON("logs", "logs.json", localLogs(opts.LogComponent), nil)
	c.addJSON("health", "health.json", nil, fmt.Errorf("health checks live on the API server, not in local capture"))

	trace := reg.Tracer().Export()
	c.addJSON("trace", "trace.json", trace, nil)
	chrome, cerr := trace.ChromeTraceJSON()
	c.add("trace_chrome", "trace_chrome.json", chrome, cerr)

	for _, p := range []string{"goroutine", "heap", "mutex", "block"} {
		var buf bytes.Buffer
		err := pprof.Lookup(p).WriteTo(&buf, 0)
		c.add(p, p+".pprof", buf.Bytes(), err)
	}
	if opts.CPUSeconds > 0 {
		var buf bytes.Buffer
		err := pprof.StartCPUProfile(&buf)
		if err == nil {
			time.Sleep(time.Duration(opts.CPUSeconds) * time.Second)
			pprof.StopCPUProfile()
		}
		c.add("cpu_profile", "cpu.pprof", buf.Bytes(), err)
	}

	m, err := c.finish()
	return dir, m, err
}

// localLogs snapshots the process log ring in the same shape the API
// serves, so bundle consumers parse one format regardless of source.
func localLogs(component string) api.LogsResponse {
	l := telemetry.DefaultLog()
	events := l.Events()
	out := api.LogsResponse{Components: l.Components(), Events: []telemetry.LogEvent{}}
	for _, e := range events {
		if component != "" && e.Component != component {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// requiredArtifacts is the set Verify insists on: a bundle missing any
// of these (successfully captured or not even attempted) is not a
// usable flight recording.
var requiredArtifacts = []string{
	"build", "metrics", "metrics_history", "logs", "trace", "trace_chrome",
	"goroutine", "heap", "mutex", "block",
}

// Verify checks a bundle directory end to end: the manifest parses,
// every required artifact has an entry, every successful artifact's
// file exists with matching size and SHA-256, JSON artifacts parse into
// their wire types, and .pprof artifacts decode as complete gzip
// streams (the pprof container format), CRC included. It returns the
// manifest and the first problem found.
func Verify(dir string) (Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return Manifest{}, fmt.Errorf("diag: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, fmt.Errorf("diag: bad manifest: %w", err)
	}
	if m.Schema != ManifestSchema {
		return m, fmt.Errorf("diag: manifest schema %q, want %q", m.Schema, ManifestSchema)
	}
	for _, name := range requiredArtifacts {
		if _, ok := m.Artifact(name); !ok {
			return m, fmt.Errorf("diag: required artifact %q missing from manifest", name)
		}
	}
	for _, a := range m.Artifacts {
		if a.Err != "" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, a.File))
		if err != nil {
			return m, fmt.Errorf("diag: artifact %q: %w", a.Name, err)
		}
		if int64(len(data)) != a.Bytes {
			return m, fmt.Errorf("diag: artifact %q: %d bytes on disk, manifest says %d", a.Name, len(data), a.Bytes)
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != a.SHA256 {
			return m, fmt.Errorf("diag: artifact %q: checksum mismatch", a.Name)
		}
		if err := parseArtifact(a, data); err != nil {
			return m, fmt.Errorf("diag: artifact %q: %w", a.Name, err)
		}
	}
	return m, nil
}

// parseArtifact type-checks an artifact's content by name.
func parseArtifact(a Artifact, data []byte) error {
	switch a.Name {
	case "build":
		var v telemetry.BuildInfo
		return json.Unmarshal(data, &v)
	case "metrics":
		var v telemetry.Snapshot
		return json.Unmarshal(data, &v)
	case "metrics_history":
		var v telemetry.HistoryDump
		return json.Unmarshal(data, &v)
	case "logs":
		var v api.LogsResponse
		return json.Unmarshal(data, &v)
	case "health":
		var v telemetry.HealthReport
		return json.Unmarshal(data, &v)
	case "trace":
		var v telemetry.Trace
		return json.Unmarshal(data, &v)
	case "trace_chrome":
		var v struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if v.TraceEvents == nil {
			return fmt.Errorf("no traceEvents array")
		}
		return nil
	default:
		if strings.HasSuffix(a.File, ".pprof") {
			// pprof's wire format is gzipped protobuf; a full decode
			// (gzip CRC at the tail) proves the capture wasn't truncated.
			zr, err := gzip.NewReader(bytes.NewReader(data))
			if err != nil {
				return fmt.Errorf("not gzipped pprof: %w", err)
			}
			if _, err := io.Copy(io.Discard, zr); err != nil {
				return fmt.Errorf("truncated pprof stream: %w", err)
			}
			return zr.Close()
		}
		return nil
	}
}
