package market

import (
	"bytes"
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/policy"
	"pds2/internal/vm"
)

// vmWorldOutcome is everything observable about one equivalence-run
// world: the ordered PolicyDecision event payloads, the final
// consumption counter of the lifecycle dataset, and the probe records.
type vmWorldOutcome struct {
	decisions [][]byte          // EvPolicyDecision payloads, chain order
	probes    map[string][]byte // label → DecisionRecord bytes
	uses      uint64
}

// runBuiltinEquivalenceWorld drives one deterministic world: three
// datasets carrying the same three policies — attached declaratively
// when compiled is false, or re-expressed in the DSL by
// vm.BuiltinPolicySource, compiled to bytecode and deployed when true —
// then probes every denial clause through evalPolicy views and settles
// a full lifecycle (match → admission → enclave → settle) plus an
// exhausted re-match against the same dataset.
func runBuiltinEquivalenceWorld(t *testing.T, compiled bool) vmWorldOutcome {
	t.Helper()
	w := newTestWorld(t, 77, 4, 1)
	exec := w.executors[0]

	main := &policy.Policy{ // lifecycle dataset: settles end to end
		AllowedClasses: []string{DefaultComputationClass},
		MinAggregation: 1,
		ExpiryHeight:   w.m.Height() + 10_000,
		MaxInvocations: 8,
	}
	expired := &policy.Policy{ExpiryHeight: 1} // registration heights are past 1
	strict := &policy.Policy{ // class/purpose/aggregation denial probes
		AllowedClasses: []string{"stats"},
		MinAggregation: 3,
		Purposes:       []string{"research"},
	}
	oneShot := &policy.Policy{MaxInvocations: 1} // exhaustion probe
	for i, pol := range []*policy.Policy{main, expired, strict, oneShot} {
		var err error
		if compiled {
			err = w.providers[i].DeployPolicy(w.refs[i][0].ID, vm.BuiltinPolicySource(pol))
		} else {
			err = w.providers[i].SetPolicy(w.refs[i][0].ID, pol)
		}
		if err != nil {
			t.Fatalf("attach policy %d (compiled=%v): %v", i, compiled, err)
		}
	}

	out := vmWorldOutcome{probes: make(map[string][]byte)}
	probe := func(label string, ds int, class, purpose string, agg uint64) {
		t.Helper()
		rec, err := w.m.EvalPolicy(w.refs[ds][0].ID, policy.LayerMatch, class, purpose, agg)
		if err != nil {
			t.Fatalf("probe %s (compiled=%v): %v", label, compiled, err)
		}
		out.probes[label] = rec.Encode()
	}
	probe("ok", 0, DefaultComputationClass, "", 1)
	probe("class", 2, DefaultComputationClass, "research", 3)
	probe("purpose", 2, "stats", "ads", 3)
	probe("aggregation", 2, "stats", "research", 1)

	// Expiry needs a real block height (views evaluate at height 0), so
	// it goes through an on-chain match-layer enforcement transaction.
	recs, err := w.m.enforcePolicies(w.providers[1].ID, policy.LayerMatch,
		DefaultComputationClass, "", 1, []crypto.Digest{w.refs[1][0].ID})
	if err != nil {
		t.Fatalf("expired enforcement (compiled=%v): %v", compiled, err)
	}
	if len(recs) != 1 {
		t.Fatalf("expired enforcement: %d records", len(recs))
	}
	out.probes["expired"] = recs[0].Encode()

	// Exhaustion: a workload admits the one-shot dataset, consuming its
	// single permitted invocation; the next workload's match must then
	// deny with the stable invocations_exhausted code.
	w.spec.MinProviders, w.spec.MinItems = 1, 1
	oneShotWL, err := w.consumer.SubmitWorkload(w.spec, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	auths3, err := w.providers[3].Authorize(oneShotWL, exec.ID.Address(), w.refs[3], w.spec.ExpiryHeight)
	if err != nil {
		t.Fatalf("one-shot authorize (compiled=%v): %v", compiled, err)
	}
	exec.Accept(oneShotWL, auths3)
	if err := exec.Register(oneShotWL); err != nil {
		t.Fatalf("one-shot register (compiled=%v): %v", compiled, err)
	}
	exhaustedWL, err := w.consumer.SubmitWorkload(w.spec, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	var denial *PolicyDenialError
	if _, err := w.providers[3].Authorize(exhaustedWL, exec.ID.Address(), w.refs[3], w.spec.ExpiryHeight); !errors.As(err, &denial) {
		t.Fatalf("exhausted authorize (compiled=%v): %v", compiled, err)
	}
	out.probes["exhausted"] = denial.Record.Encode()

	// Full lifecycle against the main dataset: match allow, admission
	// allow (consuming one of the eight permitted invocations), enclave
	// allow, settle.
	addr, err := w.consumer.SubmitWorkload(w.spec, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	auths, err := w.providers[0].Authorize(addr, exec.ID.Address(), w.refs[0], w.spec.ExpiryHeight)
	if err != nil {
		t.Fatalf("authorize (compiled=%v): %v", compiled, err)
	}
	exec.Accept(addr, auths)
	if err := exec.Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadExecution(addr, w.executors); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Finalize(addr); err != nil {
		t.Fatal(err)
	}
	if st, err := w.m.WorkloadStateOf(addr); err != nil || st != StateComplete {
		t.Fatalf("state = %v err = %v", st, err)
	}

	for _, ev := range w.m.Chain.Events(policy.EvPolicyDecision) {
		out.decisions = append(out.decisions, ev.Data)
	}
	if out.uses, err = w.m.PolicyUses(w.refs[0][0].ID); err != nil {
		t.Fatal(err)
	}
	replayClean(t, w)
	return out
}

// TestVMBuiltinPolicyEquivalence is the acceptance gate for the
// bytecode engine (pinned in `make vm-smoke` / `make ci`): the built-in
// five-clause policy re-expressed in the DSL, compiled and deployed as
// bytecode must be observationally identical to the hardwired Go
// evaluator across all six stable decision codes — bit-identical
// DecisionRecords from views and denials, a bit-identical
// PolicyDecision event log over a full settled lifecycle, and the same
// consumption accounting.
func TestVMBuiltinPolicyEquivalence(t *testing.T) {
	declarative := runBuiltinEquivalenceWorld(t, false)
	viaVM := runBuiltinEquivalenceWorld(t, true)

	wantCodes := map[string]string{
		"ok":          policy.CodeOK,
		"expired":     policy.CodeExpired,
		"class":       policy.CodeClassForbidden,
		"purpose":     policy.CodePurposeMismatch,
		"aggregation": policy.CodeAggregationFloor,
		"exhausted":   policy.CodeExhausted,
	}
	for label, want := range wantCodes {
		d, v := declarative.probes[label], viaVM.probes[label]
		if !bytes.Equal(d, v) {
			t.Errorf("probe %s: declarative record %x != vm record %x", label, d, v)
			continue
		}
		rec, err := policy.DecodeDecisionRecord(d)
		if err != nil {
			t.Fatalf("probe %s: %v", label, err)
		}
		if rec.Code != want {
			t.Errorf("probe %s: code %q, want %q", label, rec.Code, want)
		}
	}

	if len(declarative.decisions) == 0 {
		t.Fatal("no decision events logged")
	}
	if len(declarative.decisions) != len(viaVM.decisions) {
		t.Fatalf("decision event counts diverge: declarative %d, vm %d",
			len(declarative.decisions), len(viaVM.decisions))
	}
	for i := range declarative.decisions {
		if !bytes.Equal(declarative.decisions[i], viaVM.decisions[i]) {
			t.Errorf("decision event %d diverges:\n  declarative %x\n  vm          %x",
				i, declarative.decisions[i], viaVM.decisions[i])
		}
	}
	if declarative.uses != viaVM.uses {
		t.Fatalf("consumption diverges: declarative %d, vm %d", declarative.uses, viaVM.uses)
	}
}

// TestVMPolicyDeniedAtAllThreeLayers re-runs the core three-layer
// usage-control guarantee with the policy expressed as a deployed
// bytecode program: the compiled forbidden-class program must deny at
// match, admission and enclave exactly like its declarative twin,
// through the single registry chokepoint all layers share.
func TestVMPolicyDeniedAtAllThreeLayers(t *testing.T) {
	w := newTestWorld(t, 11, 1, 1)
	p, exec := w.providers[0], w.executors[0]
	ref := w.refs[0][0]

	forbid := &policy.Policy{
		AllowedClasses: []string{"stats"}, // the spec's class is "train"
		MinAggregation: 1,
		ExpiryHeight:   w.m.Height() + 10_000,
		MaxInvocations: 8,
	}
	if err := p.DeployPolicy(ref.ID, vm.BuiltinPolicySource(forbid)); err != nil {
		t.Fatal(err)
	}
	// The deployed artifact is on chain, decodes, and re-verifies
	// against its embedded source.
	code, err := w.m.PolicyCodeOf(ref.ID)
	if err != nil || len(code) == 0 {
		t.Fatalf("PolicyCodeOf: %d bytes, err %v", len(code), err)
	}
	mod, err := vm.Decode(code)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.VerifySource(mod); err != nil {
		t.Fatal(err)
	}
	if n := len(w.m.Chain.Events(EvPolicyCodeDeployed)); n != 1 {
		t.Fatalf("%d PolicyCodeDeployed events", n)
	}

	addr, err := w.consumer.SubmitWorkload(w.spec, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	var denial *PolicyDenialError
	if _, err := p.Authorize(addr, exec.ID.Address(), w.refs[0], w.spec.ExpiryHeight); !errors.As(err, &denial) {
		t.Fatalf("match-layer error = %v", err)
	}
	if denial.Record.Layer != policy.LayerMatch || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("match denial = %+v", denial.Record)
	}

	// Bypass the match gate with hand-forged credentials: the workload
	// contract's admission call still runs the program and refuses.
	wid := WorkloadIDFor(addr)
	grant, err := p.Vault.Grant(ref.ID, wid, exec.ID.Address(), w.spec.ExpiryHeight)
	if err != nil {
		t.Fatal(err)
	}
	exec.Accept(addr, []Authorization{{
		Cert:  identity.IssueCert(p.ID, wid, ref.ID, exec.ID.Address(), w.spec.ExpiryHeight),
		Grant: grant,
	}})
	denial = nil
	if err := exec.Register(addr); !errors.As(err, &denial) {
		t.Fatalf("admission-layer error = %v", err)
	}
	if denial.Record.Layer != policy.LayerAdmission || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("admission denial = %+v", denial.Record)
	}

	denial = nil
	if err := exec.TrainLocal(addr); !errors.As(err, &denial) {
		t.Fatalf("enclave-layer error = %v", err)
	}
	if denial.Record.Layer != policy.LayerEnclave || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("enclave denial = %+v", denial.Record)
	}

	byLayer := decisionsByLayer(t, w)
	for _, layer := range []string{policy.LayerMatch, policy.LayerAdmission, policy.LayerEnclave} {
		recs := byLayer[layer]
		if len(recs) != 1 {
			t.Fatalf("%s layer logged %d decisions", layer, len(recs))
		}
		if recs[0].Allowed() || recs[0].Code != policy.CodeClassForbidden || recs[0].Clause != policy.ClauseClasses {
			t.Fatalf("%s decision = %+v", layer, recs[0])
		}
	}
	replayClean(t, w)
	if uses, err := w.m.PolicyUses(ref.ID); err != nil || uses != 0 {
		t.Fatalf("uses = %d err = %v (denied batches must not consume)", uses, err)
	}
}

// TestVMPolicyRejectsBadDeploys pins deployPolicy's gate: non-owners,
// corrupt artifacts, and forged code sections (valid container and
// checksum, bytecode not matching the embedded source) must all revert
// without binding anything.
func TestVMPolicyRejectsBadDeploys(t *testing.T) {
	w := newTestWorld(t, 21, 2, 1)
	p0, p1 := w.providers[0], w.providers[1]
	ref := w.refs[0][0]
	good, err := vm.BuildSource("allow")
	if err != nil {
		t.Fatal(err)
	}

	// Non-owner deploy.
	if _, err := MustSucceed(w.m.SendAndSeal(p1.ID, w.m.Registry, 0,
		DeployPolicyData(ref.ID, good))); err == nil {
		t.Fatal("non-owner deployPolicy succeeded")
	}
	// Corrupt artifact (checksum breaks).
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := MustSucceed(w.m.SendAndSeal(p0.ID, w.m.Registry, 0,
		DeployPolicyData(ref.ID, bad))); err == nil {
		t.Fatal("corrupt artifact deployed")
	}
	// Forged code: transplant a different program's code section behind
	// an honest source and re-encode. The container checksum is valid —
	// only deploy-time source re-verification catches the mismatch.
	other, err := vm.CompileSource(`deny "class_forbidden" "allowed_classes"`)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := vm.Decode(good)
	if err != nil {
		t.Fatal(err)
	}
	forged := &vm.Module{NumLocals: other.NumLocals, Consts: other.Consts,
		Code: other.Code, Source: honest.Source}
	if _, err := MustSucceed(w.m.SendAndSeal(p0.ID, w.m.Registry, 0,
		DeployPolicyData(ref.ID, forged.Encode()))); err == nil {
		t.Fatal("forged code section deployed")
	}
	// Nothing bound, no deploy event.
	if code, err := w.m.PolicyCodeOf(ref.ID); err != nil || len(code) != 0 {
		t.Fatalf("code bound after rejected deploys: %d bytes, err %v", len(code), err)
	}
	if n := len(w.m.Chain.Events(EvPolicyCodeDeployed)); n != 0 {
		t.Fatalf("%d PolicyCodeDeployed events after rejected deploys", n)
	}
	// The owner's honest deploy still lands.
	if err := p0.DeployPolicy(ref.ID, "allow"); err != nil {
		t.Fatal(err)
	}
	if code, err := w.m.PolicyCodeOf(ref.ID); err != nil || len(code) == 0 {
		t.Fatalf("honest deploy did not bind: %d bytes, err %v", len(code), err)
	}
}

// TestVMPolicyStatefulProgram exercises what the declarative engine
// cannot express: a program keeping per-dataset on-chain state (a
// persistent evaluation counter in the registry's polstate partition)
// and emitting namespaced audit events, self-exhausting after two
// evaluations.
func TestVMPolicyStatefulProgram(t *testing.T) {
	w := newTestWorld(t, 31, 1, 1)
	p := w.providers[0]
	ref := w.refs[0][0]

	src := `
let n = load("evals")
if n == false { n = 0 }
n = n + 1
store("evals", n)
emit("probe", layer, n)
if n > 2 { deny "invocations_exhausted" "max_invocations" }
allow
`
	if err := p.DeployPolicy(ref.ID, src); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{policy.CodeOK, policy.CodeOK, policy.CodeExhausted} {
		recs, err := w.m.enforcePolicies(p.ID, policy.LayerMatch,
			DefaultComputationClass, "", 1, []crypto.Digest{ref.ID})
		if err != nil {
			t.Fatalf("evaluation %d: %v", i, err)
		}
		if len(recs) != 1 || recs[0].Code != want {
			t.Fatalf("evaluation %d: records = %+v, want code %s", i, recs, want)
		}
	}
	// Each evaluation appended one namespaced program event carrying the
	// running counter.
	if n := len(w.m.Chain.Events(vm.EventTopicPrefix + "probe")); n != 3 {
		t.Fatalf("%d vm/probe events, want 3", n)
	}
	// The counter lives in the registry's polstate partition, outside
	// the reach of every other storage namespace.
	st := w.m.Chain.State()
	if raw := st.GetStorage(w.m.Registry, "polstate/"+ref.ID.Hex()+"/evals"); len(raw) == 0 {
		t.Fatal("program state not persisted under polstate/")
	}
	replayClean(t, w)
}
