package market

import (
	"errors"
	"testing"

	"pds2/internal/identity"
	"pds2/internal/policy"
)

// decisionsByLayer decodes every PolicyDecision event on the chain and
// groups the records by enforcement layer.
func decisionsByLayer(t *testing.T, w *testWorld) map[string][]policy.DecisionRecord {
	t.Helper()
	out := make(map[string][]policy.DecisionRecord)
	for _, ev := range w.m.Chain.Events(policy.EvPolicyDecision) {
		rec, err := policy.DecodeDecisionRecord(ev.Data)
		if err != nil {
			t.Fatal(err)
		}
		out[rec.Layer] = append(out[rec.Layer], *rec)
	}
	return out
}

// replayClean re-derives every decision offline from the flat event log
// and fails the test on any mismatch — the pds2-audit verification path.
func replayClean(t *testing.T, w *testWorld) {
	t.Helper()
	events := w.m.Chain.Events("")
	rep := policy.ReplayDecisions(events)
	if err := rep.Err(); err != nil {
		t.Fatalf("decision replay: %v", err)
	}
	if v := VerifyPolicySettlements(events); len(v) != 0 {
		t.Fatalf("settlement violations: %v", v)
	}
}

// TestPolicyDeniedAtAllThreeLayers pins the core usage-control
// guarantee: a workload whose computation class a dataset's policy
// forbids is denied at match, admission and enclave time — each denial
// a chain event with the same stable reason code — even when an actor
// colludes to bypass an earlier layer.
func TestPolicyDeniedAtAllThreeLayers(t *testing.T) {
	w := newTestWorld(t, 11, 1, 1)
	p, exec := w.providers[0], w.executors[0]
	ref := w.refs[0][0]

	forbid := &policy.Policy{
		AllowedClasses: []string{"stats"}, // the spec's class is "train"
		MinAggregation: 1,
		ExpiryHeight:   w.m.Height() + 10_000,
		MaxInvocations: 8,
	}
	if err := p.SetPolicy(ref.ID, forbid); err != nil {
		t.Fatal(err)
	}
	addr, err := w.consumer.SubmitWorkload(w.spec, 50_000)
	if err != nil {
		t.Fatal(err)
	}

	// Layer 1 — match: authorization is refused before any certificate
	// or grant exists.
	var denial *PolicyDenialError
	_, err = p.Authorize(addr, exec.ID.Address(), w.refs[0], w.spec.ExpiryHeight)
	if !errors.As(err, &denial) {
		t.Fatalf("match-layer error = %v", err)
	}
	if denial.Record.Layer != policy.LayerMatch || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("match denial = %+v", denial.Record)
	}

	// Layer 2 — admission: a colluding provider hands the executor a
	// hand-forged (but validly signed) certificate and grant, bypassing
	// the match gate. The workload contract still refuses registration.
	wid := WorkloadIDFor(addr)
	grant, err := p.Vault.Grant(ref.ID, wid, exec.ID.Address(), w.spec.ExpiryHeight)
	if err != nil {
		t.Fatal(err)
	}
	exec.Accept(addr, []Authorization{{
		Cert:  identity.IssueCert(p.ID, wid, ref.ID, exec.ID.Address(), w.spec.ExpiryHeight),
		Grant: grant,
	}})
	denial = nil
	if err := exec.Register(addr); !errors.As(err, &denial) {
		t.Fatalf("admission-layer error = %v", err)
	}
	if denial.Record.Layer != policy.LayerAdmission || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("admission denial = %+v", denial.Record)
	}
	if n := len(w.m.Chain.Events(EvExecutorRegistered)); n != 0 {
		t.Fatalf("%d executors registered despite denial", n)
	}

	// Layer 3 — enclave: even with the ciphertext and grant in hand, the
	// enclave guard blocks the call before the program touches plaintext.
	denial = nil
	if err := exec.TrainLocal(addr); !errors.As(err, &denial) {
		t.Fatalf("enclave-layer error = %v", err)
	}
	if denial.Record.Layer != policy.LayerEnclave || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("enclave denial = %+v", denial.Record)
	}

	// Exactly one on-chain denial per layer, all with the same stable
	// reason code and clause, and the log replays clean offline.
	byLayer := decisionsByLayer(t, w)
	for _, layer := range []string{policy.LayerMatch, policy.LayerAdmission, policy.LayerEnclave} {
		recs := byLayer[layer]
		if len(recs) != 1 {
			t.Fatalf("%s layer logged %d decisions", layer, len(recs))
		}
		if recs[0].Allowed() || recs[0].Code != policy.CodeClassForbidden || recs[0].Clause != policy.ClauseClasses {
			t.Fatalf("%s decision = %+v", layer, recs[0])
		}
	}
	replayClean(t, w)
	if uses, err := w.m.PolicyUses(ref.ID); err != nil || uses != 0 {
		t.Fatalf("uses = %d err = %v (denied batches must not consume)", uses, err)
	}
}

// TestPolicyTightenedAfterMatchCaughtLater pins the time-of-check /
// time-of-use story: a policy tightened after a match-time allow is
// still enforced at admission and inside the enclave, and the offline
// replay accepts the late denials because the mutation event sits
// between the match decision and the denials.
func TestPolicyTightenedAfterMatchCaughtLater(t *testing.T) {
	w := newTestWorld(t, 12, 1, 1)
	p, exec := w.providers[0], w.executors[0]
	ref := w.refs[0][0]

	permissive := &policy.Policy{
		AllowedClasses: []string{DefaultComputationClass},
		MinAggregation: 1,
		ExpiryHeight:   w.m.Height() + 10_000,
		MaxInvocations: 8,
	}
	if err := p.SetPolicy(ref.ID, permissive); err != nil {
		t.Fatal(err)
	}
	addr, err := w.consumer.SubmitWorkload(w.spec, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	auths, err := p.Authorize(addr, exec.ID.Address(), w.refs[0], w.spec.ExpiryHeight)
	if err != nil {
		t.Fatal(err)
	}
	exec.Accept(addr, auths)

	// The provider revokes training permission after the match.
	tightened := *permissive
	tightened.AllowedClasses = []string{"stats"}
	if err := p.SetPolicy(ref.ID, &tightened); err != nil {
		t.Fatal(err)
	}

	var denial *PolicyDenialError
	if err := exec.Register(addr); !errors.As(err, &denial) {
		t.Fatalf("admission error = %v", err)
	}
	if denial.Record.Layer != policy.LayerAdmission || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("admission denial = %+v", denial.Record)
	}
	denial = nil
	if err := exec.TrainLocal(addr); !errors.As(err, &denial) {
		t.Fatalf("enclave error = %v", err)
	}
	if denial.Record.Layer != policy.LayerEnclave || denial.Record.Code != policy.CodeClassForbidden {
		t.Fatalf("enclave denial = %+v", denial.Record)
	}

	byLayer := decisionsByLayer(t, w)
	if len(byLayer[policy.LayerMatch]) != 1 || !byLayer[policy.LayerMatch][0].Allowed() {
		t.Fatalf("match decisions = %+v", byLayer[policy.LayerMatch])
	}
	if len(byLayer[policy.LayerAdmission]) != 1 || len(byLayer[policy.LayerEnclave]) != 1 {
		t.Fatalf("late-layer decisions = %+v", byLayer)
	}
	// The replay accepts both late denials only because the PolicySet
	// mutation explains them.
	replayClean(t, w)
}

// TestPolicySmokeLifecycle is the `make policy-smoke` gate: a
// policy-bearing workload settles end-to-end next to a denied
// bystander, producing at least one allow and one deny decision event,
// with the whole log replayable offline.
func TestPolicySmokeLifecycle(t *testing.T) {
	w := newTestWorld(t, 13, 3, 2)
	open := &policy.Policy{
		AllowedClasses: []string{DefaultComputationClass, "stats"},
		MinAggregation: 1,
		ExpiryHeight:   w.m.Height() + 10_000,
		MaxInvocations: 8,
	}
	if err := w.providers[0].SetPolicy(w.refs[0][0].ID, open); err != nil {
		t.Fatal(err)
	}
	closed := &policy.Policy{
		AllowedClasses: []string{"stats"},
		MinAggregation: 1,
		ExpiryHeight:   w.m.Height() + 10_000,
		MaxInvocations: 8,
	}
	if err := w.providers[2].SetPolicy(w.refs[2][0].ID, closed); err != nil {
		t.Fatal(err)
	}

	// Two of the three providers can participate; the spec floor only
	// counts them, leaving the forbidden provider as the denied path.
	w.spec.MinProviders, w.spec.MinItems = 2, 2
	addr, err := w.consumer.SubmitWorkload(w.spec, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range w.providers[:2] {
		refs, err := p.EligibleData(w.spec)
		if err != nil || len(refs) == 0 {
			t.Fatalf("provider %d eligibility: refs = %d err = %v", i, len(refs), err)
		}
		auths, err := p.Authorize(addr, w.executors[i].ID.Address(), refs, w.spec.ExpiryHeight)
		if err != nil {
			t.Fatal(err)
		}
		w.executors[i].Accept(addr, auths)
	}
	refs2, err := w.providers[2].EligibleData(w.spec)
	if err != nil || len(refs2) == 0 {
		t.Fatalf("forbidden provider eligibility: refs = %d err = %v", len(refs2), err)
	}
	var denial *PolicyDenialError
	if _, err := w.providers[2].Authorize(addr, w.executors[0].ID.Address(), refs2, w.spec.ExpiryHeight); !errors.As(err, &denial) {
		t.Fatalf("forbidden provider authorized: %v", err)
	}
	if denial.Record.Layer != policy.LayerMatch {
		t.Fatalf("denial layer = %s", denial.Record.Layer)
	}

	for _, e := range w.executors {
		if err := e.Register(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadExecution(addr, w.executors); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Finalize(addr); err != nil {
		t.Fatal(err)
	}
	if st, err := w.m.WorkloadStateOf(addr); err != nil || st != StateComplete {
		t.Fatalf("state = %v err = %v", st, err)
	}

	var allows, denies int
	for _, ev := range w.m.Chain.Events(policy.EvPolicyDecision) {
		rec, err := policy.DecodeDecisionRecord(ev.Data)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Allowed() {
			allows++
		} else {
			denies++
		}
	}
	if allows == 0 || denies == 0 {
		t.Fatalf("allows = %d denies = %d; smoke needs at least one of each", allows, denies)
	}
	replayClean(t, w)
	// Exactly one admission consumed the policy-bearing dataset.
	if uses, err := w.m.PolicyUses(w.refs[0][0].ID); err != nil || uses != 1 {
		t.Fatalf("uses = %d err = %v", uses, err)
	}
}
