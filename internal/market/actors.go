package market

import (
	"encoding/json"
	"errors"
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ml"
	"pds2/internal/policy"
	"pds2/internal/semantic"
	"pds2/internal/storage"
	"pds2/internal/tee"
	"pds2/internal/telemetry"
	"pds2/internal/token"
	"pds2/internal/vm"
)

// Consumer is the data-consumer actor (Fig. 1): it prepares workload
// specifications, escrows rewards, and retrieves results.
type Consumer struct {
	ID     *identity.Identity
	Market *Market
}

// NewConsumer registers the identity as a consumer on-chain.
func NewConsumer(m *Market, id *identity.Identity) (*Consumer, error) {
	if _, err := MustSucceed(m.SendAndSeal(id, m.Registry, 0, RegisterActorData(identity.RoleConsumer))); err != nil {
		return nil, err
	}
	return &Consumer{ID: id, Market: m}, nil
}

// SubmitWorkload deploys a workload contract with the escrowed budget
// and lists it in the registry directory — the first step of Fig. 2.
// It opens the workload's root telemetry span ("workload.lifecycle"),
// which Finalize or Cancel later closes.
func (c *Consumer) SubmitWorkload(spec *Spec, budget uint64) (identity.Address, error) {
	// Bind the workload to the platform registry so the contract can
	// enforce dataset usage-control policies at admission time.
	if spec.Registry.IsZero() {
		spec.Registry = c.Market.Registry
	}
	if err := spec.Validate(); err != nil {
		return identity.ZeroAddress, err
	}
	root := telemetry.StartSpan("workload.lifecycle", telemetry.SpanContext{})
	span := telemetry.StartSpan("workload.submit", root.Context())
	timer := mStageSubmit.Time()
	abort := func(err error) (identity.Address, error) {
		span.End()
		root.End()
		return identity.ZeroAddress, err
	}
	rcpt, err := MustSucceed(c.Market.SendAndSeal(c.ID, identity.ZeroAddress, budget,
		contract.DeployData(WorkloadCodeName, spec.Encode())))
	if err != nil {
		return abort(fmt.Errorf("market: submit workload: %w", err))
	}
	var addr identity.Address
	copy(addr[:], rcpt.Return)
	if _, err := MustSucceed(c.Market.SendAndSeal(c.ID, c.Market.Registry, 0, RegisterWorkloadData(addr))); err != nil {
		return abort(fmt.Errorf("market: list workload: %w", err))
	}
	timer.Stop()
	span.End()
	root.SetAttr("workload", addr.Hex())
	c.Market.trackLifecycle(addr, root)
	mSubmitted.Inc()
	logMarket.Info("workload submitted",
		telemetry.Str("workload", addr.Hex()), telemetry.U64("budget", budget),
		telemetry.Str("consumer", c.ID.Address().Hex()))
	return addr, nil
}

// Fund escrows the ERC-20 budget of a token-denominated workload: it
// approves the workload contract for the budget and triggers the pull
// (Funding → Open).
func (c *Consumer) Fund(workload identity.Address) error {
	spec, err := c.Market.WorkloadSpecOf(workload)
	if err != nil {
		return err
	}
	if spec.RewardToken.IsZero() {
		return errors.New("market: workload is native-denominated; nothing to fund")
	}
	if _, err := MustSucceed(c.Market.SendAndSeal(c.ID, spec.RewardToken, 0,
		token.ERC20ApproveData(workload, spec.TokenBudget))); err != nil {
		return fmt.Errorf("market: approve budget: %w", err)
	}
	if _, err := MustSucceed(c.Market.SendAndSeal(c.ID, workload, 0,
		contract.CallData("fund", nil))); err != nil {
		return fmt.Errorf("market: fund: %w", err)
	}
	return nil
}

// Start asks the governance layer to begin execution once conditions
// are met.
func (c *Consumer) Start(workload identity.Address) error {
	_, err := MustSucceed(c.Market.SendAndSeal(c.ID, workload, 0, contract.CallData("start", nil)))
	return err
}

// Finalize triggers reward distribution — the settle stage of Fig. 2.
// It closes the workload's lifecycle span.
func (c *Consumer) Finalize(workload identity.Address) error {
	span := telemetry.StartSpan("workload.settle", c.Market.lifecycleCtx(workload))
	timer := mStageSettle.Time()
	_, err := MustSucceed(c.Market.SendAndSeal(c.ID, workload, 0, contract.CallData("finalize", nil)))
	timer.Stop()
	span.End()
	if err == nil {
		mFinalized.Inc()
		logMarket.Info("workload settled", telemetry.Str("workload", workload.Hex()))
	} else {
		logMarket.Error("workload settlement failed",
			telemetry.Str("workload", workload.Hex()), telemetry.Err(err))
	}
	c.Market.endLifecycle(workload)
	return err
}

// Cancel reclaims the escrow after expiry. It closes the workload's
// lifecycle span.
func (c *Consumer) Cancel(workload identity.Address) error {
	span := telemetry.StartSpan("workload.cancel", c.Market.lifecycleCtx(workload))
	_, err := MustSucceed(c.Market.SendAndSeal(c.ID, workload, 0, contract.CallData("cancel", nil)))
	span.End()
	c.Market.endLifecycle(workload)
	return err
}

// FetchResult retrieves the result payload from an executor and checks
// it against the on-chain accepted hash, so a lying executor cannot hand
// the consumer a different artifact than the attested one.
func (c *Consumer) FetchResult(workload identity.Address, from *Executor) ([]byte, error) {
	payload, ok := from.results[workload]
	if !ok {
		return nil, errors.New("market: executor has no result for this workload")
	}
	onChain, _, err := c.Market.WorkloadResultOf(workload)
	if err != nil {
		return nil, err
	}
	if ResultHash(payload) != onChain {
		return nil, errors.New("market: executor result does not match on-chain hash")
	}
	return payload, nil
}

// Provider is the data-provider actor: it owns a vault of encrypted
// datasets, registers them on-chain, discovers eligible workloads and
// authorizes executors with certificates and grants.
type Provider struct {
	ID     *identity.Identity
	Market *Market
	Vault  *storage.Vault
	Node   *storage.Node // where the provider hosts its ciphertexts
}

// NewProvider registers the identity as a provider and wires its vault
// to the given storage node (Fig. 3: the node may be the provider's own
// hardware or a third-party service).
func NewProvider(m *Market, id *identity.Identity, node *storage.Node) (*Provider, error) {
	if _, err := MustSucceed(m.SendAndSeal(id, m.Registry, 0, RegisterActorData(identity.RoleProvider))); err != nil {
		return nil, err
	}
	return &Provider{
		ID:     id,
		Market: m,
		Vault:  storage.NewVault(id, storage.NewMemStore(), m.Rng().Fork("vault-"+id.Address().Hex())),
		Node:   node,
	}, nil
}

// AddDataset encrypts the dataset into the vault, hosts the ciphertext
// on the storage node and registers the content hash on-chain.
func (p *Provider) AddDataset(ds *ml.Dataset, meta semantic.Metadata) (storage.DataRef, error) {
	blob := EncodeDataset(ds)
	ref, err := p.Vault.Store(blob, meta)
	if err != nil {
		return storage.DataRef{}, err
	}
	if err := p.Node.HostFromVault(p.Vault, ref.ID); err != nil {
		return storage.DataRef{}, err
	}
	metaHash := crypto.HashString(fmt.Sprintf("%v", meta))
	if _, err := MustSucceed(p.Market.SendAndSeal(p.ID, p.Market.Registry, 0,
		RegisterDataData(ref.ID, metaHash))); err != nil {
		return storage.DataRef{}, err
	}
	return ref, nil
}

// SetPolicy attaches (or replaces) the usage-control policy of one of
// this provider's registered datasets. Only the registering owner may
// call this; the registry emits a PolicySet event carrying the full
// policy blob so auditors can replay every later decision offline.
func (p *Provider) SetPolicy(dataID crypto.Digest, pol *policy.Policy) error {
	_, err := MustSucceed(p.Market.SendAndSeal(p.ID, p.Market.Registry, 0, SetPolicyData(dataID, pol)))
	return err
}

// DeployPolicy compiles a policy program and binds its bytecode to one
// of this provider's registered datasets. Deployed code takes
// precedence over a declarative policy; the registry emits a
// PolicyCodeDeployed event carrying the full artifact — which embeds
// the source — so auditors can re-verify and re-execute it offline.
func (p *Provider) DeployPolicy(dataID crypto.Digest, source string) error {
	artifact, err := vm.BuildSource(source)
	if err != nil {
		return fmt.Errorf("market: deploy policy: %w", err)
	}
	_, err = MustSucceed(p.Market.SendAndSeal(p.ID, p.Market.Registry, 0, DeployPolicyData(dataID, artifact)))
	return err
}

// EligibleData evaluates a workload's predicate against the vault —
// the storage-subsystem notification step of Fig. 2.
func (p *Provider) EligibleData(spec *Spec) ([]storage.DataRef, error) {
	pred, err := semantic.Parse(spec.Predicate)
	if err != nil {
		return nil, fmt.Errorf("market: workload predicate: %w", err)
	}
	return p.Vault.Match(pred), nil
}

// Discovery is one workload a provider's storage subsystem matched
// against its vault: the Fig. 2 "notify provider of eligible workload"
// step.
type Discovery struct {
	Workload identity.Address
	Spec     *Spec
	Eligible []storage.DataRef
}

// DiscoverWorkloads scans the registry's on-chain directory for open
// workloads for which this provider holds eligible data. In a live
// deployment the storage subsystem would subscribe to
// WorkloadRegistered events; scanning the audit log is equivalent and
// keeps the simulation synchronous.
func (p *Provider) DiscoverWorkloads() ([]Discovery, error) {
	addrs, err := p.Market.Workloads()
	if err != nil {
		return nil, err
	}
	var out []Discovery
	for _, addr := range addrs {
		st, err := p.Market.WorkloadStateOf(addr)
		if err != nil || st != StateOpen {
			continue
		}
		spec, err := p.Market.WorkloadSpecOf(addr)
		if err != nil {
			continue
		}
		if p.Market.Height() > spec.ExpiryHeight {
			continue
		}
		refs, err := p.EligibleData(spec)
		if err != nil || len(refs) == 0 {
			continue
		}
		out = append(out, Discovery{Workload: addr, Spec: spec, Eligible: refs})
	}
	return out, nil
}

// Authorization bundles a participation certificate with the matching
// storage grant — everything an executor needs to obtain and prove
// access to one dataset for one workload.
type Authorization struct {
	Cert  identity.ParticipationCert
	Grant storage.Grant
}

// Authorize produces the certificate and grant handing the given
// datasets to an executor for a workload (the provider opt-in of
// Fig. 2).
func (p *Provider) Authorize(workload identity.Address, executor identity.Address, refs []storage.DataRef, expiry uint64) ([]Authorization, error) {
	wid := WorkloadIDFor(workload)
	// Match-layer usage control: before any certificate is issued, every
	// dataset's policy is enforced on-chain against the workload's class,
	// purpose and guaranteed aggregation floor (spec.MinItems — the
	// smallest set the workload may start with). Each decision for a
	// policy-bearing dataset becomes a PolicyDecision chain event; a
	// denial aborts the authorization with a typed error. Policy-free
	// batches skip the transaction entirely.
	if len(refs) > 0 {
		spec, err := p.Market.WorkloadSpecOf(workload)
		if err != nil {
			return nil, err
		}
		ids := make([]crypto.Digest, len(refs))
		for i, ref := range refs {
			ids[i] = ref.ID
		}
		bound, err := p.Market.anyPolicyBound(ids)
		if err != nil {
			return nil, err
		}
		if bound {
			recs, err := p.Market.enforcePolicies(p.ID, policy.LayerMatch,
				spec.ComputationClass(), spec.Purpose, spec.MinItems, ids)
			if err != nil {
				return nil, err
			}
			if err := denialFromRecords(recs); err != nil {
				logMarket.Info("match-layer policy denial",
					telemetry.Str("workload", workload.Hex()),
					telemetry.Str("provider", p.ID.Address().Hex()), telemetry.Err(err))
				return nil, err
			}
		}
	}
	out := make([]Authorization, 0, len(refs))
	for _, ref := range refs {
		if ref.Owner != p.ID.Address() {
			return nil, fmt.Errorf("market: ref %s is not owned by this provider", ref.ID.Short())
		}
		grant, err := p.Vault.Grant(ref.ID, wid, executor, expiry)
		if err != nil {
			return nil, err
		}
		out = append(out, Authorization{
			Cert:  identity.IssueCert(p.ID, wid, ref.ID, executor, expiry),
			Grant: grant,
		})
	}
	return out, nil
}

// Executor is the executor actor: it owns TEE hardware, collects
// provider authorizations, registers its participation on-chain with an
// attestation quote, runs the workload inside its enclave and submits
// the attested result.
type Executor struct {
	ID       *identity.Identity
	Market   *Market
	Platform *tee.Platform
	Node     *storage.Node // storage node to fetch ciphertexts from

	assignments map[identity.Address][]Authorization
	locals      map[identity.Address][]byte // train-phase output per workload
	results     map[identity.Address][]byte // final result payloads
	enclaves    map[identity.Address]*tee.Enclave

	// TamperResult, when set, makes the executor corrupt its final
	// aggregation output before submitting — the E14 fault-injection
	// hook. The governance layer detects the divergence from the other
	// executors' attested results and marks the workload disputed.
	TamperResult bool

	// PoisonLocal, when set, makes the executor corrupt its *local*
	// training output before the share exchange (sign-flipped, blown-up
	// weights). Unlike TamperResult this attack is invisible to the
	// result-consistency check — every executor aggregates the same
	// poisoned inputs — and is defeated only by a robust aggregation
	// rule (TrainerParams.Aggregation = "median", ablation A4).
	PoisonLocal bool
}

// NewExecutor provisions a TEE platform for the identity and registers
// the executor role on-chain.
func NewExecutor(m *Market, id *identity.Identity, node *storage.Node) (*Executor, error) {
	if _, err := MustSucceed(m.SendAndSeal(id, m.Registry, 0, RegisterActorData(identity.RoleExecutor))); err != nil {
		return nil, err
	}
	return &Executor{
		ID:          id,
		Market:      m,
		Platform:    tee.NewPlatform(m.QA, tee.DefaultCostModel(), m.Rng().Fork("platform-"+id.Address().Hex())),
		Node:        node,
		assignments: make(map[identity.Address][]Authorization),
		locals:      make(map[identity.Address][]byte),
		results:     make(map[identity.Address][]byte),
		enclaves:    make(map[identity.Address]*tee.Enclave),
	}, nil
}

// Accept receives authorizations from a provider.
func (e *Executor) Accept(workload identity.Address, auths []Authorization) {
	e.assignments[workload] = append(e.assignments[workload], auths...)
}

// enclaveFor launches (once) the enclave running the workload's pinned
// program.
func (e *Executor) enclaveFor(workload identity.Address, spec *Spec) (*tee.Enclave, error) {
	if enc, ok := e.enclaves[workload]; ok {
		return enc, nil
	}
	prog := NewTrainerProgram(spec.Params).Program()
	if prog.Measure() != spec.Measurement {
		return nil, errors.New("market: local trainer does not match the spec measurement")
	}
	enc, err := e.Platform.Launch(prog)
	if err != nil {
		return nil, err
	}
	// Enclave-layer usage control: the guard re-enforces every granted
	// dataset's policy on-chain before any call may touch plaintext.
	enc.SetGuard(e.policyGuard(workload, spec))
	e.enclaves[workload] = enc
	return enc, nil
}

// policyGuard builds the tee.Guard for a workload's enclave — the third
// and innermost usage-control enforcement layer. On every train-mode
// call it enforces the policies of the exact dataset batch about to be
// computed on (aggregation = the batch size this enclave sees, which can
// be smaller than the workload total), logging the decisions on-chain;
// a denial aborts the call before the program runs. Aggregate-mode calls
// carry model shares, not raw datasets, and pass through.
func (e *Executor) policyGuard(workload identity.Address, spec *Spec) tee.Guard {
	return func(input []byte, _ int64) error {
		mode, err := contract.NewDecoder(input).String()
		if err != nil || mode != "train" {
			return nil
		}
		auths := e.assignments[workload]
		if len(auths) == 0 {
			return nil
		}
		ids := make([]crypto.Digest, 0, len(auths))
		seen := make(map[crypto.Digest]bool, len(auths))
		for _, a := range auths {
			if !seen[a.Grant.DataID] {
				seen[a.Grant.DataID] = true
				ids = append(ids, a.Grant.DataID)
			}
		}
		bound, err := e.Market.anyPolicyBound(ids)
		if err != nil {
			return err
		}
		if !bound {
			return nil
		}
		recs, err := e.Market.enforcePolicies(e.ID, policy.LayerEnclave,
			spec.ComputationClass(), spec.Purpose, uint64(len(auths)), ids)
		if err != nil {
			return err
		}
		if err := denialFromRecords(recs); err != nil {
			logMarket.Info("enclave-layer policy denial",
				telemetry.Str("workload", workload.Hex()),
				telemetry.Str("executor", e.ID.Address().Hex()), telemetry.Err(err))
			return err
		}
		return nil
	}
}

// Register submits the executor's participation to the workload
// contract: an attestation quote for the pinned program plus the
// collected certificates (Fig. 2's "register participation" step).
func (e *Executor) Register(workload identity.Address) error {
	auths := e.assignments[workload]
	if len(auths) == 0 {
		return errors.New("market: no authorizations collected for this workload")
	}
	span := telemetry.StartSpan("workload.match", e.Market.lifecycleCtx(workload))
	span.SetAttr("executor", e.ID.Address().Hex())
	defer span.End()
	timer := mStageMatch.Time()
	defer timer.Stop()
	spec, err := e.Market.WorkloadSpecOf(workload)
	if err != nil {
		return err
	}
	enclave, err := e.enclaveFor(workload, spec)
	if err != nil {
		return err
	}
	wid := WorkloadIDFor(workload)
	quote := enclave.Quote(RegistrationReport(wid, e.ID.Address()))
	quoteRaw, err := json.Marshal(quote)
	if err != nil {
		return err
	}
	certs := make([]identity.ParticipationCert, len(auths))
	for i, a := range auths {
		certs[i] = a.Cert
	}
	certsRaw, err := json.Marshal(certs)
	if err != nil {
		return err
	}
	args := contract.NewEncoder().Blob(quoteRaw).Blob(certsRaw).Bytes()
	rcpt, err := MustSucceed(e.Market.SendAndSeal(e.ID, workload, 0,
		contract.CallData("registerExecution", args)))
	if err == nil && len(rcpt.Return) > 0 {
		// Admission-layer policy denial: the transaction succeeds (the
		// deny decisions are chain events) but registration was refused
		// and the contract returned the decision batch.
		recs, decErr := policy.DecodeDecisionRecords(rcpt.Return)
		if decErr != nil {
			err = fmt.Errorf("market: register execution: %w", decErr)
		} else {
			err = denialFromRecords(recs)
		}
	}
	if err != nil {
		logMarket.Warn("executor registration rejected",
			telemetry.Str("workload", workload.Hex()),
			telemetry.Str("executor", e.ID.Address().Hex()), telemetry.Err(err))
		return err
	}
	logMarket.Info("executor matched to workload",
		telemetry.Str("workload", workload.Hex()),
		telemetry.Str("executor", e.ID.Address().Hex()),
		telemetry.Int("certs", len(certs)))
	return nil
}

// TrainLocal fetches every granted dataset from the storage node, opens
// it inside the executor's trust domain and runs the training phase in
// the enclave, producing the local model share.
func (e *Executor) TrainLocal(workload identity.Address) error {
	auths := e.assignments[workload]
	if len(auths) == 0 {
		return errors.New("market: nothing to train on")
	}
	spec, err := e.Market.WorkloadSpecOf(workload)
	if err != nil {
		return err
	}
	enclave, err := e.enclaveFor(workload, spec)
	if err != nil {
		return err
	}
	wid := WorkloadIDFor(workload)
	height := e.Market.Height()
	enc := contract.NewEncoder().String("train").Uint64(uint64(len(auths)))
	var totalBytes int64
	for _, a := range auths {
		ct, err := e.Node.Release(&a.Grant, e.ID.Address(), wid, height)
		if err != nil {
			return fmt.Errorf("market: fetch data %s: %w", a.Grant.DataID.Short(), err)
		}
		pt, err := a.Grant.Open(ct)
		if err != nil {
			return fmt.Errorf("market: open data %s: %w", a.Grant.DataID.Short(), err)
		}
		totalBytes += int64(len(pt))
		enc.Address(a.Cert.Provider).Blob(pt)
	}
	res, err := enclave.Call(enc.Bytes(), totalBytes)
	if err != nil {
		return err
	}
	out := res.Output
	if e.PoisonLocal {
		if out, err = poisonTrainOutput(out, spec); err != nil {
			return err
		}
	}
	e.locals[workload] = out
	return nil
}

// poisonTrainOutput rewrites a train-phase output with a sign-flipped,
// 1e6-scaled model: structurally valid, numerically hostile.
func poisonTrainOutput(raw []byte, spec *Spec) ([]byte, error) {
	params, err := DecodeTrainerParams(spec.Params)
	if err != nil {
		return nil, err
	}
	d := contract.NewDecoder(raw)
	modelBlob, err := d.Blob()
	if err != nil {
		return nil, err
	}
	model, err := decodeLinearModel(modelBlob, params.Lambda)
	if err != nil {
		return nil, err
	}
	for i := range model.W {
		model.W[i] *= -1e6
	}
	model.Bias *= -1e6
	rest := raw[len(contract.NewEncoder().Blob(modelBlob).Bytes()):]
	return append(contract.NewEncoder().Blob(encodeLinearModel(model)).Bytes(), rest...), nil
}

// LocalShare returns the executor's train-phase output for exchange
// with peer executors.
func (e *Executor) LocalShare(workload identity.Address) ([]byte, error) {
	out, ok := e.locals[workload]
	if !ok {
		return nil, errors.New("market: local training has not run")
	}
	return out, nil
}

// Aggregate merges all executors' local shares inside the enclave
// (identically on every executor), stores the final result payload and
// submits the attested result hash and contribution scores on-chain.
func (e *Executor) Aggregate(workload identity.Address, shares [][]byte) error {
	spec, err := e.Market.WorkloadSpecOf(workload)
	if err != nil {
		return err
	}
	enclave, err := e.enclaveFor(workload, spec)
	if err != nil {
		return err
	}
	order, err := e.providerOrder(workload)
	if err != nil {
		return err
	}
	enc := contract.NewEncoder().String("aggregate").Uint64(uint64(len(shares)))
	var ws int64
	for _, s := range shares {
		enc.Blob(s)
		ws += int64(len(s))
	}
	enc.Uint64(uint64(len(order)))
	for _, p := range order {
		enc.Address(p)
	}
	res, err := enclave.Call(enc.Bytes(), ws)
	if err != nil {
		return err
	}
	payload := res.Output
	if e.TamperResult {
		// Corrupt the final model blob: flip one byte in the middle. The
		// payload stays structurally valid; only the governance layer's
		// cross-executor consistency check can catch the fraud.
		payload = append([]byte(nil), payload...)
		payload[len(payload)/2] ^= 0xff
	}
	e.results[workload] = payload

	d := contract.NewDecoder(payload)
	if _, err := d.Blob(); err != nil { // model blob
		return err
	}
	scoresRaw, err := d.Blob()
	if err != nil {
		return err
	}
	resultHash := ResultHash(payload)
	wid := WorkloadIDFor(workload)
	quote := enclave.Quote(ResultReport(wid, resultHash, crypto.HashBytes(scoresRaw)))
	quoteRaw, err := json.Marshal(quote)
	if err != nil {
		return err
	}
	args := contract.NewEncoder().Digest(resultHash).Blob(scoresRaw).Blob(quoteRaw).Bytes()
	_, err = MustSucceed(e.Market.SendAndSeal(e.ID, workload, 0,
		contract.CallData("submitResult", args)))
	return err
}

// providerOrder reads the contract's provider registration order, the
// order in which contribution scores must be submitted.
func (e *Executor) providerOrder(workload identity.Address) ([]identity.Address, error) {
	raw, err := e.Market.View(e.ID.Address(), workload, "progress", nil)
	if err != nil {
		return nil, err
	}
	d := contract.NewDecoder(raw)
	pc, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	out := make([]identity.Address, 0, pc)
	for i := uint64(0); i < pc; i++ {
		raw, err := e.Market.View(e.ID.Address(), workload, "providerAt",
			contract.NewEncoder().Uint64(i).Bytes())
		if err != nil {
			return nil, err
		}
		addr, err := contract.NewDecoder(raw).Address()
		if err != nil {
			return nil, err
		}
		out = append(out, addr)
	}
	return out, nil
}

// RunWorkloadExecution drives the execution phase across a set of
// registered executors: local training, share exchange, and identical
// in-enclave aggregation on every executor (the peer-to-peer result
// computation of Fig. 2). It returns the first executor's result
// payload.
func RunWorkloadExecution(workload identity.Address, executors []*Executor) ([]byte, error) {
	if len(executors) == 0 {
		return nil, errors.New("market: no executors")
	}
	span := telemetry.StartSpan("workload.execute", executors[0].Market.lifecycleCtx(workload))
	defer span.End()
	timer := mStageExecute.Time()
	defer timer.Stop()
	for _, e := range executors {
		train := telemetry.StartSpan("executor.train", span.Context())
		train.SetAttr("executor", e.ID.Address().Hex())
		err := e.TrainLocal(workload)
		ExecutorHeartbeat.Beat()
		train.End()
		if err != nil {
			return nil, fmt.Errorf("market: executor %s train: %w", e.ID.Address().Short(), err)
		}
	}
	shares := make([][]byte, 0, len(executors))
	for _, e := range executors {
		s, err := e.LocalShare(workload)
		if err != nil {
			return nil, err
		}
		shares = append(shares, s)
	}
	for _, e := range executors {
		agg := telemetry.StartSpan("executor.aggregate", span.Context())
		agg.SetAttr("executor", e.ID.Address().Hex())
		err := e.Aggregate(workload, shares)
		ExecutorHeartbeat.Beat()
		agg.End()
		if err != nil {
			return nil, fmt.Errorf("market: executor %s aggregate: %w", e.ID.Address().Short(), err)
		}
	}
	return executors[0].results[workload], nil
}
