package market

import (
	"errors"
	"sync"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// TestSealBlockEvictsPoisonOvergasTx pins the poison-tx fix end to end:
// a transaction whose intrinsic gas exceeds the block gas limit can
// never seal, and before the fix it wedged SealBlock forever — the
// halving loop stopped at batch size one and the transaction was never
// evicted, so every subsequent seal rebuilt a batch starting with it
// and failed identically. The chain must instead evict it and keep
// sealing the healthy backlog.
func TestSealBlockEvictsPoisonOvergasTx(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(99, "poison")
	ids := make([]*identity.Identity, 3)
	alloc := map[identity.Address]uint64{}
	for i := range ids {
		ids[i] = identity.New("acct", rng.Fork("id"))
		alloc[ids[i].Address()] = 1_000_000
	}
	m, err := New(Config{Seed: 99, GenesisAlloc: alloc, BlockGasLimit: 200_000})
	if err != nil {
		t.Fatal(err)
	}

	// 16kB of call data: intrinsic gas 21000 + 16*16384 = 283144, over
	// the 200k block limit — unsealable no matter how batches are cut.
	poison := m.SignedTx(ids[0], ids[1].Address(), 1, make([]byte, 16384))
	if err := m.Submit(poison); err != nil {
		t.Fatal(err)
	}
	healthy := []*ledger.Transaction{
		m.SignedTx(ids[1], ids[2].Address(), 5, nil),
		m.SignedTx(ids[2], ids[1].Address(), 7, nil),
	}
	for _, tx := range healthy {
		if err := m.Submit(tx); err != nil {
			t.Fatal(err)
		}
	}

	block, err := m.SealBlock()
	if err != nil {
		t.Fatalf("seal wedged on poison tx: %v", err)
	}
	if len(block.Txs) != len(healthy) {
		t.Fatalf("sealed %d txs, want the %d healthy ones", len(block.Txs), len(healthy))
	}
	if m.Pool.Contains(poison.Hash()) {
		t.Fatal("poison tx still pending after seal")
	}
	if _, ok := m.Chain.Receipt(poison.Hash()); ok {
		t.Fatal("poison tx must not execute")
	}

	// The chain has recovered: later traffic seals normally.
	follow := m.SignedTx(ids[0], ids[2].Address(), 3, nil)
	if err := m.Submit(follow); err != nil {
		t.Fatal(err)
	}
	block, err = m.SealBlock()
	if err != nil {
		t.Fatalf("post-eviction seal failed: %v", err)
	}
	if len(block.Txs) != 1 || block.Txs[0].Hash() != follow.Hash() {
		t.Fatal("follow-up tx did not seal after poison eviction")
	}
}

// TestConcurrentParallelImportSubmitSealRace stress-tests the parallel
// executor's concurrency contract under the race detector: a sealing
// node runs every block through the optimistic scheduler while API
// producers admit transactions through the lock-free Pool.Add fast
// path, unlocked readers walk the sharded state, and a follower node
// imports every sealed block — its import re-executes blocks through
// its own parallel scheduler concurrently with the sealer's. The two
// replicas must converge to the same root.
func TestConcurrentParallelImportSubmitSealRace(t *testing.T) {
	const (
		producers   = 6
		txsPerActor = 50
	)
	rng := crypto.NewDRBGFromUint64(7777, "par-race")
	authority := identity.New("authority", rng.Fork("authority"))
	sink := identity.New("sink", rng.Fork("sink"))
	senders := make([]*identity.Identity, producers)
	alloc := map[identity.Address]uint64{sink.Address(): 1}
	for i := range senders {
		senders[i] = identity.New("sender", rng.Fork("sender"))
		alloc[senders[i].Address()] = 1_000_000
	}
	cfg := Config{
		Seed:             7777,
		GenesisAlloc:     alloc,
		Authorities:      []*identity.Identity{authority},
		ExecWorkers:      8, // explicit: GOMAXPROCS may be 1 in CI
		ParallelMinBatch: 1, // route even tiny blocks through the scheduler
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same deterministic config ⇒ the follower rebuilds the identical
	// setup chain (registry and deed deploys included) and can import
	// the sealer's blocks from there.
	follower, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.Head().Hash() != follower.Chain.Head().Hash() {
		t.Fatal("fixture: sealer and follower diverge before the race")
	}

	var mu sync.Mutex // the API server's serialization of Market methods
	blocks := make(chan *ledger.Block, 4096)
	done := make(chan struct{})
	var producersWG, helpersWG sync.WaitGroup

	for i := 0; i < producers; i++ {
		producersWG.Add(1)
		go func(id *identity.Identity) {
			defer producersWG.Done()
			base := m.Chain.State().Nonce(id.Address())
			for n := 0; n < txsPerActor; n++ {
				tx := ledger.SignTx(id, sink.Address(), 1, base+uint64(n), m.DefaultGasLimit, nil)
				for {
					if err := m.Pool.Add(tx); err == nil {
						break
					} else if !errors.Is(err, ledger.ErrMempoolFull) {
						t.Errorf("add: %v", err)
						return
					}
					mu.Lock()
					err := m.Submit(tx)
					mu.Unlock()
					if err == nil {
						break
					} else if !errors.Is(err, ledger.ErrMempoolFull) {
						t.Errorf("submit: %v", err)
						return
					}
				}
			}
		}(senders[i])
	}

	// Sealer: every non-empty block runs the parallel scheduler; each
	// sealed block streams to the follower.
	helpersWG.Add(1)
	go func() {
		defer helpersWG.Done()
		defer close(blocks)
		for {
			mu.Lock()
			block, err := m.SealBlockAt(m.Timestamp() + 1)
			if err != nil {
				t.Errorf("seal: %v", err)
				mu.Unlock()
				return
			}
			empty := m.Pool.Len() == 0
			mu.Unlock()
			// Empty blocks ship too: the follower needs the full parent
			// chain to import.
			blocks <- block
			select {
			case <-done:
				if empty {
					return
				}
			default:
			}
		}
	}()

	// Follower: parallel-imports the sealed stream concurrently with the
	// sealer's own parallel execution.
	helpersWG.Add(1)
	go func() {
		defer helpersWG.Done()
		for block := range blocks {
			if err := follower.Chain.ImportBlock(block); err != nil {
				t.Errorf("import height %d: %v", block.Header.Height, err)
				return
			}
		}
	}()

	// Readers: concurrent sharded-state reads against live execution —
	// explicitly allowed by the state's concurrency contract.
	for i := 0; i < 2; i++ {
		helpersWG.Add(1)
		go func() {
			defer helpersWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				st := m.Chain.State()
				st.Balance(sink.Address())
				st.Nonce(senders[0].Address())
				m.Pool.Len()
			}
		}()
	}

	producersWG.Wait()
	total := uint64(producers * txsPerActor)
	for {
		mu.Lock()
		delivered := m.Chain.State().Balance(sink.Address()) - 1
		mu.Unlock()
		if delivered == total {
			break
		}
	}
	close(done)
	helpersWG.Wait()

	if sealed, imported := m.Chain.State().Root(), follower.Chain.State().Root(); sealed != imported {
		t.Fatalf("follower diverged: sealer root %s, follower %s", sealed.Short(), imported.Short())
	}
	for i, id := range senders {
		if got := m.Chain.State().Nonce(id.Address()); got != uint64(txsPerActor) {
			t.Errorf("sender %d: nonce %d, want %d", i, got, txsPerActor)
		}
	}
}
