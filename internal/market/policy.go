package market

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/policy"
)

// PolicyDenialError is returned when a usage-control policy denies an
// operation at any enforcement layer. The embedded record carries the
// stable reason code, violated clause and layer; the same record was
// emitted on-chain as a PolicyDecision event.
type PolicyDenialError struct {
	Record policy.DecisionRecord
}

// Error implements error.
func (e *PolicyDenialError) Error() string {
	return fmt.Sprintf("market: policy denied %s of dataset %s at %s layer: %s (clause %s)",
		e.Record.Class, e.Record.DataID.Short(), e.Record.Layer, e.Record.Code, e.Record.Clause)
}

// denialFromRecords converts an enforcePolicy result into a typed error
// when the batch contains a denial.
func denialFromRecords(recs []policy.DecisionRecord) error {
	if d := policy.FirstDenial(recs); d != nil {
		mPolicyDenied.Inc()
		return &PolicyDenialError{Record: *d}
	}
	return nil
}

// enforcePolicies sends an on-chain enforcePolicy transaction from the
// given identity, decoding the resulting decision batch. Every decision
// for a policy-bearing dataset lands in the chain event log.
func (m *Market) enforcePolicies(from *identity.Identity, layer, class, purpose string,
	agg uint64, ids []crypto.Digest) ([]policy.DecisionRecord, error) {

	rcpt, err := MustSucceed(m.SendAndSeal(from, m.Registry, 0,
		EnforcePolicyData(layer, class, purpose, agg, ids...)))
	if err != nil {
		return nil, fmt.Errorf("market: policy enforcement: %w", err)
	}
	recs, err := policy.DecodeDecisionRecords(rcpt.Return)
	if err != nil {
		return nil, fmt.Errorf("market: policy enforcement: %w", err)
	}
	return recs, nil
}

// PolicyOf reads a dataset's usage-control policy from the registry;
// nil means no policy is attached (fully permissive).
func (m *Market) PolicyOf(dataID crypto.Digest) (*policy.Policy, error) {
	raw, err := m.View(identity.ZeroAddress, m.Registry, "policyOf",
		contract.NewEncoder().Digest(dataID).Bytes())
	if err != nil {
		return nil, err
	}
	blob, err := contract.NewDecoder(raw).Blob()
	if err != nil {
		return nil, err
	}
	if len(blob) == 0 {
		return nil, nil
	}
	return policy.Decode(blob)
}

// PolicyUses reads how many admissions have consumed the dataset.
func (m *Market) PolicyUses(dataID crypto.Digest) (uint64, error) {
	raw, err := m.View(identity.ZeroAddress, m.Registry, "policyUses",
		contract.NewEncoder().Digest(dataID).Bytes())
	if err != nil {
		return 0, err
	}
	return contract.NewDecoder(raw).Uint64()
}

// EvalPolicy runs the registry's pure policy evaluation view: no event,
// no consumption.
func (m *Market) EvalPolicy(dataID crypto.Digest, layer, class, purpose string, agg uint64) (policy.DecisionRecord, error) {
	raw, err := m.View(identity.ZeroAddress, m.Registry, "evalPolicy",
		contract.NewEncoder().Digest(dataID).
			String(layer).String(class).String(purpose).Uint64(agg).Bytes())
	if err != nil {
		return policy.DecisionRecord{}, err
	}
	rec, err := policy.DecodeDecisionRecord(raw)
	if err != nil {
		return policy.DecisionRecord{}, err
	}
	return *rec, nil
}

// PolicyCodeOf reads a dataset's deployed policy bytecode artifact;
// empty means no program is deployed.
func (m *Market) PolicyCodeOf(dataID crypto.Digest) ([]byte, error) {
	raw, err := m.View(identity.ZeroAddress, m.Registry, "policyCodeOf",
		contract.NewEncoder().Digest(dataID).Bytes())
	if err != nil {
		return nil, err
	}
	return contract.NewDecoder(raw).Blob()
}

// anyPolicyBound reports whether any of the datasets has a policy —
// declarative or deployed bytecode — attached. The fast pre-check that
// lets policy-free flows skip the on-chain enforcement transaction
// entirely.
func (m *Market) anyPolicyBound(ids []crypto.Digest) (bool, error) {
	for _, id := range ids {
		pol, err := m.PolicyOf(id)
		if err != nil {
			return false, err
		}
		if pol != nil {
			return true, nil
		}
		code, err := m.PolicyCodeOf(id)
		if err != nil {
			return false, err
		}
		if len(code) > 0 {
			return true, nil
		}
	}
	return false, nil
}

// DatasetInfo is one registry dataset entry with its usage-control
// state, as surfaced by the /v1/datasets API.
type DatasetInfo struct {
	ID       crypto.Digest
	Owner    identity.Address
	MetaHash crypto.Digest
	Policy   *policy.Policy // nil when none attached
	CodeSize int            // size of the deployed policy bytecode artifact (0 = none)
	Uses     uint64
}

// DatasetIDs lists every registered dataset ID in sorted (hex) order —
// the stable order the paginated API walks.
func (m *Market) DatasetIDs() ([]crypto.Digest, error) {
	keys := m.Chain.State().StorageKeys(m.Registry, "data/")
	out := make([]crypto.Digest, 0, len(keys))
	for _, k := range keys {
		id, err := crypto.DigestFromHex(k[len("data/"):])
		if err != nil {
			return nil, fmt.Errorf("market: corrupt dataset key %q: %w", k, err)
		}
		out = append(out, id)
	}
	return out, nil
}

// DatasetInfoOf assembles a dataset's registry entry; the boolean is
// false when the dataset is not registered.
func (m *Market) DatasetInfoOf(dataID crypto.Digest) (DatasetInfo, bool, error) {
	st := m.Chain.State()
	ownerRaw := st.GetStorage(m.Registry, "data/"+dataID.Hex())
	if len(ownerRaw) != identity.AddressSize {
		return DatasetInfo{}, false, nil
	}
	info := DatasetInfo{ID: dataID}
	copy(info.Owner[:], ownerRaw)
	copy(info.MetaHash[:], st.GetStorage(m.Registry, "datameta/"+dataID.Hex()))
	var err error
	if info.Policy, err = m.PolicyOf(dataID); err != nil {
		return DatasetInfo{}, false, err
	}
	info.CodeSize = len(st.GetStorage(m.Registry, "polcode/"+dataID.Hex()))
	if info.Uses, err = m.PolicyUses(dataID); err != nil {
		return DatasetInfo{}, false, err
	}
	return info, true, nil
}

// VerifyPolicySettlements checks the "no settled workload violates its
// dataset's policy" invariant against a chain's flat event log: every
// dataset contributed to a workload that later finalized must — if a
// policy was in force at contribution time — have a logged, allowed
// admission-layer decision naming that workload, and that decision must
// precede the contribution. Returns human-readable violations.
func VerifyPolicySettlements(events []ledger.Event) []string {
	var violations []string
	hasPolicy := make(map[crypto.Digest]bool)
	// admitted[workload][dataID] — an allowed admission decision was
	// logged for this (workload, dataset) pair.
	admitted := make(map[identity.Address]map[crypto.Digest]bool)
	type contribution struct {
		dataID  crypto.Digest
		guarded bool // policy was in force when contributed
		allowed bool // an admission allow preceded the contribution
	}
	contribs := make(map[identity.Address][]contribution)

	for i, ev := range events {
		switch ev.Topic {
		case policy.EvPolicySet, EvPolicyCodeDeployed:
			// A deployed policy program guards the dataset exactly like a
			// declarative policy; both event payloads share one layout.
			dataID, _, _, err := policy.DecodePolicySet(ev.Data)
			if err != nil {
				violations = append(violations, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			hasPolicy[dataID] = true

		case policy.EvPolicyDecision:
			rec, err := policy.DecodeDecisionRecord(ev.Data)
			if err != nil {
				violations = append(violations, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			if rec.Layer == policy.LayerAdmission && rec.Allowed() {
				if admitted[rec.Subject] == nil {
					admitted[rec.Subject] = make(map[crypto.Digest]bool)
				}
				admitted[rec.Subject][rec.DataID] = true
			}

		case EvDataContributed:
			// Emitted by the workload contract itself, so ev.Contract is
			// the workload address — the admission decision's Subject.
			d := contract.NewDecoder(ev.Data)
			dataID, err := d.Digest()
			if err != nil {
				violations = append(violations, fmt.Sprintf("event %d: %v", i, err))
				continue
			}
			contribs[ev.Contract] = append(contribs[ev.Contract], contribution{
				dataID:  dataID,
				guarded: hasPolicy[dataID],
				allowed: admitted[ev.Contract][dataID],
			})

		case EvWorkloadFinalized:
			for _, c := range contribs[ev.Contract] {
				if c.guarded && !c.allowed {
					violations = append(violations, fmt.Sprintf(
						"workload %s settled with dataset %s but no allowed admission decision precedes its contribution",
						ev.Contract.Short(), c.dataID.Short()))
				}
			}
		}
	}
	return violations
}
