package market

import (
	"encoding/json"
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/policy"
	"pds2/internal/tee"
)

// WorkloadCodeName is the code name of the per-workload contract. A
// separate instance is deployed for each workload (§III-A: "a separate
// smart contract instance is deployed for managing the lifetime of each
// workload and validate all of its steps").
const WorkloadCodeName = "pds2/workload"

// GasSigVerify is the extra gas charged per signature or quote
// verification inside governance contracts, mirroring Ethereum
// precompile pricing.
const GasSigVerify uint64 = 3_000

// Workload contract events, the on-chain audit trail of Fig. 2.
const (
	EvExecutorRegistered = "ExecutorRegistered"
	EvDataContributed    = "DataContributed"
	EvWorkloadStarted    = "WorkloadStarted"
	EvResultSubmitted    = "ResultSubmitted"
	EvWorkloadDisputed   = "WorkloadDisputed"
	EvRewardPaid         = "RewardPaid"
	EvWorkloadFinalized  = "WorkloadFinalized"
	EvWorkloadCancelled  = "WorkloadCancelled"
)

// WorkloadContract validates every step of one workload's lifecycle:
// executor registration backed by attestation quotes and provider
// participation certificates, start-condition checking, consistent
// result acceptance, reward distribution and expiry refunds.
//
// Storage layout:
//
//	spec                — encoded Spec
//	consumer            — deployer address
//	budget              — escrowed reward amount (also the contract balance)
//	state               — WorkloadState
//	exec/<addr>         — 1 when the executor is registered
//	execlist/<seq>      — executor addresses in registration order
//	execcount
//	prov/<addr>         — number of items contributed by the provider
//	provlist/<seq>      — provider addresses in first-contribution order
//	provcount
//	items               — total contributed items
//	cert/<certID>       — 1 when a participation certificate was consumed
//	data/<dataID>       — 1 when a dataset was already contributed
//	result/<addr>       — the executor's submitted result hash
//	resultcount
//	resulthash          — the accepted result hash (first submission)
//	scores              — encoded contribution scores from the enclave
type WorkloadContract struct{}

// Init escrows the attached value as the reward budget and stores the
// validated spec.
func (WorkloadContract) Init(ctx *contract.Context, args []byte) error {
	spec, err := DecodeSpec(args)
	if err != nil {
		return contract.Revertf("workload init: %v", err)
	}
	if err := spec.Validate(); err != nil {
		return contract.Revertf("workload init: %v", err)
	}
	if spec.ExpiryHeight <= ctx.Height {
		return contract.Revertf("workload init: expiry %d not after current height %d", spec.ExpiryHeight, ctx.Height)
	}
	if err := ctx.Set("spec", args); err != nil {
		return err
	}
	if err := ctx.Set("consumer", ctx.Caller[:]); err != nil {
		return err
	}
	if !spec.RewardToken.IsZero() {
		// ERC-20 mode: the budget is pulled in a separate "fund" call
		// once the consumer has approved this contract.
		if ctx.Value != 0 {
			return contract.Revertf("workload init: token-denominated workloads take no native value")
		}
		if err := ctx.SetUint64("budget", spec.TokenBudget); err != nil {
			return err
		}
		return ctx.SetUint64("state", uint64(StateFunding))
	}
	if ctx.Value == 0 {
		return contract.Revertf("workload init: no reward budget attached")
	}
	if err := ctx.SetUint64("budget", ctx.Value); err != nil {
		return err
	}
	return ctx.SetUint64("state", uint64(StateOpen))
}

// Call implements contract.Contract.
func (w WorkloadContract) Call(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	dec := contract.NewDecoder(args)
	switch method {
	case "fund":
		return w.fund(ctx)
	case "registerExecution":
		return w.registerExecution(ctx, dec)
	case "start":
		return w.start(ctx)
	case "submitResult":
		return w.submitResult(ctx, dec)
	case "finalize":
		return w.finalize(ctx)
	case "cancel":
		return w.cancel(ctx)
	case "state":
		st, err := ctx.GetUint64("state")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(st).Bytes(), nil
	case "spec":
		return ctx.Get("spec")
	case "result":
		raw, err := ctx.Get("resulthash")
		if err != nil {
			return nil, err
		}
		var h crypto.Digest
		copy(h[:], raw)
		scores, err := ctx.Get("scores")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Digest(h).Blob(scores).Bytes(), nil
	case "contributionOf":
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("contributionOf: %v", err)
		}
		n, err := ctx.GetUint64("prov/" + addr.Hex())
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(n).Bytes(), nil
	case "providerAt":
		idx, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("providerAt: %v", err)
		}
		raw, err := ctx.Get(fmt.Sprintf("provlist/%016d", idx))
		if err != nil {
			return nil, err
		}
		if len(raw) != identity.AddressSize {
			return nil, contract.Revertf("providerAt: index %d out of range", idx)
		}
		var addr identity.Address
		copy(addr[:], raw)
		return contract.NewEncoder().Address(addr).Bytes(), nil
	case "progress":
		// → (providerCount, items, execCount, resultCount)
		pc, err := ctx.GetUint64("provcount")
		if err != nil {
			return nil, err
		}
		items, err := ctx.GetUint64("items")
		if err != nil {
			return nil, err
		}
		ec, err := ctx.GetUint64("execcount")
		if err != nil {
			return nil, err
		}
		rc, err := ctx.GetUint64("resultcount")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(pc).Uint64(items).Uint64(ec).Uint64(rc).Bytes(), nil
	default:
		return nil, fmt.Errorf("%w: workload.%s", contract.ErrUnknownMethod, method)
	}
}

// loadSpec reads and decodes the stored spec.
func (WorkloadContract) loadSpec(ctx *contract.Context) (*Spec, error) {
	raw, err := ctx.Get("spec")
	if err != nil {
		return nil, err
	}
	spec, err := DecodeSpec(raw)
	if err != nil {
		return nil, contract.Revertf("corrupt spec: %v", err)
	}
	return spec, nil
}

func (WorkloadContract) requireState(ctx *contract.Context, want WorkloadState) error {
	st, err := ctx.GetUint64("state")
	if err != nil {
		return err
	}
	if WorkloadState(st) != want {
		return contract.Revertf("workload is %v, expected %v", WorkloadState(st), want)
	}
	return nil
}

// fund pulls the ERC-20 budget into escrow (Funding → Open). The
// consumer must have approved this contract for the full TokenBudget.
func (w WorkloadContract) fund(ctx *contract.Context) ([]byte, error) {
	if err := w.requireState(ctx, StateFunding); err != nil {
		return nil, err
	}
	consumerRaw, err := ctx.Get("consumer")
	if err != nil {
		return nil, err
	}
	if string(consumerRaw) != string(ctx.Caller[:]) {
		return nil, contract.Revertf("fund: only the consumer can fund")
	}
	spec, err := w.loadSpec(ctx)
	if err != nil {
		return nil, err
	}
	args := contract.NewEncoder().
		Address(ctx.Caller).Address(ctx.Self).Uint64(spec.TokenBudget).Bytes()
	if _, err := ctx.CallContract(spec.RewardToken, "transferFrom", args, 0); err != nil {
		return nil, contract.Revertf("fund: escrow pull failed: %v", err)
	}
	if err := ctx.SetUint64("state", uint64(StateOpen)); err != nil {
		return nil, err
	}
	return nil, ctx.Emit("WorkloadFunded", contract.NewEncoder().
		Address(spec.RewardToken).Uint64(spec.TokenBudget).Bytes())
}

// pay moves reward value to an account in the workload's denomination.
func (w WorkloadContract) pay(ctx *contract.Context, spec *Spec, to identity.Address, amount uint64) error {
	if spec.RewardToken.IsZero() {
		return ctx.Transfer(to, amount)
	}
	args := contract.NewEncoder().Address(to).Uint64(amount).Bytes()
	_, err := ctx.CallContract(spec.RewardToken, "transfer", args, 0)
	return err
}

// registerExecution validates an executor's attestation quote and its
// providers' participation certificates, recording the contributions
// (the Fig. 2 "register participation + certificates" step).
// Args: (quote blob, certs blob) — both JSON.
func (w WorkloadContract) registerExecution(ctx *contract.Context, dec *contract.Decoder) ([]byte, error) {
	if err := w.requireState(ctx, StateOpen); err != nil {
		return nil, err
	}
	spec, err := w.loadSpec(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Height > spec.ExpiryHeight {
		return nil, contract.Revertf("workload expired at height %d", spec.ExpiryHeight)
	}
	quoteRaw, err := dec.Blob()
	if err != nil {
		return nil, contract.Revertf("registerExecution: %v", err)
	}
	certsRaw, err := dec.Blob()
	if err != nil {
		return nil, contract.Revertf("registerExecution: %v", err)
	}

	already, err := ctx.Get("exec/" + ctx.Caller.Hex())
	if err != nil {
		return nil, err
	}
	if len(already) > 0 {
		return nil, contract.Revertf("executor %s already registered", ctx.Caller.Short())
	}

	// Verify the attestation quote: right authority, right code, bound to
	// this workload and this executor.
	wid := WorkloadIDFor(ctx.Self)
	var quote tee.Quote
	if err := json.Unmarshal(quoteRaw, &quote); err != nil {
		return nil, contract.Revertf("registerExecution: bad quote: %v", err)
	}
	if err := ctx.UseGas(2 * GasSigVerify); err != nil {
		return nil, err
	}
	if err := tee.VerifyQuote(spec.QAPub, quote, spec.Measurement); err != nil {
		return nil, contract.Revertf("registerExecution: %v", err)
	}
	if quote.ReportData != RegistrationReport(wid, ctx.Caller) {
		return nil, contract.Revertf("registerExecution: quote not bound to this registration")
	}

	var certs []identity.ParticipationCert
	if err := json.Unmarshal(certsRaw, &certs); err != nil {
		return nil, contract.Revertf("registerExecution: bad certificates: %v", err)
	}
	if len(certs) == 0 {
		return nil, contract.Revertf("registerExecution: no participation certificates")
	}

	// Admission-layer usage control: before any registration state
	// commits, every contributed dataset's policy is enforced through
	// the registry, which logs one PolicyDecision event per
	// policy-bearing dataset and consumes one invocation each on an
	// all-allow batch. A denial must NOT revert — reverting would erase
	// the decision log — so the registration is abandoned with the
	// encoded decisions as the return value and no state change.
	if !spec.Registry.IsZero() {
		itemsBefore, err := ctx.GetUint64("items")
		if err != nil {
			return nil, err
		}
		ids := make([]crypto.Digest, len(certs))
		for i, cert := range certs {
			ids[i] = cert.DataRef
		}
		agg := itemsBefore + uint64(len(certs))
		args := enforcePolicyArgs(policy.LayerAdmission, spec.ComputationClass(), spec.Purpose, agg, ids...)
		ret, err := ctx.CallContract(spec.Registry, "enforcePolicy", args, 0)
		if err != nil {
			return nil, contract.Revertf("registerExecution: policy enforcement: %v", err)
		}
		recs, err := policy.DecodeDecisionRecords(ret)
		if err != nil {
			return nil, contract.Revertf("registerExecution: policy enforcement: %v", err)
		}
		if policy.FirstDenial(recs) != nil {
			return ret, nil // admission denied: decisions logged, nothing registered
		}
	}

	for i, cert := range certs {
		if err := ctx.UseGas(GasSigVerify); err != nil {
			return nil, err
		}
		if err := cert.Verify(wid, ctx.Caller, ctx.Height); err != nil {
			return nil, contract.Revertf("registerExecution: certificate %d: %v", i, err)
		}
		certID := cert.ID()
		used, err := ctx.Get("cert/" + certID.Hex())
		if err != nil {
			return nil, err
		}
		if len(used) > 0 {
			return nil, contract.Revertf("registerExecution: certificate %d already consumed", i)
		}
		dataSeen, err := ctx.Get("data/" + cert.DataRef.Hex())
		if err != nil {
			return nil, err
		}
		if len(dataSeen) > 0 {
			return nil, contract.Revertf("registerExecution: data %s already contributed", cert.DataRef.Short())
		}
		if err := ctx.Set("cert/"+certID.Hex(), []byte{1}); err != nil {
			return nil, err
		}
		if err := ctx.Set("data/"+cert.DataRef.Hex(), []byte{1}); err != nil {
			return nil, err
		}
		// Track the provider's contribution count and ordering.
		cnt, err := ctx.GetUint64("prov/" + cert.Provider.Hex())
		if err != nil {
			return nil, err
		}
		if cnt == 0 {
			pc, err := ctx.GetUint64("provcount")
			if err != nil {
				return nil, err
			}
			if err := ctx.Set(fmt.Sprintf("provlist/%016d", pc), cert.Provider[:]); err != nil {
				return nil, err
			}
			if err := ctx.SetUint64("provcount", pc+1); err != nil {
				return nil, err
			}
		}
		if err := ctx.SetUint64("prov/"+cert.Provider.Hex(), cnt+1); err != nil {
			return nil, err
		}
		items, err := ctx.GetUint64("items")
		if err != nil {
			return nil, err
		}
		if err := ctx.SetUint64("items", items+1); err != nil {
			return nil, err
		}
		if err := ctx.Emit(EvDataContributed, contract.NewEncoder().
			Digest(cert.DataRef).Address(cert.Provider).Address(ctx.Caller).Bytes()); err != nil {
			return nil, err
		}
	}

	ec, err := ctx.GetUint64("execcount")
	if err != nil {
		return nil, err
	}
	if err := ctx.Set(fmt.Sprintf("execlist/%016d", ec), ctx.Caller[:]); err != nil {
		return nil, err
	}
	if err := ctx.SetUint64("execcount", ec+1); err != nil {
		return nil, err
	}
	if err := ctx.Set("exec/"+ctx.Caller.Hex(), []byte{1}); err != nil {
		return nil, err
	}
	return nil, ctx.Emit(EvExecutorRegistered, contract.NewEncoder().
		Address(ctx.Caller).Uint64(uint64(len(certs))).Bytes())
}

// start transitions Open → Running once the consumer's conditions hold
// (the Fig. 2 "conditions met → instruct executors" step). Anyone may
// call it; the contract is the arbiter.
func (w WorkloadContract) start(ctx *contract.Context) ([]byte, error) {
	if err := w.requireState(ctx, StateOpen); err != nil {
		return nil, err
	}
	spec, err := w.loadSpec(ctx)
	if err != nil {
		return nil, err
	}
	pc, err := ctx.GetUint64("provcount")
	if err != nil {
		return nil, err
	}
	items, err := ctx.GetUint64("items")
	if err != nil {
		return nil, err
	}
	ec, err := ctx.GetUint64("execcount")
	if err != nil {
		return nil, err
	}
	if pc < spec.MinProviders || items < spec.MinItems || ec == 0 {
		return nil, contract.Revertf("conditions not met: providers %d/%d, items %d/%d, executors %d",
			pc, spec.MinProviders, items, spec.MinItems, ec)
	}
	if err := ctx.SetUint64("state", uint64(StateRunning)); err != nil {
		return nil, err
	}
	return nil, ctx.Emit(EvWorkloadStarted, contract.NewEncoder().
		Uint64(pc).Uint64(items).Uint64(ec).Bytes())
}

// submitResult accepts an executor's attested result. The first
// submission fixes the expected result hash; any later conflicting
// submission marks the workload Disputed and refunds the consumer —
// tamper-evident aggregation (§II-E).
// Args: (resultHash digest, scores blob, quote blob).
func (w WorkloadContract) submitResult(ctx *contract.Context, dec *contract.Decoder) ([]byte, error) {
	if err := w.requireState(ctx, StateRunning); err != nil {
		return nil, err
	}
	resultHash, err := dec.Digest()
	if err != nil {
		return nil, contract.Revertf("submitResult: %v", err)
	}
	scoresRaw, err := dec.Blob()
	if err != nil {
		return nil, contract.Revertf("submitResult: %v", err)
	}
	quoteRaw, err := dec.Blob()
	if err != nil {
		return nil, contract.Revertf("submitResult: %v", err)
	}
	registered, err := ctx.Get("exec/" + ctx.Caller.Hex())
	if err != nil {
		return nil, err
	}
	if len(registered) == 0 {
		return nil, contract.Revertf("submitResult: %s is not a registered executor", ctx.Caller.Short())
	}
	prev, err := ctx.Get("result/" + ctx.Caller.Hex())
	if err != nil {
		return nil, err
	}
	if len(prev) > 0 {
		return nil, contract.Revertf("submitResult: executor already submitted")
	}

	spec, err := w.loadSpec(ctx)
	if err != nil {
		return nil, err
	}
	wid := WorkloadIDFor(ctx.Self)
	var quote tee.Quote
	if err := json.Unmarshal(quoteRaw, &quote); err != nil {
		return nil, contract.Revertf("submitResult: bad quote: %v", err)
	}
	if err := ctx.UseGas(2 * GasSigVerify); err != nil {
		return nil, err
	}
	if err := tee.VerifyQuote(spec.QAPub, quote, spec.Measurement); err != nil {
		return nil, contract.Revertf("submitResult: %v", err)
	}
	if quote.ReportData != ResultReport(wid, resultHash, crypto.HashBytes(scoresRaw)) {
		return nil, contract.Revertf("submitResult: quote not bound to this result")
	}

	accepted, err := ctx.Get("resulthash")
	if err != nil {
		return nil, err
	}
	if len(accepted) == 0 {
		// First submission: validate and store the scores.
		if err := w.validateScores(ctx, scoresRaw); err != nil {
			return nil, err
		}
		if err := ctx.Set("resulthash", resultHash[:]); err != nil {
			return nil, err
		}
		if err := ctx.Set("scores", scoresRaw); err != nil {
			return nil, err
		}
	} else {
		var acceptedHash crypto.Digest
		copy(acceptedHash[:], accepted)
		if acceptedHash != resultHash {
			// Conflicting attested results: dispute and refund.
			if err := ctx.SetUint64("state", uint64(StateDisputed)); err != nil {
				return nil, err
			}
			if err := w.refundConsumer(ctx); err != nil {
				return nil, err
			}
			return nil, ctx.Emit(EvWorkloadDisputed, contract.NewEncoder().
				Address(ctx.Caller).Digest(resultHash).Digest(acceptedHash).Bytes())
		}
	}
	if err := ctx.Set("result/"+ctx.Caller.Hex(), resultHash[:]); err != nil {
		return nil, err
	}
	rc, err := ctx.GetUint64("resultcount")
	if err != nil {
		return nil, err
	}
	if err := ctx.SetUint64("resultcount", rc+1); err != nil {
		return nil, err
	}
	return nil, ctx.Emit(EvResultSubmitted, contract.NewEncoder().
		Address(ctx.Caller).Digest(resultHash).Bytes())
}

// validateScores checks that the submitted contribution scores cover
// exactly the registered providers, in registered order.
func (WorkloadContract) validateScores(ctx *contract.Context, raw []byte) error {
	scores, err := DecodeScores(raw)
	if err != nil {
		return contract.Revertf("submitResult: bad scores: %v", err)
	}
	pc, err := ctx.GetUint64("provcount")
	if err != nil {
		return err
	}
	if uint64(len(scores)) != pc {
		return contract.Revertf("submitResult: %d scores for %d providers", len(scores), pc)
	}
	for i, s := range scores {
		raw, err := ctx.Get(fmt.Sprintf("provlist/%016d", i))
		if err != nil {
			return err
		}
		var want identity.Address
		copy(want[:], raw)
		if s.Provider != want {
			return contract.Revertf("submitResult: score %d names %s, expected %s", i, s.Provider.Short(), want.Short())
		}
	}
	return nil
}

// finalize distributes rewards once every registered executor has
// submitted a matching result: the executor fee is split equally among
// executors and the remainder is allocated to providers pro rata by the
// enclave-attested contribution scores.
func (w WorkloadContract) finalize(ctx *contract.Context) ([]byte, error) {
	if err := w.requireState(ctx, StateRunning); err != nil {
		return nil, err
	}
	ec, err := ctx.GetUint64("execcount")
	if err != nil {
		return nil, err
	}
	rc, err := ctx.GetUint64("resultcount")
	if err != nil {
		return nil, err
	}
	if rc < ec {
		return nil, contract.Revertf("finalize: %d of %d executors have submitted", rc, ec)
	}
	spec, err := w.loadSpec(ctx)
	if err != nil {
		return nil, err
	}
	budget, err := ctx.GetUint64("budget")
	if err != nil {
		return nil, err
	}
	fee := budget * spec.ExecutorFeeBps / 10_000
	providerPool := budget - fee

	// Pay executors the fee, split equally (remainder to the first).
	if ec > 0 && fee > 0 {
		each := fee / ec
		rem := fee - each*ec
		for i := uint64(0); i < ec; i++ {
			raw, err := ctx.Get(fmt.Sprintf("execlist/%016d", i))
			if err != nil {
				return nil, err
			}
			var addr identity.Address
			copy(addr[:], raw)
			amount := each
			if i == 0 {
				amount += rem
			}
			if amount == 0 {
				continue
			}
			if err := w.pay(ctx, spec, addr, amount); err != nil {
				return nil, err
			}
			if err := ctx.Emit(EvRewardPaid, contract.NewEncoder().
				Address(addr).Uint64(amount).String("executor-fee").Bytes()); err != nil {
				return nil, err
			}
		}
	}

	// Pay providers pro rata by attested scores.
	scoresRaw, err := ctx.Get("scores")
	if err != nil {
		return nil, err
	}
	scores, err := DecodeScores(scoresRaw)
	if err != nil {
		return nil, contract.Revertf("finalize: corrupt scores: %v", err)
	}
	var total uint64
	for _, s := range scores {
		total += s.Score
	}
	var paid uint64
	for i, s := range scores {
		var amount uint64
		if total > 0 {
			amount = providerPool * s.Score / total
		} else {
			amount = providerPool / uint64(len(scores))
		}
		if i == len(scores)-1 {
			amount = providerPool - paid // rounding residue to the last
		}
		paid += amount
		if amount == 0 {
			continue
		}
		if err := w.pay(ctx, spec, s.Provider, amount); err != nil {
			return nil, err
		}
		if err := ctx.Emit(EvRewardPaid, contract.NewEncoder().
			Address(s.Provider).Uint64(amount).String("provider-reward").Bytes()); err != nil {
			return nil, err
		}
	}

	if err := ctx.SetUint64("state", uint64(StateComplete)); err != nil {
		return nil, err
	}
	resultRaw, err := ctx.Get("resulthash")
	if err != nil {
		return nil, err
	}
	var resultHash crypto.Digest
	copy(resultHash[:], resultRaw)
	return nil, ctx.Emit(EvWorkloadFinalized, contract.NewEncoder().
		Digest(resultHash).Uint64(budget).Bytes())
}

// cancel refunds the consumer after expiry when the workload never
// completed.
func (w WorkloadContract) cancel(ctx *contract.Context) ([]byte, error) {
	st, err := ctx.GetUint64("state")
	if err != nil {
		return nil, err
	}
	if WorkloadState(st) != StateOpen && WorkloadState(st) != StateRunning {
		return nil, contract.Revertf("cancel: workload is %v", WorkloadState(st))
	}
	spec, err := w.loadSpec(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Height <= spec.ExpiryHeight {
		return nil, contract.Revertf("cancel: not expired until height %d", spec.ExpiryHeight)
	}
	if err := ctx.SetUint64("state", uint64(StateCancelled)); err != nil {
		return nil, err
	}
	if err := w.refundConsumer(ctx); err != nil {
		return nil, err
	}
	return nil, ctx.Emit(EvWorkloadCancelled, nil)
}

func (w WorkloadContract) refundConsumer(ctx *contract.Context) error {
	raw, err := ctx.Get("consumer")
	if err != nil {
		return err
	}
	var consumer identity.Address
	copy(consumer[:], raw)
	spec, err := w.loadSpec(ctx)
	if err != nil {
		return err
	}
	if spec.RewardToken.IsZero() {
		balance, err := ctx.BalanceOf(ctx.Self)
		if err != nil {
			return err
		}
		if balance == 0 {
			return nil
		}
		return ctx.Transfer(consumer, balance)
	}
	// Token mode: no payouts happen before finalize, so the full escrow
	// (if funding completed) goes back. An unfunded workload refunds
	// nothing.
	st, err := ctx.GetUint64("state")
	if err != nil {
		return err
	}
	if WorkloadState(st) == StateFunding {
		return nil
	}
	budget, err := ctx.GetUint64("budget")
	if err != nil {
		return err
	}
	return w.pay(ctx, spec, consumer, budget)
}

// Score is one provider's attested contribution weight.
type Score struct {
	Provider identity.Address
	Score    uint64
}

// EncodeScores serializes contribution scores with the contract ABI.
func EncodeScores(scores []Score) []byte {
	enc := contract.NewEncoder().Uint64(uint64(len(scores)))
	for _, s := range scores {
		enc.Address(s.Provider).Uint64(s.Score)
	}
	return enc.Bytes()
}

// DecodeScores inverts EncodeScores.
func DecodeScores(raw []byte) ([]Score, error) {
	d := contract.NewDecoder(raw)
	n, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("market: absurd score count %d", n)
	}
	out := make([]Score, 0, n)
	for i := uint64(0); i < n; i++ {
		var s Score
		if s.Provider, err = d.Address(); err != nil {
			return nil, err
		}
		if s.Score, err = d.Uint64(); err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return out, nil
}
