package market

import (
	"errors"
	"strings"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// TestWorkloadMatchSettleEdgeCases drives the workload state machine
// into every mismatched transition the lifecycle can reach and checks
// the revert reasons, table-driven: the governance layer must refuse,
// not wedge, when actors call out of order.
func TestWorkloadMatchSettleEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		// call receives a freshly submitted (native-denominated, open)
		// workload and returns the receipt of the offending transaction.
		call    func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt
		wantErr string
	}{
		{
			name: "start with no registered executors",
			call: func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt {
				rcpt, err := w.m.SendAndSeal(w.consumer.ID, workload, 0, contract.CallData("start", nil))
				if err != nil {
					t.Fatal(err)
				}
				return rcpt
			},
			wantErr: "conditions not met",
		},
		{
			name: "fund a native-denominated workload",
			call: func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt {
				rcpt, err := w.m.SendAndSeal(w.consumer.ID, workload, 0, contract.CallData("fund", nil))
				if err != nil {
					t.Fatal(err)
				}
				return rcpt
			},
			wantErr: "expected funding",
		},
		{
			name: "finalize before execution",
			call: func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt {
				rcpt, err := w.m.SendAndSeal(w.consumer.ID, workload, 0, contract.CallData("finalize", nil))
				if err != nil {
					t.Fatal(err)
				}
				return rcpt
			},
			wantErr: "expected running",
		},
		{
			name: "cancel before expiry",
			call: func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt {
				rcpt, err := w.m.SendAndSeal(w.consumer.ID, workload, 0, contract.CallData("cancel", nil))
				if err != nil {
					t.Fatal(err)
				}
				return rcpt
			},
			wantErr: "not expired until",
		},
		{
			name: "register execution with garbage quote",
			call: func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt {
				args := contract.NewEncoder().Blob([]byte("not json")).Blob([]byte("[]")).Bytes()
				rcpt, err := w.m.SendAndSeal(w.executors[0].ID, workload, 0,
					contract.CallData("registerExecution", args))
				if err != nil {
					t.Fatal(err)
				}
				return rcpt
			},
			wantErr: "registerExecution",
		},
		{
			name: "submit result from unregistered executor",
			call: func(t *testing.T, w *testWorld, workload identity.Address) *ledger.Receipt {
				rcpt, err := w.m.SendAndSeal(w.executors[0].ID, workload, 0,
					contract.CallData("submitResult", contract.NewEncoder().
						Digest(crypto.HashString("bogus")).Blob(nil).Blob([]byte("{}")).Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				return rcpt
			},
			wantErr: "expected running",
		},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newTestWorld(t, uint64(100+i), 1, 1)
			workload, err := w.consumer.SubmitWorkload(w.spec, 50_000)
			if err != nil {
				t.Fatal(err)
			}
			rcpt := tc.call(t, w, workload)
			if rcpt.Succeeded() {
				t.Fatalf("offending call succeeded; want revert containing %q", tc.wantErr)
			}
			if !strings.Contains(rcpt.Err, tc.wantErr) {
				t.Fatalf("revert %q does not contain %q", rcpt.Err, tc.wantErr)
			}
			// A refused transition must leave the workload in its original
			// open state, still able to proceed normally.
			st, err := w.m.WorkloadStateOf(workload)
			if err != nil {
				t.Fatal(err)
			}
			if st != StateOpen {
				t.Fatalf("workload state %v after refused call, want %v", st, StateOpen)
			}
		})
	}
}

// TestRegisterExecutionAfterExpiry burns blocks past the workload's
// expiry height and checks registration is refused.
func TestRegisterExecutionAfterExpiry(t *testing.T) {
	w := newTestWorld(t, 200, 1, 1)
	w.spec.ExpiryHeight = w.m.Height() + 3
	workload, err := w.consumer.SubmitWorkload(w.spec, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	for w.m.Height() <= w.spec.ExpiryHeight {
		if _, err := MustSucceed(w.m.SendAndSeal(w.consumer.ID, w.providers[0].ID.Address(), 1, nil)); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := w.providers[0].EligibleData(w.spec)
	if err != nil || len(refs) == 0 {
		t.Fatalf("eligible data: %v (%d refs)", err, len(refs))
	}
	auths, err := w.providers[0].Authorize(workload, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight+100)
	if err != nil {
		t.Fatal(err)
	}
	w.executors[0].Accept(workload, auths)
	err = w.executors[0].Register(workload)
	if err == nil {
		t.Fatal("registration after expiry succeeded")
	}
	if !strings.Contains(err.Error(), "expired at height") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestMempoolOverflow exercises Submit's overflow handling with a tiny
// pool: non-includable (nonce-gapped) transactions clog it and cannot
// be pruned, so admission fails; once chain progress makes entries
// stale, Submit's prune-retry path reclaims the space transparently.
func TestMempoolOverflow(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(77, "mempool-overflow")
	authority := identity.New("authority", rng.Fork("authority"))
	alice := identity.New("alice", rng.Fork("alice"))
	bob := identity.New("bob", rng.Fork("bob"))
	const poolSize = 4
	m, err := New(Config{
		Seed: 77,
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000_000,
			bob.Address():   1_000_000,
		},
		Authorities: []*identity.Identity{authority},
		MempoolSize: poolSize,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Clog the pool with nonce-gapped transactions: not includable, not
	// stale, so Prune cannot evict them.
	base := m.Chain.State().Nonce(alice.Address())
	for i := 0; i < poolSize; i++ {
		gapped := ledger.SignTx(alice, bob.Address(), 1, base+10+uint64(i), m.DefaultGasLimit, nil)
		if err := m.Submit(gapped); err != nil {
			t.Fatalf("gapped tx %d: %v", i, err)
		}
	}
	if got := m.Pool.Len(); got != poolSize {
		t.Fatalf("pool len %d, want %d", got, poolSize)
	}
	live := m.SignedTx(bob, alice.Address(), 5, nil)
	if err := m.Submit(live); !errors.Is(err, ledger.ErrMempoolFull) {
		t.Fatalf("submit into clogged pool: %v, want ErrMempoolFull", err)
	}

	// Make the clog stale: include alice transactions at the real nonces
	// through a directly proposed block, so the gapped entries fall
	// behind the chain and become prunable.
	var include []*ledger.Transaction
	for i := uint64(0); i < 12; i++ {
		include = append(include, ledger.SignTx(alice, bob.Address(), 1, base+i, m.DefaultGasLimit, nil))
	}
	if _, err := m.Chain.ProposeBlock(authority, m.Timestamp()+1, include); err != nil {
		t.Fatal(err)
	}

	// Submit now succeeds via the prune-retry path: the stale entries are
	// evicted to make room.
	if err := m.Submit(live); err != nil {
		t.Fatalf("submit after staleness: %v", err)
	}
	if _, err := m.SealBlockAt(m.Timestamp() + 2); err != nil {
		t.Fatal(err)
	}
	rcpt, ok := m.Chain.Receipt(live.Hash())
	if !ok {
		t.Fatal("live tx not included after overflow recovery")
	}
	if !rcpt.Succeeded() {
		t.Fatalf("live tx failed: %s", rcpt.Err)
	}
}
