package market

import (
	"fmt"

	"pds2/internal/chainstore"
	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/tee"
	"pds2/internal/telemetry"
	"pds2/internal/token"
)

// NewRuntime builds a contract runtime with the full marketplace code
// registry — the applier any node or replica must run to validate (or
// re-validate) a market chain.
func NewRuntime() (*contract.Runtime, error) {
	return newRuntime(RegistryContract{})
}

// NewReferenceRuntime builds a runtime whose registry runs deployed
// policy programs on the tree-walking reference evaluator instead of
// the bytecode VM. Both engines share one host and one gas schedule, so
// replaying a VM-produced chain through this runtime must reproduce
// every root and receipt bit-for-bit — the replay harness uses it as
// the VM's differential oracle.
func NewReferenceRuntime() (*contract.Runtime, error) {
	return newRuntime(RegistryContract{RefInterp: true})
}

func newRuntime(reg RegistryContract) (*contract.Runtime, error) {
	rt := contract.NewRuntime()
	for name, code := range map[string]contract.Contract{
		RegistryCodeName:     reg,
		WorkloadCodeName:     WorkloadContract{},
		token.ERC20CodeName:  token.ERC20{},
		token.ERC721CodeName: token.ERC721{},
	} {
		if err := rt.RegisterCode(name, code); err != nil {
			return nil, err
		}
	}
	return rt, nil
}

// storeMeta is the runtime metadata a durable market persists next to
// the chain: the well-known contract addresses New deploys (needed to
// rebind without re-deriving them) and the seed, so a reopen with the
// wrong seed — which would derive different authority keys and be
// unable to seal — fails loudly instead of at the first block.
type storeMeta struct {
	Seed     uint64           `json:"seed"`
	Registry identity.Address `json:"registry"`
	Deeds    identity.Address `json:"deeds"`
}

// Store returns the durable chain store backing this market, or nil
// for an in-memory market.
func (m *Market) Store() *chainstore.Store { return m.store }

// Open builds a market backed by a durable chain store. A fresh store
// is initialised from cfg exactly like New (genesis, registry and deed
// deploys all land in the log); an existing store restores the chain
// from its newest snapshot plus the log tail, re-validating every tail
// block, and rebinds the contract addresses from the store metadata.
// Either way every subsequent seal or import is appended (fsynced)
// before the caller sees the receipt.
//
// cfg must match the store's provenance on reopen: the same Seed (the
// authority keys are derived from it) and, if set, the same
// BlockGasLimit as the persisted genesis.
func Open(cfg Config, store *chainstore.Store) (*Market, error) {
	if store == nil {
		return New(cfg)
	}
	if !store.HasGenesis() {
		m, err := New(cfg)
		if err != nil {
			return nil, err
		}
		if err := store.InitChain(m.Chain); err != nil {
			return nil, fmt.Errorf("market: init store: %w", err)
		}
		if err := store.PutMeta(storeMeta{Seed: cfg.Seed, Registry: m.Registry, Deeds: m.Deeds}); err != nil {
			return nil, fmt.Errorf("market: store meta: %w", err)
		}
		m.store = store
		return m, nil
	}

	var meta storeMeta
	if err := store.GetMeta(&meta); err != nil {
		return nil, fmt.Errorf("market: store has no runtime metadata: %w", err)
	}
	if meta.Seed != cfg.Seed {
		return nil, fmt.Errorf("market: store was created with seed %d, reopened with %d", meta.Seed, cfg.Seed)
	}

	rng := crypto.NewDRBGFromUint64(cfg.Seed, "market")
	rt, err := NewRuntime()
	if err != nil {
		return nil, err
	}
	authorities := cfg.Authorities
	if len(authorities) == 0 {
		// Same derivation as New: DRBG forks are keyed, not positional,
		// so the governor's key is reproducible from the seed alone.
		authorities = []*identity.Identity{identity.New("governor", rng.Fork("governor"))}
	}

	chain, err := store.OpenChain(rt)
	if err != nil {
		return nil, err
	}
	exp, err := store.ReadGenesis()
	if err != nil {
		return nil, err
	}
	if cfg.BlockGasLimit != 0 && cfg.BlockGasLimit != exp.BlockGasLimit {
		return nil, fmt.Errorf("market: store genesis has gas limit %d, config asks %d",
			exp.BlockGasLimit, cfg.BlockGasLimit)
	}
	for i, auth := range authorities {
		if i >= len(exp.Authorities) || exp.Authorities[i] != auth.Address() {
			return nil, fmt.Errorf("market: derived authority set does not match store genesis (wrong seed or authority config)")
		}
	}
	if len(authorities) != len(exp.Authorities) {
		return nil, fmt.Errorf("market: store genesis has %d authorities, config derives %d",
			len(exp.Authorities), len(authorities))
	}

	m := &Market{
		Chain:           chain,
		Runtime:         rt,
		Pool:            ledger.NewMempool(cfg.MempoolSize),
		QA:              tee.NewQuotingAuthority(rng.Fork("qa")),
		Registry:        meta.Registry,
		Deeds:           meta.Deeds,
		authorities:     authorities,
		rng:             rng,
		store:           store,
		DefaultGasLimit: 40_000_000,
		lifecycles:      make(map[identity.Address]*telemetry.ActiveSpan),
		timestamp:       chain.Head().Header.Timestamp,
	}
	return m, nil
}
