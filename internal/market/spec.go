// Package market is the core of PDS²: it wires the governance ledger,
// smart contracts, storage subsystem, TEE executors, reward schemes and
// decentralized learning into the five-role marketplace of Fig. 1 and
// drives workloads through the Fig. 2 lifecycle — submission, discovery,
// provider opt-in, executor registration with participation certificates,
// attested execution, decentralized aggregation, result publication and
// reward settlement, all audited on-chain.
package market

import (
	"crypto/ed25519"
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// WorkloadState is the lifecycle state machine of a workload contract.
type WorkloadState uint64

// Lifecycle states (Fig. 2). A workload is Open while providers and
// executors are joining, Running once the consumer's preconditions are
// met and the governance layer instructs executors to proceed, Complete
// when a consistent result was accepted and rewards were paid, Cancelled
// when it expired before its conditions were met, and Disputed when
// executors submitted conflicting results.
const (
	StateOpen WorkloadState = iota
	StateRunning
	StateComplete
	StateCancelled
	StateDisputed

	// StateFunding precedes Open for ERC-20-denominated workloads: the
	// contract waits for the consumer to approve and pull the token
	// budget into escrow (§III-A: fungible tokens "used to handle any
	// kind of rewards offered by the consumers").
	StateFunding
)

// String implements fmt.Stringer.
func (s WorkloadState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateRunning:
		return "running"
	case StateComplete:
		return "complete"
	case StateCancelled:
		return "cancelled"
	case StateDisputed:
		return "disputed"
	case StateFunding:
		return "funding"
	default:
		return fmt.Sprintf("WorkloadState(%d)", uint64(s))
	}
}

// Spec is the binding workload specification a consumer submits (§II-C):
// data preconditions, rewards, the workload definition and the start
// conditions.
type Spec struct {
	// Predicate is the semantic data requirement (§IV-C) providers'
	// storage subsystems evaluate against their metadata.
	Predicate string

	// MinProviders and MinItems are the start conditions: the number of
	// distinct providers and total data items that must have joined.
	MinProviders uint64
	MinItems     uint64

	// ExpiryHeight is the ledger height after which the workload can be
	// cancelled and the escrowed budget refunded.
	ExpiryHeight uint64

	// ExecutorFeeBps is the share of the budget paid to executors, in
	// basis points; the rest goes to data providers.
	ExecutorFeeBps uint64

	// Measurement is the expected enclave code measurement; executor
	// attestation quotes must match it.
	Measurement crypto.Digest

	// QAPub is the quoting authority's public key used to verify those
	// quotes.
	QAPub []byte

	// RewardToken, when non-zero, denominates rewards in that ERC-20
	// contract instead of the native token. The workload then deploys in
	// the Funding state and the consumer must approve TokenBudget to the
	// workload address and call "fund" before providers can join.
	RewardToken identity.Address

	// TokenBudget is the ERC-20 reward amount (ignored in native mode,
	// where the deploy transaction's value is the budget).
	TokenBudget uint64

	// Params is the opaque workload definition interpreted by the
	// enclave code (model dimensions, hyperparameters, …). The contract
	// treats it as data; its hash is part of the workload identity.
	Params []byte

	// Class is the computation class datasets' usage-control policies
	// whitelist ("train", "stats", …). Empty defaults to
	// DefaultComputationClass; see ComputationClass.
	Class string

	// Purpose is the consumer's declared purpose for the computation,
	// matched against dataset policies' consented purpose strings.
	Purpose string

	// Registry is the platform registry holding dataset policies. The
	// workload contract calls it at admission time to enforce each
	// contributed dataset's policy; Consumer.SubmitWorkload fills it in
	// automatically. Zero disables admission-layer policy enforcement
	// (pre-policy specs).
	Registry identity.Address
}

// DefaultComputationClass is the class assumed for specs that predate
// the Class field (every built-in workload is federated training).
const DefaultComputationClass = "train"

// ComputationClass returns the spec's computation class, defaulting to
// DefaultComputationClass when unset.
func (s *Spec) ComputationClass() string {
	if s.Class == "" {
		return DefaultComputationClass
	}
	return s.Class
}

// Validate checks structural sanity.
func (s *Spec) Validate() error {
	if s.Predicate == "" {
		return fmt.Errorf("market: spec has no data predicate")
	}
	if s.MinProviders == 0 {
		return fmt.Errorf("market: spec requires at least one provider")
	}
	if s.ExecutorFeeBps > 10_000 {
		return fmt.Errorf("market: executor fee %d bps exceeds 100%%", s.ExecutorFeeBps)
	}
	if len(s.QAPub) != ed25519.PublicKeySize {
		return fmt.Errorf("market: spec QA public key must be %d bytes", ed25519.PublicKeySize)
	}
	if s.Measurement.IsZero() {
		return fmt.Errorf("market: spec has no enclave measurement")
	}
	if !s.RewardToken.IsZero() && s.TokenBudget == 0 {
		return fmt.Errorf("market: token-denominated spec needs a TokenBudget")
	}
	return nil
}

// Encode serializes the spec with the contract ABI.
func (s *Spec) Encode() []byte {
	return contract.NewEncoder().
		String(s.Predicate).
		Uint64(s.MinProviders).
		Uint64(s.MinItems).
		Uint64(s.ExpiryHeight).
		Uint64(s.ExecutorFeeBps).
		Digest(s.Measurement).
		Blob(s.QAPub).
		Address(s.RewardToken).
		Uint64(s.TokenBudget).
		Blob(s.Params).
		String(s.Class).
		String(s.Purpose).
		Address(s.Registry).
		Bytes()
}

// DecodeSpec inverts Encode.
func DecodeSpec(b []byte) (*Spec, error) {
	d := contract.NewDecoder(b)
	var s Spec
	var err error
	if s.Predicate, err = d.String(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.MinProviders, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.MinItems, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.ExpiryHeight, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.ExecutorFeeBps, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.Measurement, err = d.Digest(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.QAPub, err = d.Blob(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.RewardToken, err = d.Address(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.TokenBudget, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.Params, err = d.Blob(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.Class, err = d.String(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.Purpose, err = d.String(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if s.Registry, err = d.Address(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("market: decode spec: %w", err)
	}
	return &s, nil
}

// WorkloadIDFor derives the digest under which a workload contract is
// known off-chain (in certificates, grants and quotes) from its on-chain
// address.
func WorkloadIDFor(addr identity.Address) crypto.Digest {
	return crypto.HashConcat([]byte("pds2/workload-id"), addr[:])
}

// RegistrationReport returns the attestation report data an executor's
// enclave binds when registering for a workload: proof that this
// specific enclave will serve this workload for this executor.
func RegistrationReport(workloadID crypto.Digest, executor identity.Address) crypto.Digest {
	return crypto.HashConcat([]byte("pds2/report/register"), workloadID[:], executor[:])
}

// ResultReport returns the attestation report data binding a result
// submission: the enclave certifies that it computed resultHash with
// the given contribution scores for this workload.
func ResultReport(workloadID, resultHash, scoresHash crypto.Digest) crypto.Digest {
	return crypto.HashConcat([]byte("pds2/report/result"), workloadID[:], resultHash[:], scoresHash[:])
}
