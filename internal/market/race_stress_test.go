package market

import (
	"errors"
	"sync"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
)

// TestConcurrentSubmitSealRace stress-tests the documented concurrency
// contract under the race detector: many producers push transactions
// through the lock-free Pool.Add fast path (falling back to the
// serialized Submit prune-retry on overflow) while a sealer thread —
// holding the same lock an API server would — seals blocks and prunes,
// racing the mempool's internal eviction against concurrent admission.
func TestConcurrentSubmitSealRace(t *testing.T) {
	const (
		producers   = 8
		txsPerActor = 40
		poolSize    = 64
	)
	rng := crypto.NewDRBGFromUint64(4242, "race-stress")
	authority := identity.New("authority", rng.Fork("authority"))
	senders := make([]*identity.Identity, producers)
	alloc := map[identity.Address]uint64{}
	sink := identity.New("sink", rng.Fork("sink"))
	for i := range senders {
		senders[i] = identity.New("sender", rng.Fork("sender"))
		alloc[senders[i].Address()] = 1_000_000
	}
	alloc[sink.Address()] = 1
	m, err := New(Config{
		Seed:         4242,
		GenesisAlloc: alloc,
		Authorities:  []*identity.Identity{authority},
		MempoolSize:  poolSize,
	})
	if err != nil {
		t.Fatal(err)
	}

	// mu serializes Market methods (Submit, SealBlockAt, Prune) exactly
	// as internal/api's server mutex does; Pool.Add stays lock-free.
	var mu sync.Mutex
	var wg sync.WaitGroup
	done := make(chan struct{})

	// Producers: each sender signs its own dense nonce sequence up
	// front (signing needs no chain state), then races admission.
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id *identity.Identity) {
			defer wg.Done()
			base := m.Chain.State().Nonce(id.Address())
			for n := 0; n < txsPerActor; n++ {
				tx := ledger.SignTx(id, sink.Address(), 1, base+uint64(n), m.DefaultGasLimit, nil)
				for {
					if err := m.Pool.Add(tx); err == nil {
						break
					} else if !errors.Is(err, ledger.ErrMempoolFull) {
						t.Errorf("add: %v", err)
						return
					}
					mu.Lock()
					err := m.Submit(tx)
					mu.Unlock()
					if err == nil {
						break
					} else if !errors.Is(err, ledger.ErrMempoolFull) {
						t.Errorf("submit: %v", err)
						return
					}
					// Pool genuinely full of includable txs: let the
					// sealer drain it and retry.
				}
			}
		}(senders[i])
	}

	// Sealer: drain the pool block by block until producers finish and
	// the pool is empty, interleaving prunes to race Add vs evict.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			mu.Lock()
			m.Pool.Prune(m.Chain.State())
			if _, err := m.SealBlockAt(m.Timestamp() + 1); err != nil {
				t.Errorf("seal: %v", err)
				mu.Unlock()
				return
			}
			empty := m.Pool.Len() == 0
			mu.Unlock()
			select {
			case <-done:
				if empty {
					return
				}
			default:
			}
		}
	}()

	// Readers: hammer the mempool's concurrent-safe read surface.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m.Pool.Len()
				m.Pool.NextNonce(senders[0].Address(), 0)
			}
		}()
	}

	producersDone := make(chan struct{})
	go func() {
		// Close done only after all producer goroutines finished; the
		// sealer then drains the remainder and exits.
		wg.Wait()
		close(producersDone)
	}()

	// Wait for producers by counting delivered transactions.
	total := uint64(producers * txsPerActor)
	for {
		mu.Lock()
		delivered := uint64(0)
		st := m.Chain.State()
		for _, id := range senders {
			delivered += st.Nonce(id.Address())
		}
		mu.Unlock()
		if delivered == total {
			close(done)
			break
		}
	}
	<-producersDone

	// Every transaction must have landed exactly once: final nonces are
	// dense and the sink holds one unit per transaction.
	for i, id := range senders {
		if got := m.Chain.State().Nonce(id.Address()); got != uint64(txsPerActor) {
			t.Errorf("sender %d: nonce %d, want %d", i, got, txsPerActor)
		}
	}
	if got := m.Chain.State().Balance(sink.Address()); got != 1+total {
		t.Errorf("sink balance %d, want %d", got, 1+total)
	}
}
