package market

import (
	"errors"
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/policy"
	"pds2/internal/semantic"
	"pds2/internal/vm"
)

// RegistryCodeName is the code name of the platform registry contract.
const RegistryCodeName = "pds2/registry"

// RegistryContract is the governance layer's directory (§III-A: the
// blockchain "is used for the registration of all actors … as well as
// the registration of datasets and workloads, by means of their
// hashes"). It records actor roles, dataset registrations (digest →
// owner) and the directory of workload contracts, emitting events that
// providers' storage subsystems watch to learn about new workloads.
//
// Storage layout:
//
//	owner               — the deploying governor (may wire the deeds NFT)
//	deeds               — ERC-721 contract minting data deeds (optional)
//	role/<role>/<addr>  — actor has role
//	data/<dataID>       — owner address of a registered dataset
//	datameta/<dataID>   — hash of the dataset's metadata document
//	policy/<dataID>     — encoded usage-control policy (absent = permissive)
//	polcode/<dataID>    — deployed policy bytecode artifact (overrides policy/)
//	polstate/<dataID>/… — state partition of the dataset's policy program
//	poluse/<dataID>     — admissions that have consumed the dataset
//	wl/<seq>            — workload contract address, in registration order
//	wlseq               — number of registered workloads
//	wlreg/<addr>        — reverse marker: address is a registered workload
type RegistryContract struct {
	// RefInterp selects the reference tree-walking evaluator instead of
	// the bytecode VM for deployed policy programs. Both engines share
	// one host and one gas charge schedule, so a RefInterp replica must
	// reproduce a VM chain bit-for-bit — the replay harness uses this as
	// its differential oracle.
	RefInterp bool
}

// GasPolicyEval is charged per dataset for a usage-control policy
// evaluation on top of the metered storage reads.
const GasPolicyEval = 500

// maxPolicyBatch bounds the datasets one enforcePolicy call may cover.
const maxPolicyBatch = 256

// Init implements contract.Contract; the registry has no constructor
// arguments. The deployer becomes the registry owner, able to wire the
// data-deeds NFT contract once.
func (RegistryContract) Init(ctx *contract.Context, args []byte) error {
	if len(args) != 0 {
		return contract.Revertf("registry takes no constructor arguments")
	}
	return ctx.Set("owner", ctx.Caller[:])
}

// Registry events.
const (
	EvActorRegistered    = "ActorRegistered"
	EvDataRegistered     = "DataRegistered"
	EvWorkloadRegistered = "WorkloadRegistered"

	// EvPolicyCodeDeployed carries (dataID digest, owner address,
	// artifact blob): a compiled policy program was bound to a dataset.
	// The payload layout matches EvPolicySet so audit tooling can decode
	// both with policy.DecodePolicySet.
	EvPolicyCodeDeployed = policy.EvPolicyCode
)

// Call implements contract.Contract.
func (r RegistryContract) Call(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	dec := contract.NewDecoder(args)
	switch method {
	case "registerActor":
		// (role string) — the caller registers itself under a role.
		role, err := dec.String()
		if err != nil {
			return nil, contract.Revertf("registerActor: %v", err)
		}
		switch identity.Role(role) {
		case identity.RoleConsumer, identity.RoleProvider, identity.RoleExecutor,
			identity.RoleStorage, identity.RoleGovernor, identity.RoleDevice:
		default:
			return nil, contract.Revertf("registerActor: unknown role %q", role)
		}
		if err := ctx.Set("role/"+role+"/"+ctx.Caller.Hex(), []byte{1}); err != nil {
			return nil, err
		}
		return nil, ctx.Emit(EvActorRegistered, contract.NewEncoder().
			Address(ctx.Caller).String(role).Bytes())

	case "hasRole":
		// (addr, role) → bool
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("hasRole: %v", err)
		}
		role, err := dec.String()
		if err != nil {
			return nil, contract.Revertf("hasRole: %v", err)
		}
		v, err := ctx.Get("role/" + role + "/" + addr.Hex())
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Bool(len(v) > 0).Bytes(), nil

	case "setDeeds":
		// (nftAddr) — owner-only, once: datasets registered from now on
		// are deeded as ERC-721 tokens (§III-A: NFTs "model data and
		// workload code in PDS²"). The registry must hold the NFT
		// contract's minter role.
		nft, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("setDeeds: %v", err)
		}
		owner, err := ctx.Get("owner")
		if err != nil {
			return nil, err
		}
		if string(owner) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("setDeeds: caller is not the registry owner")
		}
		existing, err := ctx.Get("deeds")
		if err != nil {
			return nil, err
		}
		if len(existing) > 0 {
			return nil, contract.Revertf("setDeeds: already wired")
		}
		exists, err := ctx.ContractExists(nft)
		if err != nil {
			return nil, err
		}
		if !exists {
			return nil, contract.Revertf("setDeeds: %s is not a contract", nft.Short())
		}
		return nil, ctx.Set("deeds", nft[:])

	case "deeds":
		raw, err := ctx.Get("deeds")
		if err != nil {
			return nil, err
		}
		var addr identity.Address
		copy(addr[:], raw)
		return contract.NewEncoder().Address(addr).Bytes(), nil

	case "registerData":
		// (dataID digest, metaHash digest) — caller claims ownership of a
		// dataset by content hash. First registration wins, which is what
		// prevents relisting someone else's published data.
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("registerData: %v", err)
		}
		metaHash, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("registerData: %v", err)
		}
		existing, err := ctx.Get("data/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		if len(existing) > 0 {
			return nil, contract.Revertf("registerData: %s already registered", dataID.Short())
		}
		if err := ctx.Set("data/"+dataID.Hex(), ctx.Caller[:]); err != nil {
			return nil, err
		}
		if err := ctx.Set("datameta/"+dataID.Hex(), metaHash[:]); err != nil {
			return nil, err
		}
		// Mint the ERC-721 deed to the registrant when the deeds
		// contract is wired.
		deedsRaw, err := ctx.Get("deeds")
		if err != nil {
			return nil, err
		}
		if len(deedsRaw) == identity.AddressSize {
			var nft identity.Address
			copy(nft[:], deedsRaw)
			mintArgs := contract.NewEncoder().
				Address(ctx.Caller).Digest(dataID).Blob(metaHash[:]).Bytes()
			if _, err := ctx.CallContract(nft, "mint", mintArgs, 0); err != nil {
				return nil, contract.Revertf("registerData: deed mint: %v", err)
			}
		}
		return nil, ctx.Emit(EvDataRegistered, contract.NewEncoder().
			Digest(dataID).Address(ctx.Caller).Bytes())

	case "dataOwner":
		// (dataID) → address (zero when unregistered)
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("dataOwner: %v", err)
		}
		raw, err := ctx.Get("data/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		var owner identity.Address
		copy(owner[:], raw)
		return contract.NewEncoder().Address(owner).Bytes(), nil

	case "registerWorkload":
		// (workloadAddr) — called by the consumer after deploying a
		// workload contract; adds it to the public directory.
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("registerWorkload: %v", err)
		}
		exists, err := ctx.ContractExists(addr)
		if err != nil {
			return nil, err
		}
		if !exists {
			return nil, contract.Revertf("registerWorkload: %s is not a contract", addr.Short())
		}
		seq, err := ctx.GetUint64("wlseq")
		if err != nil {
			return nil, err
		}
		if err := ctx.Set(fmt.Sprintf("wl/%016d", seq), addr[:]); err != nil {
			return nil, err
		}
		if err := ctx.SetUint64("wlseq", seq+1); err != nil {
			return nil, err
		}
		// Reverse marker: only registered workload contracts may run
		// admission-layer policy enforcement (which consumes invocations).
		if err := ctx.Set("wlreg/"+addr.Hex(), []byte{1}); err != nil {
			return nil, err
		}
		return nil, ctx.Emit(EvWorkloadRegistered, contract.NewEncoder().
			Address(addr).Digest(WorkloadIDFor(addr)).Bytes())

	case "workloadCount":
		seq, err := ctx.GetUint64("wlseq")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(seq).Bytes(), nil

	case "workloadAt":
		// (index) → address
		idx, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("workloadAt: %v", err)
		}
		raw, err := ctx.Get(fmt.Sprintf("wl/%016d", idx))
		if err != nil {
			return nil, err
		}
		if len(raw) != identity.AddressSize {
			return nil, contract.Revertf("workloadAt: index %d out of range", idx)
		}
		var addr identity.Address
		copy(addr[:], raw)
		return contract.NewEncoder().Address(addr).Bytes(), nil

	case "setPolicy":
		// (dataID digest, policy blob) — attach or replace the dataset's
		// usage-control policy. Only the registered owner may set it; the
		// mutation itself is a chain event so offline audit can replay
		// every decision against the policy in force at the time.
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("setPolicy: %v", err)
		}
		blob, err := dec.Blob()
		if err != nil {
			return nil, contract.Revertf("setPolicy: %v", err)
		}
		ownerRaw, err := ctx.Get("data/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		if len(ownerRaw) != identity.AddressSize || string(ownerRaw) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("setPolicy: caller does not own dataset %s", dataID.Short())
		}
		pol, err := policy.Decode(blob)
		if err != nil {
			return nil, contract.Revertf("setPolicy: %v", err)
		}
		if err := pol.Validate(); err != nil {
			return nil, contract.Revertf("setPolicy: %v", err)
		}
		if err := ctx.Set("policy/"+dataID.Hex(), blob); err != nil {
			return nil, err
		}
		return nil, ctx.Emit(policy.EvPolicySet, policy.EncodePolicySet(dataID, ctx.Caller, blob))

	case "deployPolicy":
		// (dataID digest, artifact blob) — bind a compiled policy
		// program to the dataset. The artifact must decode as a
		// pds2/bytecode/v1 container AND re-verify against its embedded
		// source — deployed code is auditable by construction, and the
		// reference-interpreter replica can re-execute it from source.
		// Deployed code takes precedence over a declarative policy.
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("deployPolicy: %v", err)
		}
		blob, err := dec.Blob()
		if err != nil {
			return nil, contract.Revertf("deployPolicy: %v", err)
		}
		ownerRaw, err := ctx.Get("data/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		if len(ownerRaw) != identity.AddressSize || string(ownerRaw) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("deployPolicy: caller does not own dataset %s", dataID.Short())
		}
		if err := ctx.UseGas(contract.GasVMDeploy); err != nil {
			return nil, err
		}
		mod, err := vm.Decode(blob)
		if err != nil {
			return nil, contract.Revertf("deployPolicy: %v", err)
		}
		if err := vm.VerifySource(mod); err != nil {
			return nil, contract.Revertf("deployPolicy: %v", err)
		}
		if err := ctx.Set("polcode/"+dataID.Hex(), blob); err != nil {
			return nil, err
		}
		return nil, ctx.Emit(EvPolicyCodeDeployed, policy.EncodePolicySet(dataID, ctx.Caller, blob))

	case "policyCodeOf":
		// (dataID) → deployed artifact blob (empty when none deployed)
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("policyCodeOf: %v", err)
		}
		raw, err := ctx.Get("polcode/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Blob(raw).Bytes(), nil

	case "policyOf":
		// (dataID) → encoded policy blob (empty when none attached)
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("policyOf: %v", err)
		}
		raw, err := ctx.Get("policy/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Blob(raw).Bytes(), nil

	case "policyUses":
		// (dataID) → number of admissions that consumed the dataset
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("policyUses: %v", err)
		}
		uses, err := ctx.GetUint64("poluse/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(uses).Bytes(), nil

	case "evalPolicy":
		// (dataID, layer, class, purpose, agg) → encoded DecisionRecord.
		// Pure view: no event, no consumption — the cheap pre-check
		// matchers and API clients use.
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("evalPolicy: %v", err)
		}
		layer, class, purpose, agg, err := decodePolicyQuery(dec)
		if err != nil {
			return nil, contract.Revertf("evalPolicy: %v", err)
		}
		rec, _, err := r.evalDatasetPolicy(ctx, dataID, layer, class, purpose, agg)
		if err != nil {
			return nil, err
		}
		return rec.Encode(), nil

	case "enforcePolicy":
		// (layer, class, purpose, agg, n, dataID…n) → encoded
		// []DecisionRecord. Evaluates every dataset's policy and logs one
		// PolicyDecision event per policy-bearing dataset. A denial does
		// NOT revert — reverting would discard the decision events — it
		// is returned to the caller, which must treat the batch as
		// failed. Denied batches log only the denials (the allows never
		// took effect); all-allow batches at the admission layer consume
		// one invocation per dataset, and only registered workload
		// contracts may run that layer.
		layer, class, purpose, agg, err := decodePolicyQuery(dec)
		if err != nil {
			return nil, contract.Revertf("enforcePolicy: %v", err)
		}
		n, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("enforcePolicy: %v", err)
		}
		if n == 0 || n > maxPolicyBatch {
			return nil, contract.Revertf("enforcePolicy: batch of %d datasets out of range", n)
		}
		if layer == policy.LayerAdmission {
			mark, err := ctx.Get("wlreg/" + ctx.Caller.Hex())
			if err != nil {
				return nil, err
			}
			if len(mark) == 0 {
				return nil, contract.Revertf("enforcePolicy: admission layer is reserved for registered workload contracts")
			}
		}
		recs := make([]policy.DecisionRecord, 0, n)
		hasPol := make([]bool, 0, n)
		seen := make(map[crypto.Digest]bool, n)
		for i := uint64(0); i < n; i++ {
			dataID, err := dec.Digest()
			if err != nil {
				return nil, contract.Revertf("enforcePolicy: %v", err)
			}
			if seen[dataID] {
				return nil, contract.Revertf("enforcePolicy: duplicate dataset %s in batch", dataID.Short())
			}
			seen[dataID] = true
			rec, bound, err := r.evalDatasetPolicy(ctx, dataID, layer, class, purpose, agg)
			if err != nil {
				return nil, err
			}
			recs = append(recs, rec)
			hasPol = append(hasPol, bound)
		}
		denied := policy.FirstDenial(recs) != nil
		for i := range recs {
			if !hasPol[i] {
				continue // no policy attached: nothing to log or consume
			}
			if denied && recs[i].Allowed() {
				continue // batch failed as a unit; these allows never happened
			}
			if err := ctx.Emit(policy.EvPolicyDecision, recs[i].Encode()); err != nil {
				return nil, err
			}
			if !denied && layer == policy.LayerAdmission {
				if err := ctx.SetUint64("poluse/"+recs[i].DataID.Hex(), recs[i].Invocations+1); err != nil {
					return nil, err
				}
			}
		}
		return policy.EncodeDecisionRecords(recs), nil

	default:
		return nil, fmt.Errorf("%w: registry.%s", contract.ErrUnknownMethod, method)
	}
}

// decodePolicyQuery decodes the (layer, class, purpose, agg) tail shared
// by evalPolicy and enforcePolicy, validating the layer name.
func decodePolicyQuery(dec *contract.Decoder) (layer, class, purpose string, agg uint64, err error) {
	if layer, err = dec.String(); err != nil {
		return "", "", "", 0, err
	}
	switch layer {
	case policy.LayerMatch, policy.LayerAdmission, policy.LayerEnclave:
	default:
		return "", "", "", 0, fmt.Errorf("unknown enforcement layer %q", layer)
	}
	if class, err = dec.String(); err != nil {
		return "", "", "", 0, err
	}
	if purpose, err = dec.String(); err != nil {
		return "", "", "", 0, err
	}
	if agg, err = dec.Uint64(); err != nil {
		return "", "", "", 0, err
	}
	return layer, class, purpose, agg, nil
}

// evalDatasetPolicy runs one usage-control evaluation against the
// dataset's stored policy and consumption counter. Deployed policy
// bytecode (polcode/) takes precedence over a declarative policy
// (policy/); both produce the same DecisionRecord shape, so callers and
// audit tooling cannot tell the engines apart. The second return
// reports whether the dataset has any policy attached (policy-less
// datasets are allowed without logging).
func (r RegistryContract) evalDatasetPolicy(ctx *contract.Context, dataID crypto.Digest,
	layer, class, purpose string, agg uint64) (policy.DecisionRecord, bool, error) {

	if err := ctx.UseGas(GasPolicyEval); err != nil {
		return policy.DecisionRecord{}, false, err
	}
	uses, err := ctx.GetUint64("poluse/" + dataID.Hex())
	if err != nil {
		return policy.DecisionRecord{}, false, err
	}
	rec := policy.DecisionRecord{
		DataID: dataID, Subject: ctx.Caller,
		Layer: layer, Class: class, Purpose: purpose,
		Aggregation: agg, Height: ctx.Height, Invocations: uses,
	}

	code, err := ctx.Get("polcode/" + dataID.Hex())
	if err != nil {
		return policy.DecisionRecord{}, false, err
	}
	if len(code) > 0 {
		verdict, err := r.runPolicyProgram(ctx, dataID, code, semantic.Request{
			Layer: layer, Class: class, Purpose: purpose,
			Aggregation: agg, Height: ctx.Height, Invocations: uses,
		})
		if err != nil {
			return policy.DecisionRecord{}, false, err
		}
		rec.Code, rec.Clause = verdict.Code, verdict.Clause
		return rec, true, nil
	}

	raw, err := ctx.Get("policy/" + dataID.Hex())
	if err != nil {
		return policy.DecisionRecord{}, false, err
	}
	var pol *policy.Policy
	if len(raw) > 0 {
		if pol, err = policy.Decode(raw); err != nil {
			return policy.DecisionRecord{}, false, contract.Revertf("policy for %s is corrupt: %v", dataID.Short(), err)
		}
	}
	dec := policy.Evaluate(pol, policy.Request{
		Layer: layer, Class: class, Purpose: purpose,
		Aggregation: agg, Height: ctx.Height, Invocations: uses,
	})
	rec.Code, rec.Clause = dec.Code, dec.Clause
	return rec, len(raw) > 0, nil
}

// runPolicyProgram executes a deployed policy artifact on the bytecode
// VM (or, in a RefInterp replica, re-parses the embedded source and
// runs the tree-walking oracle — same host, same gas charges, same
// outcome by the vm package's differential guarantee). Program state
// lives under polstate/<dataID>/. Out-of-gas propagates unwrapped so
// the journal unwinds the transaction; any other program failure is a
// deterministic revert.
func (r RegistryContract) runPolicyProgram(ctx *contract.Context, dataID crypto.Digest,
	artifact []byte, req semantic.Request) (semantic.Verdict, error) {

	mod, err := vm.Decode(artifact)
	if err != nil {
		return semantic.Verdict{}, contract.Revertf("policy code for %s is corrupt: %v", dataID.Short(), err)
	}
	host := vm.NewContextHost(ctx, "polstate/"+dataID.Hex()+"/", req)
	var verdict semantic.Verdict
	if r.RefInterp {
		prog, perr := semantic.ParseProgram(mod.Source)
		if perr != nil {
			return semantic.Verdict{}, contract.Revertf("policy code for %s is corrupt: %v", dataID.Short(), perr)
		}
		verdict, err = semantic.RunProgram(prog, host)
	} else {
		verdict, err = vm.Execute(mod, host)
	}
	if err != nil {
		if errors.Is(err, contract.ErrOutOfGas) {
			return semantic.Verdict{}, err
		}
		return semantic.Verdict{}, contract.Revertf("policy program for %s: %v", dataID.Short(), err)
	}
	return verdict, nil
}

// Client-side helpers.

// RegisterActorData builds call data for registerActor.
func RegisterActorData(role identity.Role) []byte {
	return contract.CallData("registerActor", contract.NewEncoder().String(string(role)).Bytes())
}

// RegisterDataData builds call data for registerData.
func RegisterDataData(dataID, metaHash crypto.Digest) []byte {
	return contract.CallData("registerData", contract.NewEncoder().Digest(dataID).Digest(metaHash).Bytes())
}

// RegisterWorkloadData builds call data for registerWorkload.
func RegisterWorkloadData(addr identity.Address) []byte {
	return contract.CallData("registerWorkload", contract.NewEncoder().Address(addr).Bytes())
}

// SetPolicyData builds call data for setPolicy.
func SetPolicyData(dataID crypto.Digest, pol *policy.Policy) []byte {
	return contract.CallData("setPolicy", contract.NewEncoder().
		Digest(dataID).Blob(pol.Encode()).Bytes())
}

// DeployPolicyData builds call data for deployPolicy from an encoded
// bytecode artifact.
func DeployPolicyData(dataID crypto.Digest, artifact []byte) []byte {
	return contract.CallData("deployPolicy", contract.NewEncoder().
		Digest(dataID).Blob(artifact).Bytes())
}

// PolicyCodeOfData builds call data for the policyCodeOf view.
func PolicyCodeOfData(dataID crypto.Digest) []byte {
	return contract.CallData("policyCodeOf", contract.NewEncoder().Digest(dataID).Bytes())
}

// policyQueryArgs encodes the (layer, class, purpose, agg) tail shared
// by evalPolicy and enforcePolicy call data.
func policyQueryArgs(e *contract.Encoder, layer, class, purpose string, agg uint64) *contract.Encoder {
	return e.String(layer).String(class).String(purpose).Uint64(agg)
}

// EvalPolicyData builds call data for the evalPolicy view.
func EvalPolicyData(dataID crypto.Digest, layer, class, purpose string, agg uint64) []byte {
	e := contract.NewEncoder().Digest(dataID)
	return contract.CallData("evalPolicy", policyQueryArgs(e, layer, class, purpose, agg).Bytes())
}

// enforcePolicyArgs builds the raw argument encoding for enforcePolicy
// (shared by the client-side CallData wrapper and the workload
// contract's cross-contract admission call).
func enforcePolicyArgs(layer, class, purpose string, agg uint64, ids ...crypto.Digest) []byte {
	e := policyQueryArgs(contract.NewEncoder(), layer, class, purpose, agg)
	e.Uint64(uint64(len(ids)))
	for _, id := range ids {
		e.Digest(id)
	}
	return e.Bytes()
}

// EnforcePolicyData builds call data for enforcePolicy over a batch of
// datasets.
func EnforcePolicyData(layer, class, purpose string, agg uint64, ids ...crypto.Digest) []byte {
	return contract.CallData("enforcePolicy", enforcePolicyArgs(layer, class, purpose, agg, ids...))
}
