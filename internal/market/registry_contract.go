package market

import (
	"fmt"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// RegistryCodeName is the code name of the platform registry contract.
const RegistryCodeName = "pds2/registry"

// RegistryContract is the governance layer's directory (§III-A: the
// blockchain "is used for the registration of all actors … as well as
// the registration of datasets and workloads, by means of their
// hashes"). It records actor roles, dataset registrations (digest →
// owner) and the directory of workload contracts, emitting events that
// providers' storage subsystems watch to learn about new workloads.
//
// Storage layout:
//
//	owner               — the deploying governor (may wire the deeds NFT)
//	deeds               — ERC-721 contract minting data deeds (optional)
//	role/<role>/<addr>  — actor has role
//	data/<dataID>       — owner address of a registered dataset
//	datameta/<dataID>   — hash of the dataset's metadata document
//	wl/<seq>            — workload contract address, in registration order
//	wlseq               — number of registered workloads
type RegistryContract struct{}

// Init implements contract.Contract; the registry has no constructor
// arguments. The deployer becomes the registry owner, able to wire the
// data-deeds NFT contract once.
func (RegistryContract) Init(ctx *contract.Context, args []byte) error {
	if len(args) != 0 {
		return contract.Revertf("registry takes no constructor arguments")
	}
	return ctx.Set("owner", ctx.Caller[:])
}

// Registry events.
const (
	EvActorRegistered    = "ActorRegistered"
	EvDataRegistered     = "DataRegistered"
	EvWorkloadRegistered = "WorkloadRegistered"
)

// Call implements contract.Contract.
func (RegistryContract) Call(ctx *contract.Context, method string, args []byte) ([]byte, error) {
	dec := contract.NewDecoder(args)
	switch method {
	case "registerActor":
		// (role string) — the caller registers itself under a role.
		role, err := dec.String()
		if err != nil {
			return nil, contract.Revertf("registerActor: %v", err)
		}
		switch identity.Role(role) {
		case identity.RoleConsumer, identity.RoleProvider, identity.RoleExecutor,
			identity.RoleStorage, identity.RoleGovernor, identity.RoleDevice:
		default:
			return nil, contract.Revertf("registerActor: unknown role %q", role)
		}
		if err := ctx.Set("role/"+role+"/"+ctx.Caller.Hex(), []byte{1}); err != nil {
			return nil, err
		}
		return nil, ctx.Emit(EvActorRegistered, contract.NewEncoder().
			Address(ctx.Caller).String(role).Bytes())

	case "hasRole":
		// (addr, role) → bool
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("hasRole: %v", err)
		}
		role, err := dec.String()
		if err != nil {
			return nil, contract.Revertf("hasRole: %v", err)
		}
		v, err := ctx.Get("role/" + role + "/" + addr.Hex())
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Bool(len(v) > 0).Bytes(), nil

	case "setDeeds":
		// (nftAddr) — owner-only, once: datasets registered from now on
		// are deeded as ERC-721 tokens (§III-A: NFTs "model data and
		// workload code in PDS²"). The registry must hold the NFT
		// contract's minter role.
		nft, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("setDeeds: %v", err)
		}
		owner, err := ctx.Get("owner")
		if err != nil {
			return nil, err
		}
		if string(owner) != string(ctx.Caller[:]) {
			return nil, contract.Revertf("setDeeds: caller is not the registry owner")
		}
		existing, err := ctx.Get("deeds")
		if err != nil {
			return nil, err
		}
		if len(existing) > 0 {
			return nil, contract.Revertf("setDeeds: already wired")
		}
		exists, err := ctx.ContractExists(nft)
		if err != nil {
			return nil, err
		}
		if !exists {
			return nil, contract.Revertf("setDeeds: %s is not a contract", nft.Short())
		}
		return nil, ctx.Set("deeds", nft[:])

	case "deeds":
		raw, err := ctx.Get("deeds")
		if err != nil {
			return nil, err
		}
		var addr identity.Address
		copy(addr[:], raw)
		return contract.NewEncoder().Address(addr).Bytes(), nil

	case "registerData":
		// (dataID digest, metaHash digest) — caller claims ownership of a
		// dataset by content hash. First registration wins, which is what
		// prevents relisting someone else's published data.
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("registerData: %v", err)
		}
		metaHash, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("registerData: %v", err)
		}
		existing, err := ctx.Get("data/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		if len(existing) > 0 {
			return nil, contract.Revertf("registerData: %s already registered", dataID.Short())
		}
		if err := ctx.Set("data/"+dataID.Hex(), ctx.Caller[:]); err != nil {
			return nil, err
		}
		if err := ctx.Set("datameta/"+dataID.Hex(), metaHash[:]); err != nil {
			return nil, err
		}
		// Mint the ERC-721 deed to the registrant when the deeds
		// contract is wired.
		deedsRaw, err := ctx.Get("deeds")
		if err != nil {
			return nil, err
		}
		if len(deedsRaw) == identity.AddressSize {
			var nft identity.Address
			copy(nft[:], deedsRaw)
			mintArgs := contract.NewEncoder().
				Address(ctx.Caller).Digest(dataID).Blob(metaHash[:]).Bytes()
			if _, err := ctx.CallContract(nft, "mint", mintArgs, 0); err != nil {
				return nil, contract.Revertf("registerData: deed mint: %v", err)
			}
		}
		return nil, ctx.Emit(EvDataRegistered, contract.NewEncoder().
			Digest(dataID).Address(ctx.Caller).Bytes())

	case "dataOwner":
		// (dataID) → address (zero when unregistered)
		dataID, err := dec.Digest()
		if err != nil {
			return nil, contract.Revertf("dataOwner: %v", err)
		}
		raw, err := ctx.Get("data/" + dataID.Hex())
		if err != nil {
			return nil, err
		}
		var owner identity.Address
		copy(owner[:], raw)
		return contract.NewEncoder().Address(owner).Bytes(), nil

	case "registerWorkload":
		// (workloadAddr) — called by the consumer after deploying a
		// workload contract; adds it to the public directory.
		addr, err := dec.Address()
		if err != nil {
			return nil, contract.Revertf("registerWorkload: %v", err)
		}
		exists, err := ctx.ContractExists(addr)
		if err != nil {
			return nil, err
		}
		if !exists {
			return nil, contract.Revertf("registerWorkload: %s is not a contract", addr.Short())
		}
		seq, err := ctx.GetUint64("wlseq")
		if err != nil {
			return nil, err
		}
		if err := ctx.Set(fmt.Sprintf("wl/%016d", seq), addr[:]); err != nil {
			return nil, err
		}
		if err := ctx.SetUint64("wlseq", seq+1); err != nil {
			return nil, err
		}
		return nil, ctx.Emit(EvWorkloadRegistered, contract.NewEncoder().
			Address(addr).Digest(WorkloadIDFor(addr)).Bytes())

	case "workloadCount":
		seq, err := ctx.GetUint64("wlseq")
		if err != nil {
			return nil, err
		}
		return contract.NewEncoder().Uint64(seq).Bytes(), nil

	case "workloadAt":
		// (index) → address
		idx, err := dec.Uint64()
		if err != nil {
			return nil, contract.Revertf("workloadAt: %v", err)
		}
		raw, err := ctx.Get(fmt.Sprintf("wl/%016d", idx))
		if err != nil {
			return nil, err
		}
		if len(raw) != identity.AddressSize {
			return nil, contract.Revertf("workloadAt: index %d out of range", idx)
		}
		var addr identity.Address
		copy(addr[:], raw)
		return contract.NewEncoder().Address(addr).Bytes(), nil

	default:
		return nil, fmt.Errorf("%w: registry.%s", contract.ErrUnknownMethod, method)
	}
}

// Client-side helpers.

// RegisterActorData builds call data for registerActor.
func RegisterActorData(role identity.Role) []byte {
	return contract.CallData("registerActor", contract.NewEncoder().String(string(role)).Bytes())
}

// RegisterDataData builds call data for registerData.
func RegisterDataData(dataID, metaHash crypto.Digest) []byte {
	return contract.CallData("registerData", contract.NewEncoder().Digest(dataID).Digest(metaHash).Bytes())
}

// RegisterWorkloadData builds call data for registerWorkload.
func RegisterWorkloadData(addr identity.Address) []byte {
	return contract.CallData("registerWorkload", contract.NewEncoder().Address(addr).Bytes())
}
