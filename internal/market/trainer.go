package market

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/tee"
)

// TrainerParams is the workload definition carried in Spec.Params for
// the built-in logistic-regression training workload: the enclave
// program interprets it; the contract treats it as opaque.
type TrainerParams struct {
	Dim    uint64
	Epochs uint64
	Lambda float64

	// Aggregation selects how executors' local models are combined:
	// "mean" (default) is the sample-weighted average; "median" is the
	// coordinate-wise median, which §II-F's pluggable-aggregation design
	// allows consumers to pick when they fear poisoned local models —
	// result-consistency checks cannot catch an executor feeding a
	// corrupt *input* into an otherwise honest aggregation, but the
	// median bounds its influence.
	Aggregation string

	// DataPredicate, when non-empty, is a semantic predicate the enclave
	// evaluates over statistics computed from the *actual data* of every
	// contributed dataset: `samples`, `dim`, `pos_fraction` (share of
	// positive labels) and `mean_norm` (mean feature-vector L2 norm).
	// Datasets that fail are excluded from training and earn zero
	// contribution — the §IV-C "leak-free verification of any
	// requirement" performed with privacy-preserving computation, which
	// catches providers whose self-declared metadata lied.
	DataPredicate string
}

// Encode serializes the params with the contract ABI. The predicate is
// part of the encoding and therefore of the enclave measurement: the
// consumer's pinned measurement commits to the verification rules too.
func (p TrainerParams) Encode() []byte {
	return contract.NewEncoder().
		Uint64(p.Dim).
		Uint64(p.Epochs).
		Uint64(math.Float64bits(p.Lambda)).
		String(p.Aggregation).
		String(p.DataPredicate).
		Bytes()
}

// DecodeTrainerParams inverts Encode.
func DecodeTrainerParams(b []byte) (TrainerParams, error) {
	d := contract.NewDecoder(b)
	var p TrainerParams
	var err error
	if p.Dim, err = d.Uint64(); err != nil {
		return p, err
	}
	if p.Epochs, err = d.Uint64(); err != nil {
		return p, err
	}
	bits, err := d.Uint64()
	if err != nil {
		return p, err
	}
	p.Lambda = math.Float64frombits(bits)
	if p.Aggregation, err = d.String(); err != nil {
		return p, err
	}
	switch p.Aggregation {
	case "", "mean", "median":
	default:
		return p, fmt.Errorf("market: unknown aggregation %q", p.Aggregation)
	}
	if p.DataPredicate, err = d.String(); err != nil {
		return p, err
	}
	if err := d.Done(); err != nil {
		return p, err
	}
	return p, nil
}

// dataStats computes the in-enclave statistics DataPredicate sees.
func dataStats(ds *ml.Dataset) semantic.Metadata {
	pos := 0
	var normSum float64
	for i := range ds.X {
		if ds.Y[i] > 0 {
			pos++
		}
		normSum += ml.Norm2(ds.X[i])
	}
	posFrac, meanNorm := 0.0, 0.0
	if ds.Len() > 0 {
		posFrac = float64(pos) / float64(ds.Len())
		meanNorm = normSum / float64(ds.Len())
	}
	return semantic.Metadata{
		"samples":      semantic.Number(float64(ds.Len())),
		"dim":          semantic.Number(float64(ds.Dim())),
		"pos_fraction": semantic.Number(posFrac),
		"mean_norm":    semantic.Number(meanNorm),
	}
}

// trainerCodePrefix versions the enclave training program. The program's
// measurement covers the prefix *and* the workload params, so a consumer
// pinning a measurement pins the exact computation, hyperparameters
// included.
var trainerCodePrefix = []byte("pds2/enclave/trainer/v1|")

// TrainerProgram builds the enclave program for the given encoded
// params. Two entry modes share one measurement:
//
//	mode "train":     train a local model on this executor's data slice
//	mode "aggregate": merge all executors' local models and emit the
//	                  final result plus provider contribution scores
type TrainerProgram struct {
	params []byte
}

// NewTrainerProgram wraps encoded TrainerParams.
func NewTrainerProgram(params []byte) TrainerProgram {
	return TrainerProgram{params: append([]byte(nil), params...)}
}

// Program returns the tee.Program.
func (t TrainerProgram) Program() tee.Program {
	return tee.Program{
		Code: append(append([]byte(nil), trainerCodePrefix...), t.params...),
		Fn:   t.run,
	}
}

// Measurement returns the program measurement consumers pin in specs.
func (t TrainerProgram) Measurement() tee.Measurement {
	return t.Program().Measure()
}

// TrainerMeasurement is shorthand: the measurement for encoded params.
func TrainerMeasurement(params []byte) tee.Measurement {
	return NewTrainerProgram(params).Measurement()
}

// run dispatches on the mode tag.
func (t TrainerProgram) run(input []byte) ([]byte, error) {
	d := contract.NewDecoder(input)
	mode, err := d.String()
	if err != nil {
		return nil, fmt.Errorf("trainer: bad input: %w", err)
	}
	params, err := DecodeTrainerParams(t.params)
	if err != nil {
		return nil, fmt.Errorf("trainer: bad params: %w", err)
	}
	switch mode {
	case "train":
		return t.runTrain(params, d)
	case "aggregate":
		return t.runAggregate(params, d)
	default:
		return nil, fmt.Errorf("trainer: unknown mode %q", mode)
	}
}

// runTrain input: (n, then per item: provider address, dataset blob).
// Output: (model blob, samples, then per provider: address, count).
func (t TrainerProgram) runTrain(params TrainerParams, d *contract.Decoder) ([]byte, error) {
	var pred semantic.Expr
	if params.DataPredicate != "" {
		var err error
		if pred, err = semantic.Parse(params.DataPredicate); err != nil {
			return nil, fmt.Errorf("trainer: bad data predicate: %w", err)
		}
	}
	n, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	type slice struct {
		provider identity.Address
		ds       *ml.Dataset
	}
	slices := make([]slice, 0, n)
	for i := uint64(0); i < n; i++ {
		provider, err := d.Address()
		if err != nil {
			return nil, err
		}
		blob, err := d.Blob()
		if err != nil {
			return nil, err
		}
		ds, err := DecodeDataset(blob)
		if err != nil {
			return nil, fmt.Errorf("trainer: dataset %d: %w", i, err)
		}
		if ds.Dim() != int(params.Dim) && ds.Len() > 0 {
			return nil, fmt.Errorf("trainer: dataset %d has dim %d, workload needs %d", i, ds.Dim(), params.Dim)
		}
		if pred != nil && !pred.Eval(dataStats(ds)) {
			// In-enclave verification failed: the data does not satisfy
			// the workload's requirements, whatever its metadata claimed.
			// Exclude it; its provider earns nothing for it.
			continue
		}
		slices = append(slices, slice{provider: provider, ds: ds})
	}
	// Deterministic order regardless of delivery order.
	sort.Slice(slices, func(i, j int) bool {
		if slices[i].provider != slices[j].provider {
			return slices[i].provider.Hex() < slices[j].provider.Hex()
		}
		return slices[i].ds.Hash().Hex() < slices[j].ds.Hash().Hex()
	})

	model := ml.NewLogisticModel(int(params.Dim), params.Lambda)
	counts := map[identity.Address]uint64{}
	var total uint64
	parts := make([]*ml.Dataset, 0, len(slices))
	for _, s := range slices {
		counts[s.provider] += uint64(s.ds.Len())
		total += uint64(s.ds.Len())
		parts = append(parts, s.ds)
	}
	union := ml.Concat(parts...)
	ml.TrainEpochs(model, union, int(params.Epochs))

	// Emit per-provider sample counts in sorted provider order.
	provs := make([]identity.Address, 0, len(counts))
	for p := range counts {
		provs = append(provs, p)
	}
	sort.Slice(provs, func(i, j int) bool { return provs[i].Hex() < provs[j].Hex() })
	enc := contract.NewEncoder().
		Blob(encodeLinearModel(model)).
		Uint64(total).
		Uint64(uint64(len(provs)))
	for _, p := range provs {
		enc.Address(p).Uint64(counts[p])
	}
	return enc.Bytes(), nil
}

// localModel is one executor's decoded training output.
type localModel struct {
	model   *ml.LogisticModel
	samples uint64
	counts  map[identity.Address]uint64
}

// runAggregate input: (k, then per executor: train-output blob;
// then the provider payout order: count, addresses...).
// Output: (final model blob, scores blob per EncodeScores ordering).
func (t TrainerProgram) runAggregate(params TrainerParams, d *contract.Decoder) ([]byte, error) {
	k, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, fmt.Errorf("trainer: aggregate of zero local results")
	}
	locals := make([]localModel, 0, k)
	for i := uint64(0); i < k; i++ {
		blob, err := d.Blob()
		if err != nil {
			return nil, err
		}
		ld := contract.NewDecoder(blob)
		modelBlob, err := ld.Blob()
		if err != nil {
			return nil, err
		}
		model, err := decodeLinearModel(modelBlob, params.Lambda)
		if err != nil {
			return nil, err
		}
		samples, err := ld.Uint64()
		if err != nil {
			return nil, err
		}
		np, err := ld.Uint64()
		if err != nil {
			return nil, err
		}
		counts := make(map[identity.Address]uint64, np)
		for j := uint64(0); j < np; j++ {
			addr, err := ld.Address()
			if err != nil {
				return nil, err
			}
			c, err := ld.Uint64()
			if err != nil {
				return nil, err
			}
			counts[addr] = c
		}
		locals = append(locals, localModel{model: model, samples: samples, counts: counts})
	}
	// Provider payout order (the contract's registration order).
	np, err := d.Uint64()
	if err != nil {
		return nil, err
	}
	order := make([]identity.Address, 0, np)
	for i := uint64(0); i < np; i++ {
		addr, err := d.Address()
		if err != nil {
			return nil, err
		}
		order = append(order, addr)
	}

	// Decentralized aggregation (§II-E: "tamper-proof, free from any
	// bias"). Every executor runs this same deterministic merge over the
	// same inputs, so all result hashes coincide. The mechanism is the
	// consumer's choice (§II-F): sample-weighted mean by default, or the
	// poisoning-robust coordinate-wise median.
	var totalSamples uint64
	for _, l := range locals {
		totalSamples += l.samples
	}
	if totalSamples == 0 {
		return nil, fmt.Errorf("trainer: no samples across executors")
	}
	var final *ml.LogisticModel
	if params.Aggregation == "median" {
		final = medianAggregate(locals, params)
	} else {
		final = ml.NewLogisticModel(int(params.Dim), params.Lambda)
		acc := 0.0
		for _, l := range locals {
			w := float64(l.samples) / float64(totalSamples)
			newAcc := acc + w
			if newAcc == 0 {
				continue
			}
			if err := final.MergeFrom(l.model, acc/newAcc, w/newAcc); err != nil {
				return nil, err
			}
			acc = newAcc
		}
	}

	merged := map[identity.Address]uint64{}
	for _, l := range locals {
		for p, c := range l.counts {
			merged[p] += c
		}
	}
	scores := make([]Score, 0, len(order))
	for _, p := range order {
		scores = append(scores, Score{Provider: p, Score: merged[p]})
	}
	return contract.NewEncoder().
		Blob(encodeLinearModel(final)).
		Blob(EncodeScores(scores)).
		Bytes(), nil
}

// medianAggregate combines local models by coordinate-wise median: a
// minority of arbitrarily corrupted local models moves each coordinate
// at most to a neighbouring honest value.
func medianAggregate(locals []localModel, params TrainerParams) *ml.LogisticModel {
	final := ml.NewLogisticModel(int(params.Dim), params.Lambda)
	column := make([]float64, len(locals))
	for j := range final.W {
		for i, l := range locals {
			column[i] = l.model.W[j]
		}
		final.W[j] = median(column)
	}
	for i, l := range locals {
		column[i] = l.model.Bias
	}
	final.Bias = median(column)
	var maxAge uint64
	for _, l := range locals {
		if l.model.Age() > maxAge {
			maxAge = l.model.Age()
		}
	}
	final.SetAge(maxAge)
	return final
}

// median returns the middle element (lower of the two for even counts),
// leaving v reordered.
func median(v []float64) float64 {
	sort.Float64s(v)
	return v[(len(v)-1)/2]
}

// Dataset wire format shared by providers (who encrypt it into their
// vaults) and the enclave (which decodes it after opening the grant).

// EncodeDataset serializes a dataset as big-endian float64s.
func EncodeDataset(d *ml.Dataset) []byte {
	size := 16
	for _, row := range d.X {
		size += 8 + 8*len(row) + 8
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.Len()))
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.Dim()))
	for i, row := range d.X {
		for _, v := range row {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(d.Y[i]))
	}
	return buf
}

// DecodeDataset inverts EncodeDataset.
func DecodeDataset(b []byte) (*ml.Dataset, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("market: truncated dataset")
	}
	n := binary.BigEndian.Uint64(b)
	dim := binary.BigEndian.Uint64(b[8:])
	want := 16 + int(n)*(int(dim)+1)*8
	if n > 1<<30 || dim > 1<<20 || len(b) != want {
		return nil, fmt.Errorf("market: dataset size mismatch: %d bytes for n=%d dim=%d", len(b), n, dim)
	}
	off := 16
	d := &ml.Dataset{X: make([][]float64, n), Y: make([]float64, n)}
	for i := uint64(0); i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
			off += 8
		}
		d.X[i] = row
		d.Y[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	return d, nil
}

func encodeLinearModel(m *ml.LogisticModel) []byte {
	buf := make([]byte, 0, 8*(len(m.W)+3))
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(m.W)))
	for _, w := range m.W {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(w))
	}
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(m.Bias))
	buf = binary.BigEndian.AppendUint64(buf, m.Age())
	return buf
}

func decodeLinearModel(b []byte, lambda float64) (*ml.LogisticModel, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("market: truncated model")
	}
	dim := binary.BigEndian.Uint64(b)
	if uint64(len(b)) != 8*(dim+3) {
		return nil, fmt.Errorf("market: model size mismatch")
	}
	m := ml.NewLogisticModel(int(dim), lambda)
	off := 8
	for i := range m.W {
		m.W[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	m.Bias = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
	off += 8
	m.SetAge(binary.BigEndian.Uint64(b[off:]))
	return m, nil
}

// DecodeResultModel decodes the final model from an accepted workload
// result payload (the consumer-side helper).
func DecodeResultModel(result []byte, lambda float64) (*ml.LogisticModel, []Score, error) {
	d := contract.NewDecoder(result)
	modelBlob, err := d.Blob()
	if err != nil {
		return nil, nil, err
	}
	model, err := decodeLinearModel(modelBlob, lambda)
	if err != nil {
		return nil, nil, err
	}
	scoresBlob, err := d.Blob()
	if err != nil {
		return nil, nil, err
	}
	scores, err := DecodeScores(scoresBlob)
	if err != nil {
		return nil, nil, err
	}
	return model, scores, nil
}

// ResultHash is the digest of a result payload, the value registered
// on-chain and bound by the result attestation quote.
func ResultHash(result []byte) crypto.Digest {
	return crypto.HashConcat([]byte("pds2/result"), result)
}
