package market

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/ml"
	"pds2/internal/semantic"
	"pds2/internal/storage"
	"pds2/internal/token"
)

// testWorld is a fully wired marketplace: one consumer, n providers with
// datasets, k executors, one storage node.
type testWorld struct {
	m         *Market
	consumer  *Consumer
	providers []*Provider
	executors []*Executor
	node      *storage.Node
	refs      [][]storage.DataRef // per provider
	test      *ml.Dataset
	params    TrainerParams
	spec      *Spec
}

func newTestWorld(t *testing.T, seed uint64, nProviders, nExecutors int) *testWorld {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(seed, "market-test")

	ids := make([]*identity.Identity, 0, nProviders+nExecutors+1)
	alloc := map[identity.Address]uint64{}
	for i := 0; i < nProviders+nExecutors+1; i++ {
		id := identity.New("actor", rng.Fork("id"))
		ids = append(ids, id)
		alloc[id.Address()] = 1_000_000
	}
	m, err := New(Config{Seed: seed, GenesisAlloc: alloc})
	if err != nil {
		t.Fatal(err)
	}
	w := &testWorld{m: m, node: storage.NewNode(storage.NewMemStore())}

	w.consumer, err = NewConsumer(m, ids[0])
	if err != nil {
		t.Fatal(err)
	}

	// Data: a classification task split across providers.
	data, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 400 * nProviders, Dim: 8, LabelNoise: 0.05}, rng)
	train, test := data.TrainTestSplit(0.25, rng)
	w.test = test
	parts := train.PartitionIID(nProviders, rng)

	for i := 0; i < nProviders; i++ {
		p, err := NewProvider(m, ids[1+i], w.node)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := p.AddDataset(parts[i], semantic.Metadata{
			"category": semantic.String("sensor.temperature"),
			"samples":  semantic.Number(float64(parts[i].Len())),
		})
		if err != nil {
			t.Fatal(err)
		}
		w.providers = append(w.providers, p)
		w.refs = append(w.refs, []storage.DataRef{ref})
	}
	for i := 0; i < nExecutors; i++ {
		e, err := NewExecutor(m, ids[1+nProviders+i], w.node)
		if err != nil {
			t.Fatal(err)
		}
		w.executors = append(w.executors, e)
	}

	w.params = TrainerParams{Dim: 8, Epochs: 3, Lambda: 1e-3}
	w.spec = &Spec{
		Predicate:      `category isa "sensor" and samples >= 10`,
		MinProviders:   uint64(nProviders),
		MinItems:       uint64(nProviders),
		ExpiryHeight:   m.Height() + 1_000,
		ExecutorFeeBps: 1_000, // 10% to executors
		Measurement:    TrainerMeasurement(w.params.Encode()),
		QAPub:          m.QA.PublicKey(),
		Params:         w.params.Encode(),
	}
	return w
}

// runLifecycle drives the full Fig. 2 sequence and returns the workload
// address and result payload.
func (w *testWorld) runLifecycle(t *testing.T, budget uint64) (identity.Address, []byte) {
	t.Helper()
	addr, err := w.consumer.SubmitWorkload(w.spec, budget)
	if err != nil {
		t.Fatal(err)
	}
	// Providers discover the workload, check eligibility, and authorize
	// executors round-robin.
	for i, p := range w.providers {
		refs, err := p.EligibleData(w.spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) == 0 {
			t.Fatalf("provider %d found no eligible data", i)
		}
		exec := w.executors[i%len(w.executors)]
		auths, err := p.Authorize(addr, exec.ID.Address(), refs, w.spec.ExpiryHeight)
		if err != nil {
			t.Fatal(err)
		}
		exec.Accept(addr, auths)
	}
	for _, e := range w.executors {
		if len(e.assignments[addr]) == 0 {
			continue
		}
		if err := e.Register(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	active := make([]*Executor, 0, len(w.executors))
	for _, e := range w.executors {
		if len(e.assignments[addr]) > 0 {
			active = append(active, e)
		}
	}
	result, err := RunWorkloadExecution(addr, active)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Finalize(addr); err != nil {
		t.Fatal(err)
	}
	return addr, result
}

func TestFullLifecycle(t *testing.T) {
	w := newTestWorld(t, 1, 4, 2)
	const budget = 100_000
	balancesBefore := map[identity.Address]uint64{}
	for _, p := range w.providers {
		balancesBefore[p.ID.Address()] = w.m.Chain.State().Balance(p.ID.Address())
	}
	for _, e := range w.executors {
		balancesBefore[e.ID.Address()] = w.m.Chain.State().Balance(e.ID.Address())
	}

	addr, result := w.runLifecycle(t, budget)

	// State machine reached Complete.
	st, err := w.m.WorkloadStateOf(addr)
	if err != nil {
		t.Fatal(err)
	}
	if st != StateComplete {
		t.Fatalf("state = %v", st)
	}

	// The consumer can fetch and verify the result.
	payload, err := w.consumer.FetchResult(addr, w.executors[0])
	if err != nil {
		t.Fatal(err)
	}
	model, scores, err := DecodeResultModel(payload, w.params.Lambda)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != len(w.providers) {
		t.Fatalf("scores for %d providers", len(scores))
	}
	if acc := ml.Accuracy(model, w.test); acc < 0.85 {
		t.Fatalf("trained model accuracy = %v", acc)
	}
	_ = result

	// Rewards: every provider and every executor got paid, and payouts
	// sum exactly to the budget.
	var paid uint64
	for _, p := range w.providers {
		gain := w.m.Chain.State().Balance(p.ID.Address()) - balancesBefore[p.ID.Address()]
		if gain == 0 {
			t.Fatalf("provider %s unpaid", p.ID.Address().Short())
		}
		paid += gain
	}
	for _, e := range w.executors {
		gain := w.m.Chain.State().Balance(e.ID.Address()) - balancesBefore[e.ID.Address()]
		if gain == 0 {
			t.Fatalf("executor %s unpaid", e.ID.Address().Short())
		}
		paid += gain
	}
	if paid != budget {
		t.Fatalf("total payouts %d != budget %d", paid, budget)
	}

	// The audit trail contains the full lifecycle.
	for _, topic := range []string{
		EvWorkloadRegistered, EvExecutorRegistered, EvDataContributed,
		EvWorkloadStarted, EvResultSubmitted, EvRewardPaid, EvWorkloadFinalized,
	} {
		if len(w.m.Chain.Events(topic)) == 0 {
			t.Fatalf("no %s event in audit log", topic)
		}
	}
}

func TestSingleExecutorLifecycle(t *testing.T) {
	w := newTestWorld(t, 2, 2, 1)
	addr, _ := w.runLifecycle(t, 10_000)
	st, _ := w.m.WorkloadStateOf(addr)
	if st != StateComplete {
		t.Fatalf("state = %v", st)
	}
}

func TestRewardsProportionalToContribution(t *testing.T) {
	// Provider 0 contributes 3 datasets, provider 1 contributes 1; the
	// sample-count scores should pay provider 0 roughly 3x.
	w := newTestWorld(t, 3, 2, 1)
	rng := crypto.NewDRBGFromUint64(99, "extra")
	extra, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 800, Dim: 8}, rng)
	parts := extra.PartitionIID(2, rng)
	for _, part := range parts {
		ref, err := w.providers[0].AddDataset(part, semantic.Metadata{
			"category": semantic.String("sensor.temperature"),
			"samples":  semantic.Number(float64(part.Len())),
		})
		if err != nil {
			t.Fatal(err)
		}
		w.refs[0] = append(w.refs[0], ref)
	}
	before0 := w.m.Chain.State().Balance(w.providers[0].ID.Address())
	before1 := w.m.Chain.State().Balance(w.providers[1].ID.Address())
	w.runLifecycle(t, 90_000)
	gain0 := w.m.Chain.State().Balance(w.providers[0].ID.Address()) - before0
	gain1 := w.m.Chain.State().Balance(w.providers[1].ID.Address()) - before1
	if gain0 <= 2*gain1 {
		t.Fatalf("contribution-weighted payout violated: %d vs %d", gain0, gain1)
	}
}

func TestTamperedResultDisputedAndRefunded(t *testing.T) {
	w := newTestWorld(t, 4, 2, 2)
	w.executors[1].TamperResult = true
	const budget = 50_000
	consumerBefore := w.m.Chain.State().Balance(w.consumer.ID.Address())

	addr, err := w.consumer.SubmitWorkload(w.spec, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range w.providers {
		refs, _ := p.EligibleData(w.spec)
		exec := w.executors[i%2]
		auths, _ := p.Authorize(addr, exec.ID.Address(), refs, w.spec.ExpiryHeight)
		exec.Accept(addr, auths)
	}
	for _, e := range w.executors {
		if err := e.Register(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	// Execution: the tampering executor submits a divergent result; the
	// second submission triggers the dispute.
	_, err = RunWorkloadExecution(addr, w.executors)
	if err == nil {
		// The dispute path may also surface as a failed later submission,
		// depending on order; in either case the state must be Disputed.
		t.Log("execution completed; checking dispute state")
	}
	st, err2 := w.m.WorkloadStateOf(addr)
	if err2 != nil {
		t.Fatal(err2)
	}
	if st != StateDisputed {
		t.Fatalf("state = %v, want disputed", st)
	}
	// The consumer got the escrow back (it paid only the budget, which
	// was refunded in full).
	consumerAfter := w.m.Chain.State().Balance(w.consumer.ID.Address())
	if consumerAfter != consumerBefore {
		t.Fatalf("consumer balance %d, want %d", consumerAfter, consumerBefore)
	}
	if len(w.m.Chain.Events(EvWorkloadDisputed)) == 0 {
		t.Fatal("no dispute event")
	}
}

func TestWrongEnclaveCodeRejected(t *testing.T) {
	// The consumer pins a measurement; an executor running different
	// params (and thus different code) cannot register.
	w := newTestWorld(t, 5, 1, 1)
	addr, err := w.consumer.SubmitWorkload(w.spec, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	refs, _ := w.providers[0].EligibleData(w.spec)
	auths, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
	w.executors[0].Accept(addr, auths)

	// Tamper the local view of the spec: executor builds its enclave for
	// different params. Simulate by launching a wrong-code enclave and
	// submitting its quote manually.
	wrongParams := TrainerParams{Dim: 8, Epochs: 99, Lambda: 1e-3}
	wrongProg := NewTrainerProgram(wrongParams.Encode()).Program()
	enclave, err := w.executors[0].Platform.Launch(wrongProg)
	if err != nil {
		t.Fatal(err)
	}
	wid := WorkloadIDFor(addr)
	quote := enclave.Quote(RegistrationReport(wid, w.executors[0].ID.Address()))
	quoteRaw, _ := json.Marshal(quote)
	certs := []identity.ParticipationCert{auths[0].Cert}
	certsRaw, _ := json.Marshal(certs)
	args := contract.NewEncoder().Blob(quoteRaw).Blob(certsRaw).Bytes()
	rcpt, err := w.m.SendAndSeal(w.executors[0].ID, addr, 0, contract.CallData("registerExecution", args))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Succeeded() {
		t.Fatal("wrong-code registration accepted")
	}
	if !strings.Contains(rcpt.Err, "measurement") {
		t.Fatalf("unexpected revert reason: %s", rcpt.Err)
	}
}

func TestForgedCertificateRejected(t *testing.T) {
	// An executor forges a certificate for a provider that never agreed.
	w := newTestWorld(t, 6, 1, 1)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	wid := WorkloadIDFor(addr)
	exec := w.executors[0]

	mallory := identity.New("mallory", crypto.NewDRBGFromUint64(123, "mallory"))
	forged := identity.IssueCert(mallory, wid, crypto.HashString("stolen"), exec.ID.Address(), w.spec.ExpiryHeight)
	forged.Provider = w.providers[0].ID.Address() // claim it came from the real provider

	spec, _ := w.m.WorkloadSpecOf(addr)
	enclave, err := exec.enclaveFor(addr, spec)
	if err != nil {
		t.Fatal(err)
	}
	quote := enclave.Quote(RegistrationReport(wid, exec.ID.Address()))
	quoteRaw, _ := json.Marshal(quote)
	certsRaw, _ := json.Marshal([]identity.ParticipationCert{forged})
	args := contract.NewEncoder().Blob(quoteRaw).Blob(certsRaw).Bytes()
	rcpt, err := w.m.SendAndSeal(exec.ID, addr, 0, contract.CallData("registerExecution", args))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Succeeded() {
		t.Fatal("forged certificate accepted")
	}
}

func TestCertificateCannotBeReusedAcrossExecutors(t *testing.T) {
	// Two executors try to register the same provider authorization: the
	// certificate is bound to one executor, and even a re-issued cert for
	// a second executor cannot re-register the same data.
	w := newTestWorld(t, 7, 1, 2)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	refs, _ := w.providers[0].EligibleData(w.spec)

	auths0, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
	w.executors[0].Accept(addr, auths0)
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}

	// Same data authorized to executor 1: the contract rejects the
	// duplicate data contribution.
	auths1, _ := w.providers[0].Authorize(addr, w.executors[1].ID.Address(), refs, w.spec.ExpiryHeight)
	w.executors[1].Accept(addr, auths1)
	err := w.executors[1].Register(addr)
	if err == nil || !strings.Contains(err.Error(), "already contributed") {
		t.Fatalf("duplicate data registration: %v", err)
	}
}

func TestStartRequiresConditions(t *testing.T) {
	w := newTestWorld(t, 8, 3, 1)
	w.spec.MinProviders = 3
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)

	// Only one provider joins.
	refs, _ := w.providers[0].EligibleData(w.spec)
	auths, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
	w.executors[0].Accept(addr, auths)
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err == nil {
		t.Fatal("started below MinProviders")
	}
}

func TestCancelAfterExpiryRefunds(t *testing.T) {
	w := newTestWorld(t, 9, 1, 1)
	w.spec.ExpiryHeight = w.m.Height() + 3
	before := w.m.Chain.State().Balance(w.consumer.ID.Address())
	addr, err := w.consumer.SubmitWorkload(w.spec, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel too early fails.
	if err := w.consumer.Cancel(addr); err == nil {
		t.Fatal("cancelled before expiry")
	}
	// Advance past expiry with empty blocks.
	for w.m.Height() <= w.spec.ExpiryHeight {
		if _, err := w.m.SealBlock(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.consumer.Cancel(addr); err != nil {
		t.Fatal(err)
	}
	st, _ := w.m.WorkloadStateOf(addr)
	if st != StateCancelled {
		t.Fatalf("state = %v", st)
	}
	if got := w.m.Chain.State().Balance(w.consumer.ID.Address()); got != before {
		t.Fatalf("refund incomplete: %d != %d", got, before)
	}
}

func TestSpecEncodeDecodeRoundTrip(t *testing.T) {
	w := newTestWorld(t, 10, 1, 1)
	raw := w.spec.Encode()
	got, err := DecodeSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Predicate != w.spec.Predicate || got.MinProviders != w.spec.MinProviders ||
		got.Measurement != w.spec.Measurement || string(got.Params) != string(w.spec.Params) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := DecodeSpec(raw[:len(raw)-3]); err == nil {
		t.Fatal("truncated spec accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	w := newTestWorld(t, 11, 1, 1)
	bad := *w.spec
	bad.Predicate = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("empty predicate accepted")
	}
	bad = *w.spec
	bad.MinProviders = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero providers accepted")
	}
	bad = *w.spec
	bad.ExecutorFeeBps = 10_001
	if err := bad.Validate(); err == nil {
		t.Fatal("fee > 100% accepted")
	}
	bad = *w.spec
	bad.QAPub = []byte{1}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad QA key accepted")
	}
}

func TestDatasetWireRoundTrip(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(12, "ds")
	d, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 50, Dim: 4}, rng)
	blob := EncodeDataset(d)
	got, err := DecodeDataset(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.Dim() != d.Dim() {
		t.Fatalf("shape mismatch")
	}
	if got.Hash() != d.Hash() {
		t.Fatal("content mismatch")
	}
	if _, err := DecodeDataset(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated dataset accepted")
	}
}

func TestScoresRoundTrip(t *testing.T) {
	a := identity.New("a", crypto.NewDRBGFromUint64(1, "s")).Address()
	b := identity.New("b", crypto.NewDRBGFromUint64(2, "s")).Address()
	scores := []Score{{Provider: a, Score: 10}, {Provider: b, Score: 20}}
	got, err := DecodeScores(EncodeScores(scores))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != scores[0] || got[1] != scores[1] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestRegistryDataFirstComeFirstServed(t *testing.T) {
	w := newTestWorld(t, 13, 2, 1)
	id := crypto.HashString("contested data")
	if _, err := MustSucceed(w.m.SendAndSeal(w.providers[0].ID, w.m.Registry, 0,
		RegisterDataData(id, crypto.HashString("m")))); err != nil {
		t.Fatal(err)
	}
	rcpt, err := w.m.SendAndSeal(w.providers[1].ID, w.m.Registry, 0,
		RegisterDataData(id, crypto.HashString("m")))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Succeeded() {
		t.Fatal("second registration of the same data accepted")
	}
	// Ownership view returns the first registrant.
	raw, err := w.m.View(identity.ZeroAddress, w.m.Registry, "dataOwner",
		contract.NewEncoder().Digest(id).Bytes())
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := contract.NewDecoder(raw).Address()
	if owner != w.providers[0].ID.Address() {
		t.Fatalf("owner = %s", owner.Short())
	}
}

func TestWorkloadsDirectory(t *testing.T) {
	w := newTestWorld(t, 14, 1, 1)
	a1, _ := w.consumer.SubmitWorkload(w.spec, 1_000)
	a2, _ := w.consumer.SubmitWorkload(w.spec, 1_000)
	list, err := w.m.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0] != a1 || list[1] != a2 {
		t.Fatalf("directory = %v", list)
	}
}

func TestGovernanceGasAccounting(t *testing.T) {
	// Every lifecycle transaction reports non-trivial gas, and the whole
	// lifecycle stays within sane bounds (used by experiment E2).
	w := newTestWorld(t, 15, 2, 1)
	addr, _ := w.runLifecycle(t, 10_000)
	_ = addr
	var total uint64
	h := w.m.Chain.Height()
	for i := uint64(1); i <= h; i++ {
		b, _ := w.m.Chain.BlockAt(i)
		total += b.Header.GasUsed
	}
	if total < ledger.TxBaseGas*10 {
		t.Fatalf("implausibly low lifecycle gas: %d", total)
	}
}

func TestMempoolBatchingMultipleTxPerBlock(t *testing.T) {
	w := newTestWorld(t, 16, 2, 1)
	// Two providers register data in the same block.
	tx1 := w.m.SignedTx(w.providers[0].ID, w.m.Registry, 0, RegisterDataData(crypto.HashString("d1"), crypto.ZeroDigest))
	tx2 := w.m.SignedTx(w.providers[1].ID, w.m.Registry, 0, RegisterDataData(crypto.HashString("d2"), crypto.ZeroDigest))
	if err := w.m.Submit(tx1); err != nil {
		t.Fatal(err)
	}
	if err := w.m.Submit(tx2); err != nil {
		t.Fatal(err)
	}
	block, err := w.m.SealBlock()
	if err != nil {
		t.Fatal(err)
	}
	if len(block.Txs) != 2 {
		t.Fatalf("block has %d txs", len(block.Txs))
	}
}

func TestDataDeedMintedOnRegistration(t *testing.T) {
	// §III-A: every registered dataset is deeded as an ERC-721 token
	// owned by its provider, transferable like any NFT.
	w := newTestWorld(t, 17, 2, 1)
	ref := w.refs[0][0]
	owner, err := w.m.DeedOwner(ref.ID)
	if err != nil {
		t.Fatal(err)
	}
	if owner != w.providers[0].ID.Address() {
		t.Fatalf("deed owner = %s, want provider", owner.Short())
	}
	// The deed is transferable: provider 0 sells it to provider 1.
	if _, err := MustSucceed(w.m.SendAndSeal(w.providers[0].ID, w.m.Deeds, 0,
		token.ERC721TransferFromData(w.providers[0].ID.Address(), w.providers[1].ID.Address(), ref.ID))); err != nil {
		t.Fatal(err)
	}
	owner, _ = w.m.DeedOwner(ref.ID)
	if owner != w.providers[1].ID.Address() {
		t.Fatalf("deed owner after sale = %s", owner.Short())
	}
}

func TestDeedMintBlockedForDuplicateContent(t *testing.T) {
	// Registering identical content twice fails at the registry level,
	// so only one deed ever exists per content hash.
	w := newTestWorld(t, 18, 2, 1)
	id := crypto.HashString("unique content")
	if _, err := MustSucceed(w.m.SendAndSeal(w.providers[0].ID, w.m.Registry, 0,
		RegisterDataData(id, crypto.ZeroDigest))); err != nil {
		t.Fatal(err)
	}
	rcpt, err := w.m.SendAndSeal(w.providers[1].ID, w.m.Registry, 0,
		RegisterDataData(id, crypto.ZeroDigest))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Succeeded() {
		t.Fatal("second registration minted a second deed")
	}
	owner, _ := w.m.DeedOwner(id)
	if owner != w.providers[0].ID.Address() {
		t.Fatal("deed not held by first registrant")
	}
}

func TestSetDeedsOnlyOwnerAndOnce(t *testing.T) {
	w := newTestWorld(t, 19, 1, 1)
	// A non-owner cannot rewire the deeds contract.
	rcpt, err := w.m.SendAndSeal(w.providers[0].ID, w.m.Registry, 0,
		contract.CallData("setDeeds", contract.NewEncoder().Address(w.m.Deeds).Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Succeeded() {
		t.Fatal("non-owner rewired deeds")
	}
}

func TestDiscoverWorkloads(t *testing.T) {
	w := newTestWorld(t, 20, 2, 1)
	// No open workloads yet.
	disc, err := w.providers[0].DiscoverWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(disc) != 0 {
		t.Fatalf("phantom discoveries: %d", len(disc))
	}
	// One matching and one non-matching workload.
	addr, err := w.consumer.SubmitWorkload(w.spec, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	other := *w.spec
	other.Predicate = `category isa "gps"`
	if _, err := w.consumer.SubmitWorkload(&other, 10_000); err != nil {
		t.Fatal(err)
	}
	disc, err = w.providers[0].DiscoverWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	if len(disc) != 1 || disc[0].Workload != addr {
		t.Fatalf("discoveries = %+v", disc)
	}
	if len(disc[0].Eligible) != 1 {
		t.Fatalf("eligible = %d", len(disc[0].Eligible))
	}
	// A completed workload disappears from discovery.
	w.runLifecycle(t, 10_000) // completes a third workload end to end
	disc2, _ := w.providers[0].DiscoverWorkloads()
	for _, d := range disc2 {
		st, _ := w.m.WorkloadStateOf(d.Workload)
		if st != StateOpen {
			t.Fatalf("non-open workload discovered: %v", st)
		}
	}
}

func TestRegisterExecutionAfterStartRejected(t *testing.T) {
	w := newTestWorld(t, 21, 2, 2)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	// Both providers authorize executor 0 only; executor 1 arrives late.
	for _, p := range w.providers {
		refs, _ := p.EligibleData(w.spec)
		auths, _ := p.Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
		w.executors[0].Accept(addr, auths)
	}
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	// Late registration attempt: re-authorize fresh (unseen) data to
	// executor 1 — the state guard must reject it anyway.
	rng := crypto.NewDRBGFromUint64(55, "late")
	extra, _ := ml.GenerateClassification(ml.SyntheticConfig{N: 50, Dim: 8}, rng)
	ref, err := w.providers[0].AddDataset(extra, semantic.Metadata{
		"category": semantic.String("sensor.temperature"),
		"samples":  semantic.Number(50),
	})
	if err != nil {
		t.Fatal(err)
	}
	auths, _ := w.providers[0].Authorize(addr, w.executors[1].ID.Address(),
		[]storage.DataRef{ref}, w.spec.ExpiryHeight)
	w.executors[1].Accept(addr, auths)
	if err := w.executors[1].Register(addr); err == nil {
		t.Fatal("late registration accepted after start")
	}
}

func TestSubmitResultByUnregisteredExecutorRejected(t *testing.T) {
	w := newTestWorld(t, 22, 2, 2)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	for _, p := range w.providers {
		refs, _ := p.EligibleData(w.spec)
		auths, _ := p.Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
		w.executors[0].Accept(addr, auths)
	}
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.executors[0].TrainLocal(addr); err != nil {
		t.Fatal(err)
	}
	share, _ := w.executors[0].LocalShare(addr)
	// Executor 1 never registered; its submission must revert.
	spec, _ := w.m.WorkloadSpecOf(addr)
	if _, err := w.executors[1].enclaveFor(addr, spec); err != nil {
		t.Fatal(err)
	}
	err := w.executors[1].Aggregate(addr, [][]byte{share})
	if err == nil || !strings.Contains(err.Error(), "not a registered executor") {
		t.Fatalf("unregistered submit: %v", err)
	}
}

func TestFinalizeTwiceRejected(t *testing.T) {
	w := newTestWorld(t, 23, 2, 1)
	addr, _ := w.runLifecycle(t, 10_000)
	if err := w.consumer.Finalize(addr); err == nil {
		t.Fatal("second finalize accepted")
	}
}

func TestCancelRunningWorkloadAfterExpiry(t *testing.T) {
	// A workload that started but whose executors never delivered can be
	// cancelled after expiry, refunding the consumer.
	w := newTestWorld(t, 24, 2, 1)
	w.spec.ExpiryHeight = w.m.Height() + 30
	before := w.m.Chain.State().Balance(w.consumer.ID.Address())
	addr, _ := w.consumer.SubmitWorkload(w.spec, 20_000)
	for _, p := range w.providers {
		refs, _ := p.EligibleData(w.spec)
		auths, _ := p.Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
		w.executors[0].Accept(addr, auths)
	}
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	for w.m.Height() <= w.spec.ExpiryHeight {
		if _, err := w.m.SealBlock(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.consumer.Cancel(addr); err != nil {
		t.Fatal(err)
	}
	if got := w.m.Chain.State().Balance(w.consumer.ID.Address()); got != before {
		t.Fatalf("refund incomplete: %d != %d", got, before)
	}
	st, _ := w.m.WorkloadStateOf(addr)
	if st != StateCancelled {
		t.Fatalf("state = %v", st)
	}
}

func TestInEnclaveDataVerificationZeroesCheater(t *testing.T) {
	// §IV-C: the executor verifies complex requirements directly on the
	// data inside the enclave. Provider 1's metadata claims a balanced
	// sensor dataset, but the shipped data is all-negative junk; the
	// enclave's data predicate rejects it and its reward is zero.
	w := newTestWorld(t, 30, 3, 1)
	w.params.DataPredicate = `samples >= 10 and pos_fraction >= 0.1 and pos_fraction <= 0.9`
	w.spec.Measurement = TrainerMeasurement(w.params.Encode())
	w.spec.Params = w.params.Encode()

	// Replace provider 1's dataset with junk that still matches the
	// *metadata* predicate.
	junk := &ml.Dataset{}
	rng := crypto.NewDRBGFromUint64(77, "junk")
	for i := 0; i < 200; i++ {
		row := make([]float64, 8)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		junk.X = append(junk.X, row)
		junk.Y = append(junk.Y, -1) // single class: pos_fraction = 0
	}
	ref, err := w.providers[1].AddDataset(junk, semantic.Metadata{
		"category": semantic.String("sensor.temperature"),
		"samples":  semantic.Number(200),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.refs[1] = []storage.DataRef{ref} // the cheater authorizes only junk

	before := map[identity.Address]uint64{}
	for _, p := range w.providers {
		before[p.ID.Address()] = w.m.Chain.State().Balance(p.ID.Address())
	}

	// Drive the lifecycle manually so provider 1 contributes the junk.
	addr, err := w.consumer.SubmitWorkload(w.spec, 90_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range w.providers {
		refs := w.refs[i]
		if i != 1 {
			var err error
			refs, err = p.EligibleData(w.spec)
			if err != nil {
				t.Fatal(err)
			}
		}
		auths, err := p.Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
		if err != nil {
			t.Fatal(err)
		}
		w.executors[0].Accept(addr, auths)
	}
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadExecution(addr, w.executors[:1]); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Finalize(addr); err != nil {
		t.Fatal(err)
	}

	cheaterGain := w.m.Chain.State().Balance(w.providers[1].ID.Address()) - before[w.providers[1].ID.Address()]
	if cheaterGain != 0 {
		t.Fatalf("cheating provider earned %d", cheaterGain)
	}
	for _, i := range []int{0, 2} {
		honest := w.m.Chain.State().Balance(w.providers[i].ID.Address()) - before[w.providers[i].ID.Address()]
		if honest == 0 {
			t.Fatalf("honest provider %d unpaid", i)
		}
	}
	// The on-chain scores record the zero.
	_, scores, err := w.m.WorkloadResultOf(addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s.Provider == w.providers[1].ID.Address() && s.Score != 0 {
			t.Fatalf("cheater score = %d", s.Score)
		}
	}
}

func TestTrainerParamsPredicateChangesMeasurement(t *testing.T) {
	a := TrainerParams{Dim: 4, Epochs: 1, Lambda: 1e-3}
	b := a
	b.DataPredicate = `samples >= 10`
	if TrainerMeasurement(a.Encode()) == TrainerMeasurement(b.Encode()) {
		t.Fatal("predicate not covered by the measurement")
	}
	// Round trip.
	got, err := DecodeTrainerParams(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.DataPredicate != b.DataPredicate {
		t.Fatalf("predicate lost: %+v", got)
	}
}

func TestTrainerBadPredicateFailsExecution(t *testing.T) {
	w := newTestWorld(t, 31, 1, 1)
	w.params.DataPredicate = `samples >` // malformed
	w.spec.Measurement = TrainerMeasurement(w.params.Encode())
	w.spec.Params = w.params.Encode()

	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	refs, _ := w.providers[0].EligibleData(w.spec)
	auths, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
	w.executors[0].Accept(addr, auths)
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.executors[0].TrainLocal(addr); err == nil {
		t.Fatal("malformed predicate executed")
	}
}

// deployRewardToken deploys an ERC-20 owned by the consumer with the
// given supply.
func (w *testWorld) deployRewardToken(t *testing.T, supply uint64) identity.Address {
	t.Helper()
	rcpt, err := MustSucceed(w.m.SendAndSeal(w.consumer.ID, identity.ZeroAddress, 0,
		contract.DeployData(token.ERC20CodeName, token.ERC20InitArgs("Reward", "RWD", supply))))
	if err != nil {
		t.Fatal(err)
	}
	var addr identity.Address
	copy(addr[:], rcpt.Return)
	return addr
}

func (w *testWorld) erc20Balance(t *testing.T, tok, who identity.Address) uint64 {
	t.Helper()
	ret, err := w.m.View(who, tok, "balanceOf", token.ERC20BalanceArgs(who))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := contract.NewDecoder(ret).Uint64()
	return v
}

func TestTokenDenominatedLifecycle(t *testing.T) {
	// §III-A: ERC-20 tokens "used to handle any kind of rewards offered
	// by the consumers, which would be split among the providers".
	w := newTestWorld(t, 40, 3, 2)
	tok := w.deployRewardToken(t, 1_000_000)
	w.spec.RewardToken = tok
	w.spec.TokenBudget = 120_000

	addr, err := w.consumer.SubmitWorkload(w.spec, 0) // no native value
	if err != nil {
		t.Fatal(err)
	}
	st, _ := w.m.WorkloadStateOf(addr)
	if st != StateFunding {
		t.Fatalf("state = %v, want funding", st)
	}
	// Providers cannot join before funding completes.
	refs, _ := w.providers[0].EligibleData(w.spec)
	auths, _ := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, w.spec.ExpiryHeight)
	w.executors[0].Accept(addr, auths)
	if err := w.executors[0].Register(addr); err == nil {
		t.Fatal("registration accepted before funding")
	}

	if err := w.consumer.Fund(addr); err != nil {
		t.Fatal(err)
	}
	st, _ = w.m.WorkloadStateOf(addr)
	if st != StateOpen {
		t.Fatalf("state after fund = %v", st)
	}
	if got := w.erc20Balance(t, tok, addr); got != 120_000 {
		t.Fatalf("escrow balance = %d", got)
	}

	// Remaining lifecycle.
	if err := w.executors[0].Register(addr); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		refs, _ := w.providers[i].EligibleData(w.spec)
		a, _ := w.providers[i].Authorize(addr, w.executors[1].ID.Address(), refs, w.spec.ExpiryHeight)
		w.executors[1].Accept(addr, a)
	}
	if err := w.executors[1].Register(addr); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkloadExecution(addr, w.executors); err != nil {
		t.Fatal(err)
	}
	if err := w.consumer.Finalize(addr); err != nil {
		t.Fatal(err)
	}

	// All rewards paid in ERC-20; escrow fully drained.
	var paid uint64
	for _, p := range w.providers {
		bal := w.erc20Balance(t, tok, p.ID.Address())
		if bal == 0 {
			t.Fatalf("provider %s unpaid in tokens", p.ID.Address().Short())
		}
		paid += bal
	}
	for _, e := range w.executors {
		bal := w.erc20Balance(t, tok, e.ID.Address())
		if bal == 0 {
			t.Fatalf("executor %s unpaid in tokens", e.ID.Address().Short())
		}
		paid += bal
	}
	if paid != 120_000 {
		t.Fatalf("token payouts = %d, want 120000", paid)
	}
	if got := w.erc20Balance(t, tok, addr); got != 0 {
		t.Fatalf("escrow residue = %d", got)
	}
}

func TestTokenWorkloadFundRequiresApproval(t *testing.T) {
	w := newTestWorld(t, 41, 1, 1)
	tok := w.deployRewardToken(t, 1_000)
	w.spec.RewardToken = tok
	w.spec.TokenBudget = 500
	addr, _ := w.consumer.SubmitWorkload(w.spec, 0)

	// Direct fund call without approval reverts.
	rcpt, err := w.m.SendAndSeal(w.consumer.ID, addr, 0, contract.CallData("fund", nil))
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Succeeded() {
		t.Fatal("fund succeeded without allowance")
	}
	// Only the consumer may fund.
	rcpt, _ = w.m.SendAndSeal(w.providers[0].ID, addr, 0, contract.CallData("fund", nil))
	if rcpt.Succeeded() {
		t.Fatal("non-consumer funded the workload")
	}
}

func TestTokenWorkloadDisputeRefundsTokens(t *testing.T) {
	w := newTestWorld(t, 42, 2, 2)
	tok := w.deployRewardToken(t, 1_000_000)
	w.spec.RewardToken = tok
	w.spec.TokenBudget = 40_000
	w.executors[1].TamperResult = true

	addr, _ := w.consumer.SubmitWorkload(w.spec, 0)
	if err := w.consumer.Fund(addr); err != nil {
		t.Fatal(err)
	}
	for i, p := range w.providers {
		refs, _ := p.EligibleData(w.spec)
		a, _ := p.Authorize(addr, w.executors[i].ID.Address(), refs, w.spec.ExpiryHeight)
		w.executors[i].Accept(addr, a)
	}
	for _, e := range w.executors {
		if err := e.Register(addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.consumer.Start(addr); err != nil {
		t.Fatal(err)
	}
	_, _ = RunWorkloadExecution(addr, w.executors)
	st, _ := w.m.WorkloadStateOf(addr)
	if st != StateDisputed {
		t.Fatalf("state = %v", st)
	}
	if got := w.erc20Balance(t, tok, w.consumer.ID.Address()); got != 1_000_000 {
		t.Fatalf("consumer token balance after refund = %d", got)
	}
}

func TestSpecTokenValidation(t *testing.T) {
	w := newTestWorld(t, 43, 1, 1)
	bad := *w.spec
	bad.RewardToken = w.m.Deeds // any non-zero address
	bad.TokenBudget = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("token spec without budget accepted")
	}
}

func TestMedianAggregationResistsPoisoning(t *testing.T) {
	// A poisoned local model passes result-consistency (all executors
	// aggregate the same inputs), so only a robust aggregation rule
	// protects the result. Mean collapses; median survives.
	run := func(aggregation string) (WorkloadState, float64) {
		w := newTestWorld(t, 50, 3, 3)
		w.params.Aggregation = aggregation
		w.spec.Measurement = TrainerMeasurement(w.params.Encode())
		w.spec.Params = w.params.Encode()
		w.executors[2].PoisonLocal = true

		addr, err := w.consumer.SubmitWorkload(w.spec, 30_000)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range w.providers {
			refs, _ := p.EligibleData(w.spec)
			auths, _ := p.Authorize(addr, w.executors[i].ID.Address(), refs, w.spec.ExpiryHeight)
			w.executors[i].Accept(addr, auths)
		}
		for _, e := range w.executors {
			if err := e.Register(addr); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.consumer.Start(addr); err != nil {
			t.Fatal(err)
		}
		for _, e := range w.executors {
			if err := e.TrainLocal(addr); err != nil {
				t.Fatal(err)
			}
		}
		shares := make([][]byte, 0, 3)
		for _, e := range w.executors {
			s, _ := e.LocalShare(addr)
			shares = append(shares, s)
		}
		for _, e := range w.executors {
			if err := e.Aggregate(addr, shares); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.consumer.Finalize(addr); err != nil {
			t.Fatal(err)
		}
		st, _ := w.m.WorkloadStateOf(addr)
		payload, err := w.consumer.FetchResult(addr, w.executors[0])
		if err != nil {
			t.Fatal(err)
		}
		model, _, err := DecodeResultModel(payload, w.params.Lambda)
		if err != nil {
			t.Fatal(err)
		}
		return st, ml.Accuracy(model, w.test)
	}

	stMean, accMean := run("mean")
	stMedian, accMedian := run("median")
	// Both complete (hashes agree — this attack is invisible to the
	// consistency check).
	if stMean != StateComplete || stMedian != StateComplete {
		t.Fatalf("states: %v, %v", stMean, stMedian)
	}
	if accMean > 0.7 {
		t.Fatalf("mean aggregation unexpectedly survived poisoning: %v", accMean)
	}
	if accMedian < 0.85 {
		t.Fatalf("median aggregation did not resist poisoning: %v", accMedian)
	}
}

func TestAggregationModeChangesMeasurement(t *testing.T) {
	a := TrainerParams{Dim: 4, Epochs: 1, Lambda: 1e-3}
	b := a
	b.Aggregation = "median"
	if TrainerMeasurement(a.Encode()) == TrainerMeasurement(b.Encode()) {
		t.Fatal("aggregation mode not covered by measurement")
	}
	if _, err := DecodeTrainerParams(b.Encode()); err != nil {
		t.Fatal(err)
	}
	bad := a
	bad.Aggregation = "krum"
	if _, err := DecodeTrainerParams(bad.Encode()); err == nil {
		t.Fatal("unknown aggregation accepted")
	}
}

func TestFetchResultDetectsLyingExecutor(t *testing.T) {
	w := newTestWorld(t, 51, 2, 1)
	addr, _ := w.runLifecycle(t, 10_000)
	// The executor swaps the stored payload after submitting: the
	// consumer's hash check against the chain catches it.
	w.executors[0].results[addr] = []byte("not the attested result")
	if _, err := w.consumer.FetchResult(addr, w.executors[0]); err == nil {
		t.Fatal("mismatched result accepted")
	}
	// An executor with no result at all errors cleanly.
	other, err := NewExecutor(w.m, identity.New("fresh", crypto.NewDRBGFromUint64(88, "x")), w.node)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.consumer.FetchResult(addr, other); err == nil {
		t.Fatal("missing result accepted")
	}
}

func TestExecutorRegisterWithoutAuthorizations(t *testing.T) {
	w := newTestWorld(t, 52, 1, 1)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	if err := w.executors[0].Register(addr); err == nil {
		t.Fatal("registration without authorizations accepted")
	}
	if err := w.executors[0].TrainLocal(addr); err == nil {
		t.Fatal("training without authorizations accepted")
	}
}

func TestAuthorizeRejectsForeignRefs(t *testing.T) {
	w := newTestWorld(t, 53, 2, 1)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	// Provider 0 tries to authorize provider 1's dataset.
	foreign := w.refs[1]
	if _, err := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), foreign, w.spec.ExpiryHeight); err == nil {
		t.Fatal("foreign dataset authorized")
	}
}

func TestExpiredGrantBlocksTraining(t *testing.T) {
	w := newTestWorld(t, 54, 1, 1)
	addr, _ := w.consumer.SubmitWorkload(w.spec, 10_000)
	refs, _ := w.providers[0].EligibleData(w.spec)
	// Grant expires almost immediately.
	shortExpiry := w.m.Height() + 1
	auths, err := w.providers[0].Authorize(addr, w.executors[0].ID.Address(), refs, shortExpiry)
	if err != nil {
		t.Fatal(err)
	}
	w.executors[0].Accept(addr, auths)
	// Burn blocks past the grant expiry.
	for w.m.Height() <= shortExpiry+1 {
		if _, err := w.m.SealBlock(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.executors[0].TrainLocal(addr); err == nil {
		t.Fatal("expired grant released data")
	}
}

func TestMarketChainReplayableByAuditor(t *testing.T) {
	// §II-E trustless audit: a third party replays the exported chain
	// with the same contract code and reaches the identical state —
	// including every workload-lifecycle transition and payout.
	w := newTestWorld(t, 55, 2, 1)
	w.runLifecycle(t, 10_000)

	var buf bytes.Buffer
	if err := w.m.Chain.Export(&buf); err != nil {
		t.Fatal(err)
	}
	rt := contract.NewRuntime()
	for name, code := range map[string]contract.Contract{
		RegistryCodeName:     RegistryContract{},
		WorkloadCodeName:     WorkloadContract{},
		token.ERC20CodeName:  token.ERC20{},
		token.ERC721CodeName: token.ERC721{},
	} {
		if err := rt.RegisterCode(name, code); err != nil {
			t.Fatal(err)
		}
	}
	replayed, err := ledger.Replay(&buf, rt)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.State().Root() != w.m.Chain.State().Root() {
		t.Fatal("auditor state diverges from the live chain")
	}
	if replayed.Height() != w.m.Chain.Height() {
		t.Fatal("auditor height diverges")
	}
	// The audit log is reproduced event for event.
	if len(replayed.Events("")) != len(w.m.Chain.Events("")) {
		t.Fatal("audit log diverges")
	}
}

// TestSealBlockRecoversFromGasOverflow pins the load-shedding behavior
// of sealing: when the mempool holds more executable gas than one block
// admits, SealBlock must seal a partial batch and leave the remainder
// pooled — not reject every proposal and wedge the node (the failure
// the load harness first exposed).
func TestSealBlockRecoversFromGasOverflow(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(77, "seal-gas")
	const accounts = 12
	ids := make([]*identity.Identity, accounts)
	alloc := map[identity.Address]uint64{}
	for i := range ids {
		ids[i] = identity.New("acct", rng.Fork("id"))
		alloc[ids[i].Address()] = 1_000_000
	}
	// 200k gas fits nine 21k-gas transfers per block.
	m, err := New(Config{Seed: 77, GenesisAlloc: alloc, BlockGasLimit: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		for k := 0; k < 3; k++ {
			if err := m.Submit(m.SignedTx(id, ids[0].Address(), 1, nil)); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := m.Pool.Len()
	sealed := 0
	for i := 0; i < 20 && m.Pool.Len() > 0; i++ {
		b, err := m.SealBlock()
		if err != nil {
			t.Fatalf("seal %d with %d pending: %v", i, m.Pool.Len(), err)
		}
		if b.Header.GasUsed > m.Chain.GasLimit() {
			t.Fatalf("block %d used %d gas over the %d limit", b.Header.Height, b.Header.GasUsed, m.Chain.GasLimit())
		}
		sealed += len(b.Txs)
	}
	if m.Pool.Len() != 0 {
		t.Fatalf("backlog not drained: %d transactions still pending", m.Pool.Len())
	}
	if sealed != total {
		t.Fatalf("sealed %d of %d submitted transactions", sealed, total)
	}
}
