package market

import (
	"testing"

	"pds2/internal/chainstore"
	"pds2/internal/crypto"
	"pds2/internal/identity"
)

func TestOpenFreshAndReopenResumes(t *testing.T) {
	dir := t.TempDir()
	rng := crypto.NewDRBGFromUint64(7, "durable-test")
	alice := identity.New("alice", rng.Fork("alice"))
	bob := identity.New("bob", rng.Fork("bob"))
	cfg := Config{
		Seed: 7,
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000_000,
			bob.Address():   1_000_000,
		},
	}

	st, err := chainstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if m.Store() != st {
		t.Fatal("market not bound to store")
	}
	// The setup blocks (registry, deeds, wiring) landed in the log.
	if last, ok := st.LastHeight(); !ok || last != m.Height() {
		t.Fatalf("log at %d, chain at %d", last, m.Height())
	}

	// Traffic: transfers, then a snapshot, then more transfers so the
	// reopen exercises snapshot + tail.
	for i := 0; i < 3; i++ {
		if _, err := MustSucceed(m.SendAndSeal(alice, bob.Address(), 100, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.WriteSnapshot(m.Chain.ExportSnapshot()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := MustSucceed(m.SendAndSeal(bob, alice.Address(), 50, nil)); err != nil {
			t.Fatal(err)
		}
	}
	height, root := m.Height(), m.Chain.State().Root()
	registry, deeds := m.Registry, m.Deeds
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same seed, restored from snapshot + tail.
	st2, err := chainstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	m2, err := Open(cfg, st2)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Height() != height {
		t.Fatalf("reopened height = %d, want %d", m2.Height(), height)
	}
	if m2.Chain.State().Root() != root {
		t.Fatal("reopened state root diverges")
	}
	if m2.Chain.Base() == 0 {
		t.Fatal("reopen did not restore from the snapshot")
	}
	if m2.Registry != registry || m2.Deeds != deeds {
		t.Fatal("contract addresses not rebound from store metadata")
	}

	// The reopened market seals: authority keys re-derived from the
	// seed, timestamp resumed past the head block.
	if _, err := MustSucceed(m2.SendAndSeal(alice, bob.Address(), 10, nil)); err != nil {
		t.Fatalf("reopened market cannot seal: %v", err)
	}

	// Contract state survived: the registry still answers views.
	if _, err := m2.Workloads(); err != nil {
		t.Fatalf("registry view after reopen: %v", err)
	}
}

func TestOpenRejectsWrongSeed(t *testing.T) {
	dir := t.TempDir()
	st, err := chainstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Seed: 1}, st); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := chainstore.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := Open(Config{Seed: 2}, st2); err == nil {
		t.Fatal("reopen with a different seed succeeded")
	}
}

func TestOpenNilStoreIsInMemory(t *testing.T) {
	m, err := Open(Config{Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Store() != nil {
		t.Fatal("nil store produced a bound market")
	}
}
