package market

import (
	"errors"
	"fmt"

	"pds2/internal/chainstore"
	"pds2/internal/contract"
	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/tee"
	"pds2/internal/telemetry"
	"pds2/internal/token"
)

// Market instrumentation: the Fig. 2 lifecycle stage durations
// (submit → match → execute → settle) plus transaction round-trip time
// through the convenience path. The matching spans live on the tracer;
// see Market.trackLifecycle.
var (
	mStageSubmit  = telemetry.H("market.stage.submit_seconds", telemetry.TimeBuckets)
	mStageMatch   = telemetry.H("market.stage.match_seconds", telemetry.TimeBuckets)
	mStageExecute = telemetry.H("market.stage.execute_seconds", telemetry.TimeBuckets)
	mStageSettle  = telemetry.H("market.stage.settle_seconds", telemetry.TimeBuckets)
	mSendSeal     = telemetry.H("market.tx.sendseal_seconds", telemetry.TimeBuckets)
	mSubmitted    = telemetry.C("market.workloads.submitted_total")
	mFinalized    = telemetry.C("market.workloads.finalized_total")
	mPolicyDenied = telemetry.C("market.policy.denials_total")
	logMarket     = telemetry.L("market")
)

// ExecutorHeartbeat is the liveness signal for the execution path: it
// beats whenever an executor trains or aggregates, and the API server's
// "market.executors" health check degrades when it goes stale.
var ExecutorHeartbeat = telemetry.NewHeartbeat(0)

// Config parameterizes a Market instance.
type Config struct {
	// Seed drives all deterministic randomness (keys, nonces).
	Seed uint64

	// GenesisAlloc funds accounts at genesis, in native tokens.
	GenesisAlloc map[identity.Address]uint64

	// Authorities optionally overrides the PoA validator set; by default
	// the market creates a single governor authority.
	Authorities []*identity.Identity

	// MempoolSize bounds the pending-transaction pool; <= 0 selects
	// ledger.DefaultMempoolSize.
	MempoolSize int

	// BlockGasLimit overrides the chain's per-block gas budget; 0
	// selects ledger.DefaultBlockGasLimit. Load rigs raise it so
	// block packing, not an artificial gas ceiling, bounds throughput.
	BlockGasLimit uint64

	// ExecWorkers bounds the ledger's optimistic parallel-execution
	// worker pool; 0 selects GOMAXPROCS, 1 forces serial execution.
	ExecWorkers int

	// ParallelMinBatch is the smallest block routed through the
	// parallel executor; 0 selects the ledger default.
	ParallelMinBatch int
}

// Market is one deployment of the PDS² governance layer: a
// proof-of-authority chain running the contract runtime with the
// registry, workload, and token contracts registered, plus the quoting
// authority that anchors executor attestation.
type Market struct {
	Chain   *ledger.Chain
	Runtime *contract.Runtime
	Pool    *ledger.Mempool
	QA      *tee.QuotingAuthority

	// Registry is the address of the deployed registry contract.
	Registry identity.Address

	// Deeds is the ERC-721 contract deeding registered datasets
	// (§III-A: NFTs for "indivisible, unique assets"). The registry
	// holds its minter role and mints a deed per data registration.
	Deeds identity.Address

	authorities []*identity.Identity
	rng         *crypto.DRBG
	timestamp   uint64

	// store, when non-nil, is the durable chain store every sealed or
	// imported block lands in (wired by Open).
	store *chainstore.Store

	// lifecycles holds the open root telemetry span per workload, so
	// every stage (submit, match, execute, settle) parents under one
	// "workload.lifecycle" span. Entries are nil while telemetry is
	// disabled and are removed when the lifecycle settles.
	lifecycles map[identity.Address]*telemetry.ActiveSpan

	// DefaultGasLimit is attached to transactions sent through helpers.
	DefaultGasLimit uint64
}

// New builds a market: chain, runtime, quoting authority and a deployed
// registry contract owned by the first authority.
func New(cfg Config) (*Market, error) {
	rng := crypto.NewDRBGFromUint64(cfg.Seed, "market")
	rt, err := NewRuntime()
	if err != nil {
		return nil, err
	}
	authorities := cfg.Authorities
	if len(authorities) == 0 {
		authorities = []*identity.Identity{identity.New("governor", rng.Fork("governor"))}
	}
	addrs := make([]identity.Address, len(authorities))
	alloc := make(map[identity.Address]uint64, len(cfg.GenesisAlloc)+len(authorities))
	for a, v := range cfg.GenesisAlloc {
		alloc[a] = v
	}
	for i, auth := range authorities {
		addrs[i] = auth.Address()
		if alloc[auth.Address()] == 0 {
			alloc[auth.Address()] = 1_000_000 // gas-free chain; funds for deploys
		}
	}
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities:      addrs,
		BlockGasLimit:    cfg.BlockGasLimit,
		Applier:          rt,
		GenesisAlloc:     alloc,
		ExecWorkers:      cfg.ExecWorkers,
		ParallelMinBatch: cfg.ParallelMinBatch,
	})
	if err != nil {
		return nil, err
	}
	m := &Market{
		Chain:           chain,
		Runtime:         rt,
		Pool:            ledger.NewMempool(cfg.MempoolSize),
		QA:              tee.NewQuotingAuthority(rng.Fork("qa")),
		authorities:     authorities,
		rng:             rng,
		DefaultGasLimit: 40_000_000,
		lifecycles:      make(map[identity.Address]*telemetry.ActiveSpan),
	}
	// Deploy the registry.
	rcpt, err := m.SendAndSeal(authorities[0], identity.ZeroAddress, 0, contract.DeployData(RegistryCodeName, nil))
	if err != nil {
		return nil, fmt.Errorf("market: deploy registry: %w", err)
	}
	if !rcpt.Succeeded() {
		return nil, fmt.Errorf("market: deploy registry: %s", rcpt.Err)
	}
	copy(m.Registry[:], rcpt.Return)

	// Deploy the data-deeds NFT, hand its minter role to the registry,
	// and wire the registry to mint a deed per dataset registration.
	rcpt, err = MustSucceed(m.SendAndSeal(authorities[0], identity.ZeroAddress, 0,
		contract.DeployData(token.ERC721CodeName, token.ERC721InitArgs("PDS2 Data Deeds"))))
	if err != nil {
		return nil, fmt.Errorf("market: deploy deeds: %w", err)
	}
	copy(m.Deeds[:], rcpt.Return)
	if _, err := MustSucceed(m.SendAndSeal(authorities[0], m.Deeds,
		0, token.ERC721TransferMinterData(m.Registry))); err != nil {
		return nil, fmt.Errorf("market: transfer deed minter: %w", err)
	}
	if _, err := MustSucceed(m.SendAndSeal(authorities[0], m.Registry, 0,
		contract.CallData("setDeeds", contract.NewEncoder().Address(m.Deeds).Bytes()))); err != nil {
		return nil, fmt.Errorf("market: wire deeds: %w", err)
	}
	return m, nil
}

// DeedOwner returns the current holder of a dataset's ERC-721 deed.
func (m *Market) DeedOwner(dataID crypto.Digest) (identity.Address, error) {
	raw, err := m.View(identity.ZeroAddress, m.Deeds, "ownerOf", token.ERC721OwnerArgs(dataID))
	if err != nil {
		return identity.ZeroAddress, err
	}
	return contract.NewDecoder(raw).Address()
}

// Rng returns the market's deterministic randomness source.
func (m *Market) Rng() *crypto.DRBG { return m.rng }

// Height returns the current chain height.
func (m *Market) Height() uint64 { return m.Chain.Height() }

// Submit adds a signed transaction to the mempool. When the pool is
// full it prunes transactions made stale by chain progress and retries
// once, so a pool clogged with already-executed entries never locks out
// live traffic. Because Prune reads chain state, Submit must be
// serialized against sealing like every other Market method; admission
// paths that cannot take that lock can call Pool.Add directly (the
// mempool itself is safe for concurrent use) and fall back to Submit
// only on ErrMempoolFull.
func (m *Market) Submit(tx *ledger.Transaction) error {
	err := m.Pool.Add(tx)
	if errors.Is(err, ledger.ErrMempoolFull) && m.Pool.Prune(m.Chain.State()) > 0 {
		err = m.Pool.Add(tx)
	}
	return err
}

// SealBlock packages the executable mempool transactions into the next
// block, signed by the rotating authority.
func (m *Market) SealBlock() (*ledger.Block, error) {
	return m.SealBlockAt(m.timestamp + 1)
}

// SealBlockAt is SealBlock with an explicit logical timestamp — the
// entry point for sealers whose clock may be skewed (fault-injection
// chaos runs, multi-authority deployments with drifting clocks). The
// chain enforces timestamp monotonicity, so a seal behind the parent's
// timestamp fails without consuming the batch; a seal ahead succeeds
// and advances the market's logical clock to the given value.
func (m *Market) SealBlockAt(timestamp uint64) (block *ledger.Block, err error) {
	// market.seal attributes batch building and mempool drain; the chain
	// re-labels execution ledger.seal inside ProposeBlock, so a profile
	// splits "picking transactions" from "executing them".
	telemetry.WithComponent("market.seal", func() { block, err = m.sealBlockAt(timestamp) })
	return block, err
}

func (m *Market) sealBlockAt(timestamp uint64) (*ledger.Block, error) {
	height := m.Chain.Height() + 1
	proposer := m.authorities[(height-1)%uint64(len(m.authorities))]
	for {
		batch := m.Pool.NextBatch(m.Chain.State(), 10_000, m.Chain.GasLimit())
		block, err := m.Chain.ProposeBlock(proposer, timestamp, batch)
		// NextBatch already packs by declared gas, so overflow here means
		// some transaction consumed more than it declared (a misbehaving
		// applier). Halve the batch until it fits — the remainder stays
		// pooled for the next seal — so a node under sustained load drains
		// its backlog instead of wedging on every seal attempt.
		for errors.Is(err, ledger.ErrBlockGasLimit) && len(batch) > 1 {
			batch = batch[:len(batch)/2]
			block, err = m.Chain.ProposeBlock(proposer, timestamp, batch)
		}
		if errors.Is(err, ledger.ErrBlockGasLimit) && len(batch) == 1 {
			// A single transaction that cannot fit any block would wedge
			// sealing forever: every future batch starts with it and fails
			// the same way. Evict it and rebuild the batch.
			if m.Pool.EvictOvergas(batch[0]) {
				continue
			}
			return nil, err
		}
		if err != nil {
			return nil, err
		}
		if timestamp > m.timestamp {
			m.timestamp = timestamp
		}
		m.Pool.Remove(batch)
		return block, nil
	}
}

// Timestamp returns the market's current logical clock (the timestamp
// of the last sealed block).
func (m *Market) Timestamp() uint64 { return m.timestamp }

// SignedTx builds a signed transaction from the identity using its
// current on-chain nonce plus its pending mempool transactions.
func (m *Market) SignedTx(from *identity.Identity, to identity.Address, value uint64, data []byte) *ledger.Transaction {
	nonce := m.Pool.NextNonce(from.Address(), m.Chain.State().Nonce(from.Address()))
	return ledger.SignTx(from, to, value, nonce, m.DefaultGasLimit, data)
}

// trackLifecycle registers the open root span for a workload. A nil
// span (telemetry disabled) is ignored.
func (m *Market) trackLifecycle(w identity.Address, sp *telemetry.ActiveSpan) {
	if sp == nil {
		return
	}
	m.lifecycles[w] = sp
}

// lifecycleCtx returns the root span context for a workload, or the
// zero context when no lifecycle span is open — stage spans then
// become roots of their own traces.
func (m *Market) lifecycleCtx(w identity.Address) telemetry.SpanContext {
	return m.lifecycles[w].Context()
}

// endLifecycle closes and forgets a workload's root span.
func (m *Market) endLifecycle(w identity.Address) {
	if sp, ok := m.lifecycles[w]; ok {
		sp.End()
		delete(m.lifecycles, w)
	}
}

// SendAndSeal signs, submits and seals a transaction in its own block,
// returning the receipt — the convenience path used by actors and tests.
func (m *Market) SendAndSeal(from *identity.Identity, to identity.Address, value uint64, data []byte) (*ledger.Receipt, error) {
	timer := mSendSeal.Time()
	defer timer.Stop()
	tx := m.SignedTx(from, to, value, data)
	if err := m.Submit(tx); err != nil {
		return nil, err
	}
	if _, err := m.SealBlock(); err != nil {
		return nil, err
	}
	rcpt, ok := m.Chain.Receipt(tx.Hash())
	if !ok {
		return nil, errors.New("market: transaction not included")
	}
	return rcpt, nil
}

// MustSucceed converts a failed receipt into an error.
func MustSucceed(rcpt *ledger.Receipt, err error) (*ledger.Receipt, error) {
	if err != nil {
		return nil, err
	}
	if !rcpt.Succeeded() {
		return rcpt, fmt.Errorf("market: transaction reverted: %s", rcpt.Err)
	}
	return rcpt, nil
}

// View performs a read-only contract call.
func (m *Market) View(caller, to identity.Address, method string, args []byte) ([]byte, error) {
	return m.Runtime.View(m.Chain.State(), caller, to, method, args)
}

// WorkloadStateOf reads a workload contract's lifecycle state.
func (m *Market) WorkloadStateOf(addr identity.Address) (WorkloadState, error) {
	raw, err := m.View(identity.ZeroAddress, addr, "state", nil)
	if err != nil {
		return 0, err
	}
	v, err := contract.NewDecoder(raw).Uint64()
	return WorkloadState(v), err
}

// WorkloadSpecOf reads a workload contract's spec.
func (m *Market) WorkloadSpecOf(addr identity.Address) (*Spec, error) {
	raw, err := m.View(identity.ZeroAddress, addr, "spec", nil)
	if err != nil {
		return nil, err
	}
	return DecodeSpec(raw)
}

// WorkloadResultOf reads the accepted result hash and scores.
func (m *Market) WorkloadResultOf(addr identity.Address) (crypto.Digest, []Score, error) {
	raw, err := m.View(identity.ZeroAddress, addr, "result", nil)
	if err != nil {
		return crypto.ZeroDigest, nil, err
	}
	d := contract.NewDecoder(raw)
	h, err := d.Digest()
	if err != nil {
		return crypto.ZeroDigest, nil, err
	}
	blob, err := d.Blob()
	if err != nil {
		return crypto.ZeroDigest, nil, err
	}
	if len(blob) == 0 {
		return h, nil, nil
	}
	scores, err := DecodeScores(blob)
	return h, scores, err
}

// Workloads lists all workload contract addresses in the registry.
func (m *Market) Workloads() ([]identity.Address, error) {
	raw, err := m.View(identity.ZeroAddress, m.Registry, "workloadCount", nil)
	if err != nil {
		return nil, err
	}
	n, err := contract.NewDecoder(raw).Uint64()
	if err != nil {
		return nil, err
	}
	out := make([]identity.Address, 0, n)
	for i := uint64(0); i < n; i++ {
		raw, err := m.View(identity.ZeroAddress, m.Registry, "workloadAt",
			contract.NewEncoder().Uint64(i).Bytes())
		if err != nil {
			return nil, err
		}
		addr, err := contract.NewDecoder(raw).Address()
		if err != nil {
			return nil, err
		}
		out = append(out, addr)
	}
	return out, nil
}
