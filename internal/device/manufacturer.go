package device

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// Manufacturer endorsement (§IV-B): "data reliability depends on the
// security of the device and the quality of the sensors, the signature
// also serves as a 'seal of quality'. This influences the price of the
// device according to the trust that buyers have in the manufacturer."
//
// A Manufacturer signs the keys of the devices it produces; verifiers
// hold a trust level per manufacturer and can require a minimum level,
// and workloads can weight rewards by the quality tier of the data's
// source devices.

// TrustLevel grades a manufacturer in a verifier's policy.
type TrustLevel int

// Trust levels, ordered.
const (
	TrustUnknown TrustLevel = iota
	TrustBasic
	TrustCertified
)

// String implements fmt.Stringer.
func (l TrustLevel) String() string {
	switch l {
	case TrustBasic:
		return "basic"
	case TrustCertified:
		return "certified"
	default:
		return "unknown"
	}
}

// Manufacturer holds the vendor signing key used to endorse device keys
// at production time.
type Manufacturer struct {
	id   *identity.Identity
	Name string
}

// NewManufacturer creates a vendor with a deterministic key.
func NewManufacturer(name string, rng *crypto.DRBG) *Manufacturer {
	return &Manufacturer{id: identity.New("mfr-"+name, rng), Name: name}
}

// Address returns the manufacturer's identity address.
func (m *Manufacturer) Address() identity.Address { return m.id.Address() }

// PublicKey returns the manufacturer's verification key.
func (m *Manufacturer) PublicKey() ed25519.PublicKey { return m.id.PublicKey() }

// DeviceCert is the manufacturer's endorsement of one device key.
type DeviceCert struct {
	DevicePub    []byte           `json:"device_pub"`
	Model        string           `json:"model"`
	Manufacturer identity.Address `json:"manufacturer"`
	MfrPub       []byte           `json:"mfr_pub"`
	Sig          []byte           `json:"sig"`
}

func deviceCertBytes(devicePub []byte, model string, mfr identity.Address) []byte {
	buf := make([]byte, 0, len(devicePub)+len(model)+identity.AddressSize+24)
	buf = append(buf, "pds2/device-cert/v1"...)
	buf = append(buf, devicePub...)
	buf = append(buf, model...)
	buf = append(buf, mfr[:]...)
	return buf
}

// Endorse signs a device's public key, binding it to the model name.
func (m *Manufacturer) Endorse(d *Device) DeviceCert {
	return DeviceCert{
		DevicePub:    d.PublicKey(),
		Model:        d.Model,
		Manufacturer: m.id.Address(),
		MfrPub:       m.id.PublicKey(),
		Sig:          m.id.Sign(deviceCertBytes(d.PublicKey(), d.Model, m.id.Address())),
	}
}

// Endorsement verification errors.
var (
	ErrCertForged      = errors.New("device: manufacturer certificate signature invalid")
	ErrUntrustedVendor = errors.New("device: manufacturer below required trust level")
)

// Verify checks the endorsement's internal consistency: the embedded
// manufacturer key matches the claimed address and the signature covers
// the device key and model.
func (c DeviceCert) Verify() error {
	if identity.AddressFromPub(c.MfrPub) != c.Manufacturer {
		return fmt.Errorf("%w: key/address mismatch", ErrCertForged)
	}
	if !identity.Verify(c.MfrPub, deviceCertBytes(c.DevicePub, c.Model, c.Manufacturer), c.Sig) {
		return ErrCertForged
	}
	return nil
}

// TrustPolicy maps manufacturers to trust levels and enforces a minimum
// level for device admission.
type TrustPolicy struct {
	levels  map[identity.Address]TrustLevel
	Minimum TrustLevel
}

// NewTrustPolicy creates a policy requiring at least min trust.
func NewTrustPolicy(min TrustLevel) *TrustPolicy {
	return &TrustPolicy{levels: make(map[identity.Address]TrustLevel), Minimum: min}
}

// SetLevel grades a manufacturer.
func (p *TrustPolicy) SetLevel(mfr identity.Address, level TrustLevel) {
	p.levels[mfr] = level
}

// LevelOf returns the manufacturer's grade (TrustUnknown if ungraded).
func (p *TrustPolicy) LevelOf(mfr identity.Address) TrustLevel {
	return p.levels[mfr]
}

// AdmitDevice verifies a device endorsement against the policy and, on
// success, registers the device in the registry so its readings verify.
// It returns the manufacturer's trust level, which callers can use to
// weight rewards by source quality.
func (p *TrustPolicy) AdmitDevice(reg *identity.Registry, cert DeviceCert) (TrustLevel, error) {
	if err := cert.Verify(); err != nil {
		return TrustUnknown, err
	}
	level := p.LevelOf(cert.Manufacturer)
	if level < p.Minimum {
		return level, fmt.Errorf("%w: %s is %v, need >= %v",
			ErrUntrustedVendor, cert.Manufacturer.Short(), level, p.Minimum)
	}
	if _, err := reg.Register(cert.DevicePub, identity.RoleDevice); err != nil {
		return level, err
	}
	return level, nil
}
