package device

import (
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

func fleet(t *testing.T, n int) *Fleet {
	t.Helper()
	f, err := NewFleet(n, "tk", crypto.NewDRBGFromUint64(1, "device-test"))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestProduceVerify(t *testing.T) {
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	r := f.Devices[0].Produce([]byte("21.5C"), 1000)
	if err := v.Verify(r, 0); err != nil {
		t.Fatalf("valid reading rejected: %v", err)
	}
}

func TestSequenceMonotonic(t *testing.T) {
	f := fleet(t, 1)
	d := f.Devices[0]
	r1 := d.Produce([]byte("a"), 1)
	r2 := d.Produce([]byte("b"), 2)
	if r2.Seq != r1.Seq+1 {
		t.Fatalf("seq %d after %d", r2.Seq, r1.Seq)
	}
}

func TestReplayRejected(t *testing.T) {
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	r := f.Devices[0].Produce([]byte("x"), 1)
	if err := v.Verify(r, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(r, 0); !errors.Is(err, ErrReplay) {
		t.Fatalf("want ErrReplay, got %v", err)
	}
}

func TestResellRejected(t *testing.T) {
	// The same payload re-signed with a fresh sequence number is a
	// resale attempt; the duplicate-payload check catches it.
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	d := f.Devices[0]
	r1 := d.Produce([]byte("same data"), 1)
	r2 := d.Produce([]byte("same data"), 2)
	if err := v.Verify(r1, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(r2, 0); !errors.Is(err, ErrDuplicateData) {
		t.Fatalf("want ErrDuplicateData, got %v", err)
	}
}

func TestSamePayloadDifferentDevicesAllowed(t *testing.T) {
	// Two devices can legitimately observe the same value.
	f := fleet(t, 2)
	v := NewVerifier(f.Registry)
	r1 := f.Devices[0].Produce([]byte("21C"), 1)
	r2 := f.Devices[1].Produce([]byte("21C"), 1)
	if err := v.Verify(r1, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Verify(r2, 0); err != nil {
		t.Fatalf("cross-device duplicate rejected: %v", err)
	}
}

func TestForgedDeviceRejected(t *testing.T) {
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	rogue := New("rogue", crypto.NewDRBGFromUint64(99, "rogue"))
	r := rogue.Produce([]byte("fake"), 1)
	if err := v.Verify(r, 0); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
}

func TestTamperedPayloadRejected(t *testing.T) {
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	r := f.Devices[0].Produce([]byte("original"), 1)
	r.Payload = []byte("tampered")
	if err := v.Verify(r, 0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestImpersonationRejected(t *testing.T) {
	// Mallory signs with her own key but claims a registered device's
	// address.
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	rogue := New("rogue", crypto.NewDRBGFromUint64(98, "rogue"))
	r := rogue.Produce([]byte("fake"), 1)
	r.Device = f.Devices[0].Address()
	if err := v.Verify(r, 0); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("want ErrBadSignature, got %v", err)
	}
}

func TestTimestampWindow(t *testing.T) {
	f := fleet(t, 1)
	v := NewVerifier(f.Registry)
	v.MaxClockSkew = 60
	ok := f.Devices[0].Produce([]byte("a"), 1000)
	if err := v.Verify(ok, 1030); err != nil {
		t.Fatalf("in-window rejected: %v", err)
	}
	stale := f.Devices[0].Produce([]byte("b"), 1000)
	if err := v.Verify(stale, 2000); !errors.Is(err, ErrStaleTime) {
		t.Fatalf("want ErrStaleTime, got %v", err)
	}
}

func TestDeviceClockMonotone(t *testing.T) {
	f := fleet(t, 1)
	d := f.Devices[0]
	d.Produce([]byte("a"), 100)
	r := d.Produce([]byte("b"), 50) // clock went backwards
	if r.Timestamp != 100 {
		t.Fatalf("timestamp regressed to %d", r.Timestamp)
	}
}

func TestVerifyBatchMixed(t *testing.T) {
	f := fleet(t, 2)
	v := NewVerifier(f.Registry)
	good1 := f.Devices[0].Produce([]byte("a"), 1)
	good2 := f.Devices[1].Produce([]byte("b"), 1)
	tampered := f.Devices[0].Produce([]byte("c"), 2)
	tampered.Payload = []byte("evil")
	replay := good2

	accepted, rejected := v.VerifyBatch([]Reading{good1, good2, tampered, replay}, 0)
	if len(accepted) != 2 {
		t.Fatalf("accepted %d", len(accepted))
	}
	if len(rejected) != 2 {
		t.Fatalf("rejected %v", rejected)
	}
	if !errors.Is(rejected[2], ErrBadSignature) || !errors.Is(rejected[3], ErrReplay) {
		t.Fatalf("rejection reasons: %v", rejected)
	}
}

func TestFleetRegistryRoles(t *testing.T) {
	f := fleet(t, 3)
	if f.Registry.Len() != 3 {
		t.Fatalf("registered %d", f.Registry.Len())
	}
	for _, d := range f.Devices {
		if !f.Registry.HasRole(d.Address(), identity.RoleDevice) {
			t.Fatal("device role missing")
		}
	}
}

func TestReadingIDStableAcrossSeq(t *testing.T) {
	f := fleet(t, 1)
	d := f.Devices[0]
	r1 := d.Produce([]byte("same"), 1)
	r2 := d.Produce([]byte("same"), 2)
	if r1.ID() != r2.ID() {
		t.Fatal("reading ID should depend on device+payload only")
	}
	r3 := d.Produce([]byte("different"), 3)
	if r1.ID() == r3.ID() {
		t.Fatal("different payloads share an ID")
	}
}
