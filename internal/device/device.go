// Package device implements the data-authenticity pipeline of §IV-B:
// simulated IoT devices that sign every reading at the source ("data
// should be signed directly by the device to minimize the risk of
// forgery, and include timestamps to prevent the user from creating
// multiple copies and reselling them"), and the executor-side verifier
// that rejects forged, tampered, replayed and resold readings.
package device

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

// Reading is one signed, timestamped data point from a device.
type Reading struct {
	Device    identity.Address `json:"device"`
	Seq       uint64           `json:"seq"`       // per-device monotonic counter
	Timestamp uint64           `json:"timestamp"` // device clock, seconds
	Payload   []byte           `json:"payload"`
	Pub       []byte           `json:"pub"`
	Sig       []byte           `json:"sig"`
}

func readingSigningBytes(device identity.Address, seq, ts uint64, payload []byte) []byte {
	buf := make([]byte, 0, identity.AddressSize+16+len(payload)+16)
	buf = append(buf, "pds2/reading/v1"...)
	buf = append(buf, device[:]...)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint64(buf, ts)
	buf = append(buf, payload...)
	return buf
}

// ID returns a digest identifying this reading's content (device, seq,
// payload), used for duplicate detection across submissions.
func (r *Reading) ID() crypto.Digest {
	return crypto.HashConcat([]byte("pds2/reading-id"), r.Device[:], r.Payload)
}

// Device is a simulated IoT device with a factory-installed signing key
// and a monotonic sequence counter.
type Device struct {
	id    *identity.Identity
	Model string
	seq   uint64
	clock uint64
}

// New creates a device whose key derives deterministically from rng.
func New(model string, rng *crypto.DRBG) *Device {
	return &Device{id: identity.New("device-"+model, rng), Model: model}
}

// Address returns the device's identity address.
func (d *Device) Address() identity.Address { return d.id.Address() }

// PublicKey returns the device's verification key; in deployment it
// would ship in the manufacturer's certificate.
func (d *Device) PublicKey() []byte { return d.id.PublicKey() }

// Produce signs a new reading. The device clock must move forward; the
// sequence counter always does.
func (d *Device) Produce(payload []byte, timestamp uint64) Reading {
	d.seq++
	if timestamp > d.clock {
		d.clock = timestamp
	}
	r := Reading{
		Device:    d.id.Address(),
		Seq:       d.seq,
		Timestamp: d.clock,
		Payload:   append([]byte(nil), payload...),
		Pub:       d.id.PublicKey(),
	}
	r.Sig = d.id.Sign(readingSigningBytes(r.Device, r.Seq, r.Timestamp, r.Payload))
	return r
}

// Verification errors.
var (
	ErrUnknownDevice = errors.New("device: signer is not a registered device")
	ErrBadSignature  = errors.New("device: invalid signature")
	ErrReplay        = errors.New("device: sequence number already seen")
	ErrDuplicateData = errors.New("device: payload already sold")
	ErrStaleTime     = errors.New("device: timestamp outside acceptance window")
)

// Verifier is the executor-side authenticity checker: signature against
// the registered device key, monotonic sequence numbers (anti-replay),
// duplicate-payload detection (anti-reselling) and a timestamp window.
type Verifier struct {
	registry *identity.Registry
	lastSeq  map[identity.Address]uint64
	seen     map[crypto.Digest]bool

	// MaxClockSkew bounds |reading.Timestamp - now| when now > 0 in
	// Verify. Zero disables the check.
	MaxClockSkew uint64
}

// NewVerifier creates a verifier over the given device registry.
func NewVerifier(registry *identity.Registry) *Verifier {
	return &Verifier{
		registry: registry,
		lastSeq:  make(map[identity.Address]uint64),
		seen:     make(map[crypto.Digest]bool),
	}
}

// Verify checks one reading and, on success, records its sequence number
// and payload digest so that replays and resales of the same data fail.
// now is the verifier's clock (0 disables timestamp checking).
func (v *Verifier) Verify(r Reading, now uint64) error {
	if !v.registry.HasRole(r.Device, identity.RoleDevice) {
		return fmt.Errorf("%w: %s", ErrUnknownDevice, r.Device.Short())
	}
	if identity.AddressFromPub(r.Pub) != r.Device {
		return fmt.Errorf("%w: key does not match device address", ErrBadSignature)
	}
	if !identity.Verify(r.Pub, readingSigningBytes(r.Device, r.Seq, r.Timestamp, r.Payload), r.Sig) {
		return ErrBadSignature
	}
	if r.Seq <= v.lastSeq[r.Device] {
		return fmt.Errorf("%w: seq %d <= %d", ErrReplay, r.Seq, v.lastSeq[r.Device])
	}
	if v.seen[r.ID()] {
		return ErrDuplicateData
	}
	if v.MaxClockSkew > 0 && now > 0 {
		lo := now - v.MaxClockSkew
		hi := now + v.MaxClockSkew
		if r.Timestamp < lo || r.Timestamp > hi {
			return fmt.Errorf("%w: ts %d, window [%d, %d]", ErrStaleTime, r.Timestamp, lo, hi)
		}
	}
	v.lastSeq[r.Device] = r.Seq
	v.seen[r.ID()] = true
	return nil
}

// VerifyBatch verifies a batch and returns the accepted readings plus
// per-index errors for the rejected ones.
func (v *Verifier) VerifyBatch(readings []Reading, now uint64) (accepted []Reading, rejected map[int]error) {
	rejected = make(map[int]error)
	for i, r := range readings {
		if err := v.Verify(r, now); err != nil {
			rejected[i] = err
			continue
		}
		accepted = append(accepted, r)
	}
	return accepted, rejected
}

// Fleet is a convenience bundle of devices registered in one registry.
type Fleet struct {
	Devices  []*Device
	Registry *identity.Registry
}

// NewFleet creates n devices of the given model and registers them.
func NewFleet(n int, model string, rng *crypto.DRBG) (*Fleet, error) {
	f := &Fleet{Registry: identity.NewRegistry()}
	for i := 0; i < n; i++ {
		d := New(fmt.Sprintf("%s-%04d", model, i), rng.Fork(fmt.Sprintf("device-%d", i)))
		if _, err := f.Registry.Register(d.PublicKey(), identity.RoleDevice); err != nil {
			return nil, err
		}
		f.Devices = append(f.Devices, d)
	}
	return f, nil
}
