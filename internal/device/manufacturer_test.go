package device

import (
	"errors"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/identity"
)

func TestManufacturerEndorsementAdmitsDevice(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(1, "mfr-test")
	mfr := NewManufacturer("acme", rng)
	d := New("tk-1", rng)
	cert := mfr.Endorse(d)
	if err := cert.Verify(); err != nil {
		t.Fatalf("valid endorsement rejected: %v", err)
	}

	policy := NewTrustPolicy(TrustBasic)
	policy.SetLevel(mfr.Address(), TrustCertified)
	reg := identity.NewRegistry()
	level, err := policy.AdmitDevice(reg, cert)
	if err != nil {
		t.Fatal(err)
	}
	if level != TrustCertified {
		t.Fatalf("level = %v", level)
	}
	// The admitted device's readings now verify.
	v := NewVerifier(reg)
	if err := v.Verify(d.Produce([]byte("r"), 1), 0); err != nil {
		t.Fatalf("admitted device rejected: %v", err)
	}
}

func TestUntrustedManufacturerRejected(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(2, "mfr-test")
	mfr := NewManufacturer("noname", rng)
	d := New("x", rng)
	cert := mfr.Endorse(d)

	policy := NewTrustPolicy(TrustBasic) // noname is ungraded = unknown
	reg := identity.NewRegistry()
	if _, err := policy.AdmitDevice(reg, cert); !errors.Is(err, ErrUntrustedVendor) {
		t.Fatalf("want ErrUntrustedVendor, got %v", err)
	}
	// The device was not registered: its readings fail.
	v := NewVerifier(reg)
	if err := v.Verify(d.Produce([]byte("r"), 1), 0); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("want ErrUnknownDevice, got %v", err)
	}
}

func TestForgedEndorsementRejected(t *testing.T) {
	rng := crypto.NewDRBGFromUint64(3, "mfr-test")
	mfr := NewManufacturer("acme", rng)
	mallory := NewManufacturer("mallory", rng)
	d := New("x", rng)

	// Mallory endorses but claims to be acme.
	cert := mallory.Endorse(d)
	cert.Manufacturer = mfr.Address()
	if err := cert.Verify(); !errors.Is(err, ErrCertForged) {
		t.Fatalf("want ErrCertForged, got %v", err)
	}
	// Tampered model string invalidates the signature.
	cert2 := mfr.Endorse(d)
	cert2.Model = "premium-edition"
	if err := cert2.Verify(); !errors.Is(err, ErrCertForged) {
		t.Fatalf("want ErrCertForged, got %v", err)
	}
	// Endorsement for a different device key cannot admit this one.
	other := New("y", rng)
	cert3 := mfr.Endorse(other)
	policy := NewTrustPolicy(TrustBasic)
	policy.SetLevel(mfr.Address(), TrustBasic)
	reg := identity.NewRegistry()
	if _, err := policy.AdmitDevice(reg, cert3); err != nil {
		t.Fatal(err) // admits `other`, fine
	}
	v := NewVerifier(reg)
	if err := v.Verify(d.Produce([]byte("r"), 1), 0); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("device admitted by proxy: %v", err)
	}
}

func TestTrustLevelOrderingAndString(t *testing.T) {
	if !(TrustUnknown < TrustBasic && TrustBasic < TrustCertified) {
		t.Fatal("trust ordering broken")
	}
	if TrustCertified.String() != "certified" || TrustUnknown.String() != "unknown" || TrustBasic.String() != "basic" {
		t.Fatal("trust level strings")
	}
}
