package chainstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"pds2/internal/ledger"
)

// snapshotsToKeep bounds the snapshot directory: the newest snapshot is
// the restart point, the previous one survives as a fallback in case
// the newest is discovered corrupt on open.
const snapshotsToKeep = 2

func snapshotName(height uint64) string { return fmt.Sprintf("snap-%012d.json", height) }

// WriteSnapshot persists a state snapshot (temp file + fsync + rename),
// prunes snapshots beyond the retention bound, and drops log segments
// made redundant by the new snapshot — segments whose every block is at
// or below the snapshot height and which are no longer the append
// target.
func (s *Store) WriteSnapshot(snap *ledger.StateSnapshot) error {
	if snap == nil || snap.Head == nil {
		return fmt.Errorf("chainstore: nil snapshot")
	}
	var buf bytes.Buffer
	if err := ledger.WriteSnapshot(&buf, snap); err != nil {
		return fmt.Errorf("chainstore: encode snapshot: %w", err)
	}
	path := filepath.Join(s.snapshotDir(), snapshotName(snap.Height()))
	if err := writeFileSync(path, buf.Bytes()); err != nil {
		return err
	}
	mSnapshots.Inc()
	s.pruneSnapshots()
	s.pruneSegments(snap.Height())
	return nil
}

// snapshotHeights lists persisted snapshot heights in ascending order.
func (s *Store) snapshotHeights() ([]uint64, error) {
	entries, err := os.ReadDir(s.snapshotDir())
	if err != nil {
		return nil, fmt.Errorf("chainstore: %w", err)
	}
	var heights []uint64
	for _, e := range entries {
		var h uint64
		if n, _ := fmt.Sscanf(e.Name(), "snap-%012d.json", &h); n == 1 {
			heights = append(heights, h)
		}
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] < heights[j] })
	return heights, nil
}

// LatestSnapshot loads the newest snapshot, or (nil, nil) when the
// store has none. A snapshot that fails to parse is skipped in favour
// of the next-newest — integrity against the sealed state root is
// enforced later by ledger.NewChainFromSnapshot.
func (s *Store) LatestSnapshot() (*ledger.StateSnapshot, error) {
	heights, err := s.snapshotHeights()
	if err != nil {
		return nil, err
	}
	for i := len(heights) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(s.snapshotDir(), snapshotName(heights[i])))
		if err != nil {
			continue
		}
		snap, err := ledger.ReadSnapshot(f)
		f.Close()
		if err == nil {
			return snap, nil
		}
	}
	return nil, nil
}

// pruneSnapshots removes all but the newest snapshotsToKeep snapshots.
func (s *Store) pruneSnapshots() {
	heights, err := s.snapshotHeights()
	if err != nil || len(heights) <= snapshotsToKeep {
		return
	}
	for _, h := range heights[:len(heights)-snapshotsToKeep] {
		os.Remove(filepath.Join(s.snapshotDir(), snapshotName(h)))
	}
}

// pruneSegments deletes sealed segments fully covered by a snapshot at
// the given height. The restart path only replays blocks above the
// snapshot, so those frames can never be read again — except by the
// fallback snapshot, so pruning keeps every segment above the OLDEST
// retained snapshot instead of the newest.
func (s *Store) pruneSegments(snapHeight uint64) {
	floor := snapHeight
	if heights, err := s.snapshotHeights(); err == nil && len(heights) > 0 {
		floor = heights[0]
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keep := s.segments[:0]
	for i := range s.segments {
		seg := s.segments[i]
		active := i == len(s.segments)-1
		if !active && seg.frames > 0 && seg.last <= floor {
			os.Remove(seg.path)
			continue
		}
		keep = append(keep, seg)
	}
	s.segments = keep
	mSegments.Set(float64(len(s.segments)))
}
