// Package chainstore persists a ledger chain to disk so a node can
// restart mid-run and resume from "snapshot + tail-of-log" instead of
// replaying from genesis, and a replica can fast-sync from a snapshot.
//
// Layout of a store directory:
//
//	genesis.json       block-less ledger.ChainExport (chain config)
//	meta.json          opaque runtime metadata (owner-defined JSON)
//	segments/
//	  seg-00000001.log append-only framed block log
//	  seg-00000002.log ...
//	snapshots/
//	  snap-000000000040.json  ledger.StateSnapshot at height 40
//
// Each segment frame is [u32 length][u32 crc32(payload)][payload],
// big-endian, payload = one JSON-encoded block. Appends fsync before
// returning (a sealed block is durable or the seal fails), and Open
// recovers from a crash mid-append by truncating the final segment at
// the first incomplete or checksum-failing frame.
package chainstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"pds2/internal/ledger"
	"pds2/internal/telemetry"
)

// Store telemetry: append volume, fsync latency (the health signal),
// and how often crash recovery actually had to truncate.
var (
	mAppends     = telemetry.C("chainstore.appends_total")
	mAppendBytes = telemetry.C("chainstore.append_bytes_total")
	mFsync       = telemetry.H("chainstore.fsync_seconds", telemetry.TimeBuckets)
	mTruncations = telemetry.C("chainstore.recovered_truncations_total")
	mSnapshots   = telemetry.C("chainstore.snapshots_total")
	mSegments    = telemetry.G("chainstore.segments")
)

// Frame layout constants.
const (
	frameHeaderSize = 8 // u32 length + u32 crc32
	// maxFrameSize bounds a single frame so a corrupted length field
	// cannot drive a multi-gigabyte allocation during recovery.
	maxFrameSize = 64 << 20
)

// Store errors.
var (
	// ErrCorruptSegment reports a bad frame in a non-final segment —
	// real corruption, not a crash tail, so Open refuses the store.
	ErrCorruptSegment = errors.New("chainstore: corrupt frame in sealed segment")
	// ErrNotContiguous reports an append whose height does not extend
	// the log by exactly one.
	ErrNotContiguous = errors.New("chainstore: append not contiguous with log")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("chainstore: store closed")
)

// Options tune a store. The zero value selects the defaults.
type Options struct {
	// SegmentBytes rolls to a new segment file once the active one
	// exceeds this size (default 8 MiB).
	SegmentBytes int64
	// SlowFsyncThreshold degrades the store's health check when the
	// most recent fsync took longer (default 500ms).
	SlowFsyncThreshold time.Duration
	// NoFsync skips fsync on append — only for tests and load rigs
	// that measure everything except the disk.
	NoFsync bool
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 8 << 20
	}
	if out.SlowFsyncThreshold <= 0 {
		out.SlowFsyncThreshold = 500 * time.Millisecond
	}
	return out
}

// segmentInfo tracks one on-disk segment file.
type segmentInfo struct {
	path   string
	index  uint64 // 1-based sequence number from the file name
	first  uint64 // height of the first block (0 = empty segment)
	last   uint64 // height of the last block
	frames int
	size   int64
}

// Store is a durable append-only block log plus periodic state
// snapshots. All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu        sync.Mutex
	closed    bool
	active    *os.File // current segment, opened for append
	segments  []segmentInfo
	last      uint64 // height of the last appended block (0 = empty log)
	haveAny   bool   // distinguishes "empty log" from "log ending at height 0"
	truncated int    // bytes dropped by crash recovery on Open

	lastFsync   time.Duration
	lastErr     error // sticky write error → unhealthy
	lastErrTime time.Time
}

// Open opens (or initialises) a store directory, recovering from a
// crash mid-append by truncating the final segment at the first bad
// frame. opts may be nil.
func Open(dir string, opts *Options) (*Store, error) {
	s := &Store{dir: dir, opts: opts.withDefaults()}
	for _, sub := range []string{dir, s.segmentDir(), s.snapshotDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("chainstore: %w", err)
		}
	}
	if err := s.scanSegments(); err != nil {
		return nil, err
	}
	if err := s.openActive(); err != nil {
		return nil, err
	}
	mSegments.Set(float64(len(s.segments)))
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) segmentDir() string  { return filepath.Join(s.dir, "segments") }
func (s *Store) snapshotDir() string { return filepath.Join(s.dir, "snapshots") }

func segmentName(index uint64) string { return fmt.Sprintf("seg-%08d.log", index) }

// scanSegments reads every segment in order, validating frames. A bad
// frame in the final segment is a crash tail: the file is truncated at
// the last good frame. A bad frame anywhere else is corruption.
func (s *Store) scanSegments() error {
	entries, err := os.ReadDir(s.segmentDir())
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	var infos []segmentInfo
	for _, e := range entries {
		var idx uint64
		if n, _ := fmt.Sscanf(e.Name(), "seg-%08d.log", &idx); n != 1 {
			continue
		}
		infos = append(infos, segmentInfo{path: filepath.Join(s.segmentDir(), e.Name()), index: idx})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].index < infos[j].index })

	for i := range infos {
		final := i == len(infos)-1
		if err := s.scanOneSegment(&infos[i], final); err != nil {
			return err
		}
	}
	s.segments = infos
	return nil
}

// scanOneSegment walks one segment's frames, filling in the info. When
// final, a bad or incomplete frame truncates the file there (crash
// recovery); otherwise it is an error.
func (s *Store) scanOneSegment(info *segmentInfo, final bool) error {
	f, err := os.Open(info.path)
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	defer f.Close()

	var offset int64
	hdr := make([]byte, frameHeaderSize)
	for {
		payload, n, err := readFrame(f, hdr)
		if err == io.EOF {
			break // clean end
		}
		if err != nil {
			if !final {
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorruptSegment, filepath.Base(info.path), offset, err)
			}
			return s.truncateSegment(info, offset)
		}
		var blk ledger.Block
		if jsonErr := json.Unmarshal(payload, &blk); jsonErr != nil {
			if !final {
				return fmt.Errorf("%w: %s at offset %d: %v", ErrCorruptSegment, filepath.Base(info.path), offset, jsonErr)
			}
			return s.truncateSegment(info, offset)
		}
		h := blk.Header.Height
		if s.haveAny && h != s.last+1 {
			if !final {
				return fmt.Errorf("%w: %s has height %d after %d", ErrCorruptSegment, filepath.Base(info.path), h, s.last)
			}
			return s.truncateSegment(info, offset)
		}
		if info.frames == 0 {
			info.first = h
		}
		info.last = h
		info.frames++
		s.last = h
		s.haveAny = true
		offset += int64(n)
		info.size = offset
	}
	info.size = offset
	return nil
}

// truncateSegment drops everything at and after offset — the crash
// recovery path. A zero offset leaves an empty (but valid) segment.
func (s *Store) truncateSegment(info *segmentInfo, offset int64) error {
	st, err := os.Stat(info.path)
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	dropped := st.Size() - offset
	if err := os.Truncate(info.path, offset); err != nil {
		return fmt.Errorf("chainstore: recover truncate: %w", err)
	}
	info.size = offset
	s.truncated += int(dropped)
	mTruncations.Inc()
	return nil
}

// readFrame reads one frame, returning the payload and the total bytes
// consumed. io.EOF means a clean boundary; any other error means a
// short or corrupt frame.
func readFrame(r io.Reader, hdr []byte) ([]byte, int, error) {
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("short frame header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrameSize {
		return nil, 0, fmt.Errorf("implausible frame length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, fmt.Errorf("short frame payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, errors.New("frame checksum mismatch")
	}
	return payload, frameHeaderSize + int(length), nil
}

// openActive opens the latest segment for appending, creating the first
// one in a fresh store.
func (s *Store) openActive() error {
	if len(s.segments) == 0 {
		s.segments = append(s.segments, segmentInfo{
			path:  filepath.Join(s.segmentDir(), segmentName(1)),
			index: 1,
		})
	}
	info := &s.segments[len(s.segments)-1]
	f, err := os.OpenFile(info.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	s.active = f
	return nil
}

// LastHeight returns the height of the last block in the log and
// whether the log holds any blocks at all.
func (s *Store) LastHeight() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.haveAny
}

// RecoveredBytes reports how many bytes crash recovery dropped when the
// store was opened (0 for a clean shutdown).
func (s *Store) RecoveredBytes() int { return s.truncated }

// Append frames, writes and fsyncs one block. Blocks must arrive in
// height order without gaps; the first append fixes the log's starting
// height (usually 1, or snapshot+1 on a fast-synced replica).
func (s *Store) Append(b *ledger.Block) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.haveAny && b.Header.Height != s.last+1 {
		return fmt.Errorf("%w: log at %d, block %d", ErrNotContiguous, s.last, b.Header.Height)
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return s.fail(fmt.Errorf("chainstore: encode block: %w", err))
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)

	if _, err := s.active.Write(frame); err != nil {
		return s.fail(fmt.Errorf("chainstore: append: %w", err))
	}
	if !s.opts.NoFsync {
		start := time.Now()
		// Component-labeled so profiles of a durable sealer show fsync
		// wait as chainstore.fsync rather than anonymous syscall time.
		var syncErr error
		telemetry.WithComponent("chainstore.fsync", func() { syncErr = s.active.Sync() })
		if syncErr != nil {
			return s.fail(fmt.Errorf("chainstore: fsync: %w", syncErr))
		}
		s.lastFsync = time.Since(start)
		mFsync.Observe(s.lastFsync.Seconds())
	}

	info := &s.segments[len(s.segments)-1]
	if info.frames == 0 {
		info.first = b.Header.Height
	}
	info.last = b.Header.Height
	info.frames++
	info.size += int64(len(frame))
	s.last = b.Header.Height
	s.haveAny = true
	s.lastErr = nil // a successful durable write clears the sticky error
	mAppends.Inc()
	mAppendBytes.Add(uint64(len(frame)))

	if info.size >= s.opts.SegmentBytes {
		if err := s.rollSegment(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// rollSegment seals the active segment and starts the next one.
// Callers hold s.mu.
func (s *Store) rollSegment() error {
	if err := s.active.Close(); err != nil {
		return fmt.Errorf("chainstore: seal segment: %w", err)
	}
	next := s.segments[len(s.segments)-1].index + 1
	s.segments = append(s.segments, segmentInfo{
		path:  filepath.Join(s.segmentDir(), segmentName(next)),
		index: next,
	})
	mSegments.Set(float64(len(s.segments)))
	return s.openActive()
}

// fail records a sticky write error (Health reports unhealthy until a
// later append succeeds) and returns it.
func (s *Store) fail(err error) error {
	s.lastErr = err
	s.lastErrTime = time.Now()
	return err
}

// Blocks streams every logged block with height >= from, in order.
// It reads from disk, so it observes exactly what a restart would.
func (s *Store) Blocks(from uint64, fn func(*ledger.Block) error) error {
	s.mu.Lock()
	segs := append([]segmentInfo(nil), s.segments...)
	s.mu.Unlock()

	hdr := make([]byte, frameHeaderSize)
	for _, seg := range segs {
		if seg.frames > 0 && seg.last < from {
			continue
		}
		f, err := os.Open(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned concurrently
			}
			return fmt.Errorf("chainstore: %w", err)
		}
		err = func() error {
			defer f.Close()
			// Bound the walk to the frames known good at snapshot time
			// so a concurrent append's half-written frame is never read.
			r := io.LimitReader(f, seg.size)
			for {
				payload, _, err := readFrame(r, hdr)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return fmt.Errorf("chainstore: read %s: %w", filepath.Base(seg.path), err)
				}
				var blk ledger.Block
				if err := json.Unmarshal(payload, &blk); err != nil {
					return fmt.Errorf("chainstore: decode block in %s: %w", filepath.Base(seg.path), err)
				}
				if blk.Header.Height < from {
					continue
				}
				if err := fn(&blk); err != nil {
					return err
				}
			}
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteGenesis persists the chain configuration. It refuses to
// overwrite an existing genesis with different content — a store is
// bound to one chain for life.
func (s *Store) WriteGenesis(exp ledger.ChainExport) error {
	exp.Blocks = nil
	data, err := json.MarshalIndent(exp, "", " ")
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	path := filepath.Join(s.dir, "genesis.json")
	if prev, err := os.ReadFile(path); err == nil {
		if string(prev) == string(data) {
			return nil
		}
		return errors.New("chainstore: store already holds a different genesis")
	}
	return writeFileSync(path, data)
}

// ReadGenesis loads the persisted chain configuration.
func (s *Store) ReadGenesis() (ledger.ChainExport, error) {
	var exp ledger.ChainExport
	data, err := os.ReadFile(filepath.Join(s.dir, "genesis.json"))
	if err != nil {
		return exp, fmt.Errorf("chainstore: %w", err)
	}
	if err := json.Unmarshal(data, &exp); err != nil {
		return exp, fmt.Errorf("chainstore: decode genesis: %w", err)
	}
	return exp, nil
}

// HasGenesis reports whether the store has been initialised.
func (s *Store) HasGenesis() bool {
	_, err := os.Stat(filepath.Join(s.dir, "genesis.json"))
	return err == nil
}

// PutMeta persists owner-defined runtime metadata (JSON-encoded) —
// e.g. well-known contract addresses the runtime must rebind on open.
func (s *Store) PutMeta(v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	return writeFileSync(filepath.Join(s.dir, "meta.json"), data)
}

// GetMeta loads metadata stored by PutMeta into out. It returns
// os.ErrNotExist (wrapped) when no metadata was ever stored.
func (s *Store) GetMeta(out any) error {
	data, err := os.ReadFile(filepath.Join(s.dir, "meta.json"))
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("chainstore: decode meta: %w", err)
	}
	return nil
}

// Stats is a point-in-time summary of the store, surfaced by the node's
// debug endpoints and the offline auditor.
type Stats struct {
	Dir            string        `json:"dir"`
	Segments       int           `json:"segments"`
	Frames         int           `json:"frames"`
	LogBytes       int64         `json:"log_bytes"`
	LastHeight     uint64        `json:"last_height"`
	Snapshots      int           `json:"snapshots"`
	SnapshotHeight uint64        `json:"snapshot_height"` // newest, 0 if none
	LastFsync      time.Duration `json:"last_fsync_ns"`
	RecoveredBytes int           `json:"recovered_bytes"`
}

// Stats summarises the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Dir:            s.dir,
		Segments:       len(s.segments),
		LastHeight:     s.last,
		LastFsync:      s.lastFsync,
		RecoveredBytes: s.truncated,
	}
	for _, seg := range s.segments {
		st.Frames += seg.frames
		st.LogBytes += seg.size
	}
	s.mu.Unlock()
	if heights, err := s.snapshotHeights(); err == nil {
		st.Snapshots = len(heights)
		if len(heights) > 0 {
			st.SnapshotHeight = heights[len(heights)-1]
		}
	}
	return st
}

// Close syncs and closes the active segment. The store rejects further
// appends.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	if !s.opts.NoFsync {
		if err := s.active.Sync(); err != nil {
			s.active.Close()
			return fmt.Errorf("chainstore: close fsync: %w", err)
		}
	}
	return s.active.Close()
}

// writeFileSync writes data to path via a temp file + rename, fsyncing
// the file so the rename never publishes a torn write.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("chainstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("chainstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("chainstore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chainstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chainstore: %w", err)
	}
	return nil
}
