package chainstore

import (
	"fmt"

	"pds2/internal/ledger"
)

// InitChain binds a freshly built chain to the store: it persists the
// chain's genesis configuration, appends every block the chain already
// sealed (a market runtime seals several setup blocks during
// construction), and installs the commit hook so every future seal or
// import lands in the log.
func (s *Store) InitChain(chain *ledger.Chain) error {
	if err := s.WriteGenesis(chain.ExportConfig()); err != nil {
		return err
	}
	last, _ := s.LastHeight()
	for h := last + 1; h <= chain.Height(); h++ {
		b, err := chain.BlockAt(h)
		if err != nil {
			return err
		}
		if err := s.Append(b); err != nil {
			return err
		}
	}
	s.Attach(chain)
	return nil
}

// Attach installs the store as the chain's commit observer. Append
// failures cannot veto an already-committed block, so they surface
// through the store's health check (unhealthy until a later durable
// write succeeds) rather than through the seal path — the documented
// durability contract is at-most-one-block loss on a torn write, which
// crash-truncation recovery then discards on reopen.
func (s *Store) Attach(chain *ledger.Chain) {
	chain.SetOnCommit(func(b *ledger.Block) {
		_ = s.Append(b) // error recorded by fail(); surfaced via Health
	})
}

// AttachSnapshotting is Attach plus a periodic snapshot policy: after
// every `every` appended blocks the chain's full state is snapshotted,
// old snapshots and fully-covered log segments are pruned, and the next
// open resumes from "snapshot + tail" instead of genesis. The hook runs
// on the committing goroutine while the chain is quiescent, so
// ExportSnapshot observes a consistent state. every == 0 disables the
// policy (plain Attach).
func (s *Store) AttachSnapshotting(chain *ledger.Chain, every uint64) {
	if every == 0 {
		s.Attach(chain)
		return
	}
	last := chain.Height()
	chain.SetOnCommit(func(b *ledger.Block) {
		if err := s.Append(b); err != nil {
			return // recorded by fail(); surfaced via Health
		}
		if b.Header.Height >= last+every {
			if err := s.WriteSnapshot(chain.ExportSnapshot()); err == nil {
				last = b.Header.Height
			}
		}
	})
}

// OpenChain rebuilds a chain from the store: newest valid snapshot (if
// any) plus the tail of the log, every tail block re-validated through
// the normal import path. The returned chain is attached to the store,
// so subsequent commits keep appending. applier must provide the same
// transaction semantics the original chain ran.
func (s *Store) OpenChain(applier ledger.TxApplier) (*ledger.Chain, error) {
	chain, err := s.loadChain(applier)
	if err != nil {
		return nil, err
	}
	s.Attach(chain)
	return chain, nil
}

// VerifyChain is OpenChain without the attach — the offline auditor's
// entry point: rebuild and fully re-validate, but never write.
func (s *Store) VerifyChain(applier ledger.TxApplier) (*ledger.Chain, error) {
	return s.loadChain(applier)
}

func (s *Store) loadChain(applier ledger.TxApplier) (*ledger.Chain, error) {
	if !s.HasGenesis() {
		return nil, fmt.Errorf("chainstore: store %s has no genesis (not initialised)", s.dir)
	}
	snap, err := s.LatestSnapshot()
	if err != nil {
		return nil, err
	}

	var chain *ledger.Chain
	if snap != nil {
		chain, err = ledger.NewChainFromSnapshot(snap, applier)
		if err != nil {
			return nil, fmt.Errorf("chainstore: restore snapshot at %d: %w", snap.Height(), err)
		}
	} else {
		exp, err := s.ReadGenesis()
		if err != nil {
			return nil, err
		}
		chain, err = ledger.NewChain(ledger.ChainConfig{
			Authorities:   exp.Authorities,
			BlockGasLimit: exp.BlockGasLimit,
			GenesisAlloc:  exp.GenesisAlloc,
			Applier:       applier,
		})
		if err != nil {
			return nil, err
		}
	}

	// Replay the log tail through full validation: seals, rotation, tx
	// roots, gas and state roots all re-checked.
	from := chain.Height() + 1
	err = s.Blocks(from, func(b *ledger.Block) error {
		if err := chain.ImportBlock(b); err != nil {
			return fmt.Errorf("chainstore: replay block %d: %w", b.Header.Height, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return chain, nil
}
