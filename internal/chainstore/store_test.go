package chainstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pds2/internal/crypto"
	"pds2/internal/identity"
	"pds2/internal/ledger"
	"pds2/internal/telemetry"
)

func testIdentity(seed uint64) *identity.Identity {
	return identity.New("t", crypto.NewDRBGFromUint64(seed, "chainstore-test"))
}

// testChain builds a single-authority chain with n sealed transfer
// blocks and returns it with the actors.
func testChain(t *testing.T, n int) (*ledger.Chain, *identity.Identity, *identity.Identity, *identity.Identity) {
	t.Helper()
	authority, alice, bob := testIdentity(100), testIdentity(1), testIdentity(2)
	chain, err := ledger.NewChain(ledger.ChainConfig{
		Authorities: []identity.Address{authority.Address()},
		GenesisAlloc: map[identity.Address]uint64{
			alice.Address(): 1_000_000,
			bob.Address():   500,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sealTransfers(t, chain, authority, alice, bob, n)
	return chain, authority, alice, bob
}

// sealTransfers seals n further single-transfer blocks.
func sealTransfers(t *testing.T, chain *ledger.Chain, authority, alice, bob *identity.Identity, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		nonce := chain.State().Nonce(alice.Address())
		tx := ledger.SignTx(alice, bob.Address(), 10, nonce, 50_000, nil)
		if _, err := chain.ProposeBlock(authority, chain.Height()+1, []*ledger.Transaction{tx}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 5)

	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	if last, ok := st.LastHeight(); !ok || last != 5 {
		t.Fatalf("LastHeight = %d/%v, want 5", last, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and rebuild — full replay from genesis (no snapshot yet).
	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.OpenChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Height() != 5 {
		t.Fatalf("reopened height = %d, want 5", got.Height())
	}
	if got.State().Root() != chain.State().Root() {
		t.Fatal("reopened state root diverges")
	}
}

func TestStoreCommitHookPersistsNewSeals(t *testing.T) {
	dir := t.TempDir()
	chain, authority, alice, bob := testChain(t, 2)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	// Blocks sealed after InitChain flow through the commit hook.
	sealTransfers(t, chain, authority, alice, bob, 3)
	if last, _ := st.LastHeight(); last != 5 {
		t.Fatalf("hook missed seals: log at %d, want 5", last)
	}
	st.Close()

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.OpenChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.State().Root() != chain.State().Root() {
		t.Fatal("state root diverges after hook-driven appends")
	}
}

func TestStoreSnapshotFastSync(t *testing.T) {
	dir := t.TempDir()
	chain, authority, alice, bob := testChain(t, 4)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chain.ExportSnapshot()); err != nil {
		t.Fatal(err)
	}
	// Tail past the snapshot.
	sealTransfers(t, chain, authority, alice, bob, 3)
	st.Close()

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.OpenChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Base() != 4 {
		t.Fatalf("restored base = %d, want snapshot height 4", got.Base())
	}
	if got.Height() != 7 {
		t.Fatalf("restored height = %d, want 7", got.Height())
	}
	if got.State().Root() != chain.State().Root() {
		t.Fatal("snapshot+tail state root diverges")
	}
}

func TestStoreCrashTruncationRecovery(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 3)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: a torn frame at the end of the
	// active segment (header promising more bytes than exist).
	seg := filepath.Join(dir, "segments", "seg-00000001.log")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0xFF, 0xFF, 0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st2.Close()
	if st2.RecoveredBytes() == 0 {
		t.Fatal("recovery did not report truncation")
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Fatal("torn tail not truncated")
	}
	got, err := st2.OpenChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Height() != 3 {
		t.Fatalf("recovered height = %d, want 3", got.Height())
	}
	if got.State().Root() != chain.State().Root() {
		t.Fatal("recovered state diverges")
	}
}

func TestStoreCorruptFrameChecksumTruncated(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 3)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Flip a byte inside the LAST frame's payload: the checksum fails,
	// recovery drops that block (at-most-one-block loss), and the
	// store reopens at height 2.
	seg := filepath.Join(dir, "segments", "seg-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer st2.Close()
	if last, _ := st2.LastHeight(); last != 2 {
		t.Fatalf("log at %d after checksum truncation, want 2", last)
	}
	got, err := st2.OpenChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Height() != 2 {
		t.Fatalf("recovered height = %d, want 2", got.Height())
	}
}

func TestStoreSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	chain, authority, alice, bob := testChain(t, 0)
	// Tiny segments force a roll roughly every block.
	st, err := Open(dir, &Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	sealTransfers(t, chain, authority, alice, bob, 8)
	stats := st.Stats()
	if stats.Segments < 3 {
		t.Fatalf("segments = %d, want several (roll not happening)", stats.Segments)
	}

	// Two snapshots: pruning keeps segments above the OLDEST retained
	// snapshot, so everything at or below the first snapshot height
	// (8) can go even after the second snapshot lands.
	if err := st.WriteSnapshot(chain.ExportSnapshot()); err != nil {
		t.Fatal(err)
	}
	sealTransfers(t, chain, authority, alice, bob, 2)
	if err := st.WriteSnapshot(chain.ExportSnapshot()); err != nil {
		t.Fatal(err)
	}
	pruned := st.Stats()
	if pruned.Segments >= stats.Segments {
		t.Fatalf("segments did not shrink: %d -> %d", stats.Segments, pruned.Segments)
	}
	st.Close()

	st2, err := Open(dir, &Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.OpenChain(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Height() != chain.Height() {
		t.Fatalf("height after prune+reopen = %d, want %d", got.Height(), chain.Height())
	}
	if got.State().Root() != chain.State().Root() {
		t.Fatal("state diverges after prune+reopen")
	}
}

func TestStoreRejectsNonContiguousAppend(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 2)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b1, _ := chain.BlockAt(1)
	b2, _ := chain.BlockAt(2)
	if err := st.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(b1); !errors.Is(err, ErrNotContiguous) {
		t.Fatalf("duplicate append: err = %v", err)
	}
	if err := st.Append(b2); err != nil {
		t.Fatal(err)
	}
}

func TestStoreGenesisBinding(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 1)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.HasGenesis() {
		t.Fatal("fresh store claims genesis")
	}
	if _, err := st.OpenChain(nil); err == nil {
		t.Fatal("OpenChain on uninitialised store succeeded")
	}
	if err := st.WriteGenesis(chain.ExportConfig()); err != nil {
		t.Fatal(err)
	}
	// Same genesis: idempotent. Different genesis: refused.
	if err := st.WriteGenesis(chain.ExportConfig()); err != nil {
		t.Fatalf("idempotent genesis write failed: %v", err)
	}
	other := chain.ExportConfig()
	other.BlockGasLimit = 123
	if err := st.WriteGenesis(other); err == nil {
		t.Fatal("store accepted a different genesis")
	}
}

func TestStoreMetaRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	type meta struct {
		Registry string `json:"registry"`
		Deeds    string `json:"deeds"`
	}
	if err := st.GetMeta(&meta{}); err == nil {
		t.Fatal("GetMeta on empty store succeeded")
	}
	in := meta{Registry: "r", Deeds: "d"}
	if err := st.PutMeta(in); err != nil {
		t.Fatal(err)
	}
	var out meta
	if err := st.GetMeta(&out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("meta round trip: %+v != %+v", out, in)
	}
}

// TestStoreHealthTransitions pins the /healthz component semantics:
// healthy on a working store, degraded once fsync latency crosses the
// threshold, unhealthy on a write error, healthy again after the next
// durable write succeeds, and unhealthy after Close.
func TestStoreHealthTransitions(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 3)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Health(); got.State != telemetry.Healthy {
		t.Fatalf("fresh store: %+v", got)
	}
	b1, _ := chain.BlockAt(1)
	b2, _ := chain.BlockAt(2)
	b3, _ := chain.BlockAt(3)
	if err := st.Append(b1); err != nil {
		t.Fatal(err)
	}
	if got := st.Health(); got.State != telemetry.Healthy {
		t.Fatalf("after append: %+v", got)
	}

	// Degraded: pretend the last fsync blew past the threshold.
	st.mu.Lock()
	st.lastFsync = 2 * st.opts.SlowFsyncThreshold
	st.mu.Unlock()
	if got := st.Health(); got.State != telemetry.Degraded {
		t.Fatalf("slow fsync: %+v", got)
	}

	// Unhealthy: fail the underlying file so the next append errors.
	st.mu.Lock()
	st.active.Close()
	st.mu.Unlock()
	if err := st.Append(b2); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if got := st.Health(); got.State != telemetry.Unhealthy {
		t.Fatalf("write error: %+v", got)
	}

	// Recovery: reopen the active segment; a durable write clears the
	// sticky error.
	st.mu.Lock()
	if err := st.openActive(); err != nil {
		st.mu.Unlock()
		t.Fatal(err)
	}
	st.lastFsync = 0
	st.mu.Unlock()
	if err := st.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(b3); err != nil {
		t.Fatal(err)
	}
	if got := st.Health(); got.State != telemetry.Healthy {
		t.Fatalf("after recovery: %+v", got)
	}

	st.Close()
	if got := st.Health(); got.State != telemetry.Unhealthy {
		t.Fatalf("closed store: %+v", got)
	}
}

func TestStoreBlocksStream(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 5)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	var heights []uint64
	err = st.Blocks(3, func(b *ledger.Block) error {
		heights = append(heights, b.Header.Height)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{3, 4, 5}
	if len(heights) != len(want) {
		t.Fatalf("heights = %v, want %v", heights, want)
	}
	for i := range want {
		if heights[i] != want[i] {
			t.Fatalf("heights = %v, want %v", heights, want)
		}
	}
}

func TestSnapshotFileIsLedgerEncoding(t *testing.T) {
	// The snapshot file on disk is exactly the ledger encoding: read it
	// back with ledger.ReadSnapshot directly.
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 2)
	st, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.InitChain(chain); err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(chain.ExportSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "snapshots", "snap-000000000002.json"))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := ledger.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Height() != 2 {
		t.Fatalf("snapshot height = %d", snap.Height())
	}
}

func TestStoreFsyncLatencyObserved(t *testing.T) {
	dir := t.TempDir()
	chain, _, _, _ := testChain(t, 1)
	st, err := Open(dir, &Options{SlowFsyncThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b1, _ := chain.BlockAt(1)
	if err := st.Append(b1); err != nil {
		t.Fatal(err)
	}
	// Any real fsync exceeds a nanosecond: the health check degrades.
	if got := st.Health(); got.State != telemetry.Degraded {
		t.Fatalf("nanosecond threshold not tripped: %+v", got)
	}
}
