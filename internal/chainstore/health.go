package chainstore

import (
	"fmt"

	"pds2/internal/telemetry"
)

// Health is the store's component check for the node health aggregator
// (worst-wins): a sticky write/fsync error reports unhealthy until a
// later durable write succeeds; an fsync slower than the configured
// threshold reports degraded (the disk is falling behind the seal
// rate); otherwise healthy with the log position.
func (s *Store) Health() telemetry.CheckResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return telemetry.UnhealthyResult("store closed")
	}
	if s.lastErr != nil {
		return telemetry.UnhealthyResult(fmt.Sprintf("write error at %s: %v",
			s.lastErrTime.Format("15:04:05"), s.lastErr))
	}
	if s.lastFsync > s.opts.SlowFsyncThreshold {
		return telemetry.DegradedResult(fmt.Sprintf("slow fsync: %s (threshold %s)",
			s.lastFsync, s.opts.SlowFsyncThreshold))
	}
	if !s.haveAny {
		return telemetry.OK("empty log")
	}
	return telemetry.OK(fmt.Sprintf("log at height %d, %d segments", s.last, len(s.segments)))
}
