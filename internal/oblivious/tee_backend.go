package oblivious

import (
	"encoding/binary"
	"fmt"
	"math"

	"pds2/internal/tee"
)

// TEE runs workloads inside a simulated enclave (the backend PDS²
// selects). The data crosses the boundary encrypted-at-rest; the enclave
// decrypts, computes natively and the cost model charges the SGX
// overhead for the working-set size.
type TEE struct {
	platform *tee.Platform

	// UploadLink models the provider → executor transfer of the (sealed)
	// inputs; TEEs need the data shipped once, unlike SMC's per-operation
	// rounds.
	UploadLink Link
}

// NewTEE creates a TEE backend on the given platform.
func NewTEE(platform *tee.Platform, upload Link) *TEE {
	return &TEE{platform: platform, UploadLink: upload}
}

// Name implements Backend.
func (*TEE) Name() string { return "tee" }

// Enclave programs are self-describing: the code bytes identify the
// computation, so the measurement distinguishes linear prediction from
// aggregation (and any parameter changes to either).
var (
	linearProgramCode = []byte("pds2/enclave/linear-predict/v1")
	sumProgramCode    = []byte("pds2/enclave/secure-sum/v1")
)

// LinearPredictMeasurement is the expected measurement of the linear-
// prediction enclave, which providers and the governance layer pin when
// verifying attestation quotes.
func LinearPredictMeasurement() tee.Measurement {
	return tee.Program{Code: linearProgramCode, Fn: runLinearPredict}.Measure()
}

// LinearPredict implements Backend.
func (t *TEE) LinearPredict(w []float64, bias float64, X [][]float64) ([]float64, Cost, error) {
	if err := validateLinear(w, X); err != nil {
		return nil, Cost{}, err
	}
	enclave, err := t.platform.Launch(tee.Program{Code: linearProgramCode, Fn: runLinearPredict})
	if err != nil {
		return nil, Cost{}, err
	}
	input := encodeLinearInput(w, bias, X)
	workingSet := int64(len(input))
	res, err := enclave.Call(input, workingSet)
	if err != nil {
		return nil, Cost{}, err
	}
	out, err := decodeFloats(res.Output)
	if err != nil {
		return nil, Cost{}, err
	}
	cost := Cost{
		CPU:        res.Elapsed,
		CommBytes:  int64(len(input)),
		CommRounds: 1,
		Virtual: enclave.LaunchCost() + res.Virtual +
			t.UploadLink.TransferTime(int64(len(input)), 1),
	}
	return out, cost, nil
}

// SecureSum implements Backend.
func (t *TEE) SecureSum(vectors [][]float64) ([]float64, Cost, error) {
	if err := validateSum(vectors); err != nil {
		return nil, Cost{}, err
	}
	enclave, err := t.platform.Launch(tee.Program{Code: sumProgramCode, Fn: runSecureSum})
	if err != nil {
		return nil, Cost{}, err
	}
	input := encodeMatrix(vectors)
	res, err := enclave.Call(input, int64(len(input)))
	if err != nil {
		return nil, Cost{}, err
	}
	out, err := decodeFloats(res.Output)
	if err != nil {
		return nil, Cost{}, err
	}
	cost := Cost{
		CPU:        res.Elapsed,
		CommBytes:  int64(len(input)),
		CommRounds: 1,
		Virtual: enclave.LaunchCost() + res.Virtual +
			t.UploadLink.TransferTime(int64(len(input)), 1),
	}
	return out, cost, nil
}

// Enclave entry points. They speak the ecall wire format below; real SGX
// enclaves would additionally unseal the inputs, which the cost model
// folds into BaseOverhead.

func runLinearPredict(input []byte) ([]byte, error) {
	w, bias, X, err := decodeLinearInput(input)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(X))
	for i, row := range X {
		s := bias
		for j, v := range row {
			s += v * w[j]
		}
		out[i] = s
	}
	return encodeFloats(out), nil
}

func runSecureSum(input []byte) ([]byte, error) {
	vectors, err := decodeMatrix(input)
	if err != nil {
		return nil, err
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("empty aggregation input")
	}
	out := make([]float64, len(vectors[0]))
	for _, v := range vectors {
		for j, x := range v {
			out[j] += x
		}
	}
	return encodeFloats(out), nil
}

// ecall wire format: flat big-endian encoding.

func encodeFloats(v []float64) []byte {
	buf := make([]byte, 8+8*len(v))
	binary.BigEndian.PutUint64(buf, uint64(len(v)))
	for i, f := range v {
		binary.BigEndian.PutUint64(buf[8+8*i:], math.Float64bits(f))
	}
	return buf
}

func decodeFloats(b []byte) ([]float64, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("oblivious: truncated float vector")
	}
	n := binary.BigEndian.Uint64(b)
	if uint64(len(b)) != 8+8*n {
		return nil, fmt.Errorf("oblivious: float vector length mismatch")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8+8*i:]))
	}
	return out, nil
}

func encodeMatrix(rows [][]float64) []byte {
	size := 8
	for _, r := range rows {
		size += 8 + 8*len(r)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(rows)))
	for _, r := range rows {
		buf = append(buf, encodeFloats(r)...)
	}
	return buf
}

func decodeMatrix(b []byte) ([][]float64, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("oblivious: truncated matrix")
	}
	n := binary.BigEndian.Uint64(b)
	b = b[8:]
	out := make([][]float64, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("oblivious: truncated matrix row")
		}
		m := binary.BigEndian.Uint64(b)
		rowLen := int(8 + 8*m)
		if len(b) < rowLen {
			return nil, fmt.Errorf("oblivious: truncated matrix row")
		}
		row, err := decodeFloats(b[:rowLen])
		if err != nil {
			return nil, err
		}
		out = append(out, row)
		b = b[rowLen:]
	}
	return out, nil
}

func encodeLinearInput(w []float64, bias float64, X [][]float64) []byte {
	buf := encodeFloats(append(append([]float64{}, w...), bias))
	return append(buf, encodeMatrix(X)...)
}

func decodeLinearInput(b []byte) (w []float64, bias float64, X [][]float64, err error) {
	if len(b) < 8 {
		return nil, 0, nil, fmt.Errorf("oblivious: truncated linear input")
	}
	n := binary.BigEndian.Uint64(b)
	headLen := int(8 + 8*n)
	if len(b) < headLen {
		return nil, 0, nil, fmt.Errorf("oblivious: truncated linear input")
	}
	wb, err := decodeFloats(b[:headLen])
	if err != nil {
		return nil, 0, nil, err
	}
	if len(wb) == 0 {
		return nil, 0, nil, fmt.Errorf("oblivious: missing bias")
	}
	X, err = decodeMatrix(b[headLen:])
	if err != nil {
		return nil, 0, nil, err
	}
	return wb[:len(wb)-1], wb[len(wb)-1], X, nil
}
