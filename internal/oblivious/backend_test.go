package oblivious

import (
	"math"
	"testing"

	"pds2/internal/crypto"
	"pds2/internal/simnet"
	"pds2/internal/tee"
)

// testBackends builds one of each backend with small parameters.
func testBackends(t *testing.T) []Backend {
	t.Helper()
	rng := crypto.NewDRBGFromUint64(1, "oblivious-test")
	qa := tee.NewQuotingAuthority(rng)
	platform := tee.NewPlatform(qa, tee.DefaultCostModel(), rng)
	link := Link{Latency: 10 * simnet.Millisecond, Bandwidth: 10 << 20}

	heb, err := NewHE(512, 7, link)
	if err != nil {
		t.Fatal(err)
	}
	return []Backend{
		Plain{},
		NewTEE(platform, link),
		heb,
		NewSMC(3, 7, link),
	}
}

// testWorkload builds a small linear-prediction problem.
func testWorkload() (w []float64, bias float64, X [][]float64, want []float64) {
	w = []float64{0.5, -1.25, 2}
	bias = 0.75
	X = [][]float64{
		{1, 2, 3},
		{-1, 0.5, 0},
		{0, 0, 0},
		{4, -4, 0.25},
	}
	want = make([]float64, len(X))
	for i, row := range X {
		s := bias
		for j := range row {
			s += row[j] * w[j]
		}
		want[i] = s
	}
	return
}

func TestAllBackendsAgreeOnLinearPredict(t *testing.T) {
	w, bias, X, want := testWorkload()
	for _, b := range testBackends(t) {
		got, cost, err := b.LinearPredict(w, bias, X)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results", b.Name(), len(got))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-3 {
				t.Fatalf("%s: result[%d] = %v, want %v", b.Name(), i, got[i], want[i])
			}
		}
		if cost.Virtual < 0 {
			t.Fatalf("%s: negative virtual cost", b.Name())
		}
	}
}

func TestAllBackendsAgreeOnSecureSum(t *testing.T) {
	vectors := [][]float64{
		{1, 2, 3},
		{0.5, -1, 4},
		{-0.25, 0, 1},
	}
	want := []float64{1.25, 1, 8}
	for _, b := range testBackends(t) {
		got, _, err := b.SecureSum(vectors)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-3 {
				t.Fatalf("%s: sum[%d] = %v, want %v", b.Name(), i, got[i], want[i])
			}
		}
	}
}

func TestBackendsRejectBadShapes(t *testing.T) {
	for _, b := range testBackends(t) {
		if _, _, err := b.LinearPredict([]float64{1, 2}, 0, [][]float64{{1}}); err == nil {
			t.Fatalf("%s: shape mismatch accepted", b.Name())
		}
		if _, _, err := b.SecureSum(nil); err == nil {
			t.Fatalf("%s: empty aggregation accepted", b.Name())
		}
		if _, _, err := b.SecureSum([][]float64{{1}, {1, 2}}); err == nil {
			t.Fatalf("%s: ragged aggregation accepted", b.Name())
		}
	}
}

func TestPrivateBackendsReportCommunication(t *testing.T) {
	w, bias, X, _ := testWorkload()
	for _, b := range testBackends(t) {
		_, cost, err := b.LinearPredict(w, bias, X)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() == "plain" {
			if cost.CommBytes != 0 {
				t.Fatal("plain backend reported communication")
			}
			continue
		}
		if cost.CommBytes == 0 || cost.CommRounds == 0 {
			t.Fatalf("%s: no communication accounted", b.Name())
		}
	}
}

func TestOverheadOrderingMatchesPaper(t *testing.T) {
	// §III-B's qualitative claim: plain < tee << he in compute cost, and
	// SMC cheaper than HE in compute. Use a large-enough workload for the
	// timing to be stable.
	rng := crypto.NewDRBGFromUint64(3, "ordering")
	dim, n := 32, 40
	w := make([]float64, dim)
	X := make([][]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	for i := range X {
		X[i] = make([]float64, dim)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
	}
	costs := map[string]Cost{}
	for _, b := range testBackends(t) {
		_, cost, err := b.LinearPredict(w, 0, X)
		if err != nil {
			t.Fatal(err)
		}
		costs[b.Name()] = cost
	}
	if costs["he"].CPU <= costs["plain"].CPU {
		t.Fatalf("HE not slower than plain: %v vs %v", costs["he"].CPU, costs["plain"].CPU)
	}
	if costs["he"].CPU <= costs["smc"].CPU {
		t.Fatalf("HE not slower than SMC: %v vs %v", costs["he"].CPU, costs["smc"].CPU)
	}
}

func TestTEELinearPredictMeasurementStable(t *testing.T) {
	m1 := LinearPredictMeasurement()
	m2 := LinearPredictMeasurement()
	if m1 != m2 || m1.IsZero() {
		t.Fatal("measurement unstable")
	}
}

func TestWireFormatRoundTrip(t *testing.T) {
	w := []float64{1.5, -2}
	X := [][]float64{{1, 2}, {3, 4}, {}}
	buf := encodeLinearInput(w, 0.5, X)
	gw, bias, gX, err := decodeLinearInput(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gw) != 2 || gw[0] != 1.5 || gw[1] != -2 || bias != 0.5 {
		t.Fatalf("decoded w=%v bias=%v", gw, bias)
	}
	if len(gX) != 3 || gX[1][1] != 4 || len(gX[2]) != 0 {
		t.Fatalf("decoded X=%v", gX)
	}
}

func TestWireFormatRejectsTruncation(t *testing.T) {
	buf := encodeMatrix([][]float64{{1, 2, 3}})
	if _, err := decodeMatrix(buf[:len(buf)-4]); err == nil {
		t.Fatal("truncated matrix accepted")
	}
	if _, err := decodeFloats([]byte{1, 2}); err == nil {
		t.Fatal("truncated floats accepted")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{CPU: 1, CommBytes: 10, CommRounds: 1, Virtual: 100}
	a.Add(Cost{CPU: 2, CommBytes: 20, CommRounds: 2, Virtual: 200})
	if a.CPU != 3 || a.CommBytes != 30 || a.CommRounds != 3 || a.Virtual != 300 {
		t.Fatalf("cost = %+v", a)
	}
}

func TestLinkTransferTime(t *testing.T) {
	l := Link{Latency: 10 * simnet.Millisecond, Bandwidth: 1000}
	got := l.TransferTime(500, 2)
	want := 20*simnet.Millisecond + simnet.Second/2
	if got != want {
		t.Fatalf("transfer time = %v, want %v", got, want)
	}
}
