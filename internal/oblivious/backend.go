// Package oblivious defines the privacy-preserving execution backends of
// PDS². §II-E requires that "the details of the data and of the workload
// computation must be invisible to all actors involved"; §III-B surveys
// three technologies able to provide that — homomorphic encryption,
// secure multiparty computation and trusted execution environments — and
// selects TEEs. This package puts all three (plus a non-private plain
// baseline) behind one Backend interface so that executors can swap them
// per workload (§II-F "consumers may direct the executors to use one of
// several … mechanisms") and so that experiments E3–E5 can compare their
// costs under identical workloads.
package oblivious

import (
	"fmt"
	"time"

	"pds2/internal/simnet"
)

// Cost reports what one backend operation consumed.
type Cost struct {
	// CPU is the real compute time spent in this process.
	CPU time.Duration

	// CommBytes and CommRounds count the communication a real deployment
	// of the backend would perform.
	CommBytes  int64
	CommRounds int

	// Virtual is the modelled end-to-end latency: compute time adjusted
	// by the backend's overhead model plus communication time under the
	// backend's link model.
	Virtual simnet.Time
}

// Add accumulates another cost into c.
func (c *Cost) Add(o Cost) {
	c.CPU += o.CPU
	c.CommBytes += o.CommBytes
	c.CommRounds += o.CommRounds
	c.Virtual += o.Virtual
}

// Link models the network between the participants of a backend protocol
// (provider ↔ executor for HE, party ↔ party for SMC).
type Link struct {
	Latency   simnet.Time
	Bandwidth int64 // bytes per second; 0 = unlimited
}

// TransferTime returns the modelled time to move the given bytes over
// the link in the given number of rounds.
func (l Link) TransferTime(bytes int64, rounds int) simnet.Time {
	t := simnet.Time(rounds) * l.Latency
	if l.Bandwidth > 0 {
		t += simnet.Time(bytes * int64(simnet.Second) / l.Bandwidth)
	}
	return t
}

// Backend evaluates workloads across a privacy boundary: the caller
// plays the executor, which must not learn the data (and, depending on
// the backend, not the model either).
type Backend interface {
	// Name identifies the backend in reports ("plain", "tee", "he", "smc").
	Name() string

	// LinearPredict computes w·x + bias for every row of X.
	LinearPredict(w []float64, bias float64, X [][]float64) ([]float64, Cost, error)

	// SecureSum aggregates the element-wise sum of the providers'
	// vectors without revealing any individual vector.
	SecureSum(vectors [][]float64) ([]float64, Cost, error)
}

// validateLinear checks common preconditions for LinearPredict.
func validateLinear(w []float64, X [][]float64) error {
	for i, row := range X {
		if len(row) != len(w) {
			return fmt.Errorf("oblivious: row %d has %d features, model has %d", i, len(row), len(w))
		}
	}
	return nil
}

// validateSum checks common preconditions for SecureSum.
func validateSum(vectors [][]float64) error {
	if len(vectors) == 0 {
		return fmt.Errorf("oblivious: no vectors to aggregate")
	}
	for i, v := range vectors {
		if len(v) != len(vectors[0]) {
			return fmt.Errorf("oblivious: vector %d has length %d, expected %d", i, len(v), len(vectors[0]))
		}
	}
	return nil
}

// Plain is the no-privacy baseline: direct computation, zero
// communication. It is the denominator of every overhead ratio.
type Plain struct{}

// Name implements Backend.
func (Plain) Name() string { return "plain" }

// LinearPredict implements Backend.
func (Plain) LinearPredict(w []float64, bias float64, X [][]float64) ([]float64, Cost, error) {
	if err := validateLinear(w, X); err != nil {
		return nil, Cost{}, err
	}
	start := time.Now()
	out := make([]float64, len(X))
	for i, row := range X {
		s := bias
		for j, v := range row {
			s += v * w[j]
		}
		out[i] = s
	}
	cpu := time.Since(start)
	return out, Cost{CPU: cpu, Virtual: simnet.Time(cpu.Microseconds())}, nil
}

// SecureSum implements Backend (not actually secure; it is the baseline).
func (Plain) SecureSum(vectors [][]float64) ([]float64, Cost, error) {
	if err := validateSum(vectors); err != nil {
		return nil, Cost{}, err
	}
	start := time.Now()
	out := make([]float64, len(vectors[0]))
	for _, v := range vectors {
		for j, x := range v {
			out[j] += x
		}
	}
	cpu := time.Since(start)
	return out, Cost{CPU: cpu, Virtual: simnet.Time(cpu.Microseconds())}, nil
}
