package oblivious

import (
	"time"

	"pds2/internal/crypto"
	"pds2/internal/he"
	"pds2/internal/simnet"
)

// HE evaluates workloads under Paillier homomorphic encryption, the
// MiniONN-style private-inference setting: the data owner encrypts its
// features under its own key, the executor computes the linear part on
// ciphertexts (it holds the model in plaintext but never sees features),
// and the data owner decrypts the results.
type HE struct {
	key  *he.PrivateKey
	rng  *crypto.DRBG
	Link Link
}

// NewHE creates an HE backend with a fresh key of the given size.
func NewHE(keyBits int, seed uint64, link Link) (*HE, error) {
	rng := crypto.NewDRBGFromUint64(seed, "he-backend")
	key, err := he.GenerateKey(keyBits, rng)
	if err != nil {
		return nil, err
	}
	return &HE{key: key, rng: rng, Link: link}, nil
}

// Name implements Backend.
func (*HE) Name() string { return "he" }

// LinearPredict implements Backend: encrypt rows, homomorphic dot
// products, decrypt scores. Communication: ciphertexts up (one per
// feature per row) and one result ciphertext per row back — 2 rounds.
func (h *HE) LinearPredict(w []float64, bias float64, X [][]float64) ([]float64, Cost, error) {
	if err := validateLinear(w, X); err != nil {
		return nil, Cost{}, err
	}
	start := time.Now()
	var commBytes int64
	out := make([]float64, len(X))
	for i, row := range X {
		encRow, err := h.key.EncryptVector(row, he.DefaultScale, h.rng)
		if err != nil {
			return nil, Cost{}, err
		}
		for _, c := range encRow {
			commBytes += int64(c.WireSize())
		}
		ct, err := h.key.DotEncrypted(encRow, w, bias, he.DefaultScale)
		if err != nil {
			return nil, Cost{}, err
		}
		commBytes += int64(ct.WireSize())
		out[i], err = h.key.DecryptFloat(ct, he.DefaultScale*he.DefaultScale)
		if err != nil {
			return nil, Cost{}, err
		}
	}
	cpu := time.Since(start)
	cost := Cost{
		CPU:        cpu,
		CommBytes:  commBytes,
		CommRounds: 2,
		Virtual:    simnet.Time(cpu.Microseconds()) + h.Link.TransferTime(commBytes, 2),
	}
	return out, cost, nil
}

// SecureSum implements Backend: each provider encrypts its vector; the
// executor adds ciphertexts component-wise; the key holder decrypts the
// aggregate only — individual vectors stay hidden (the additively-
// homomorphic aggregation used by private federated averaging).
func (h *HE) SecureSum(vectors [][]float64) ([]float64, Cost, error) {
	if err := validateSum(vectors); err != nil {
		return nil, Cost{}, err
	}
	start := time.Now()
	dim := len(vectors[0])
	var commBytes int64
	acc := make([]*he.Ciphertext, dim)
	for _, v := range vectors {
		for j, x := range v {
			c, err := h.key.EncryptFloat(x, he.DefaultScale, h.rng)
			if err != nil {
				return nil, Cost{}, err
			}
			commBytes += int64(c.WireSize())
			if acc[j] == nil {
				acc[j] = c
			} else {
				acc[j] = h.key.Add(acc[j], c)
			}
		}
	}
	out := make([]float64, dim)
	for j, c := range acc {
		v, err := h.key.DecryptFloat(c, he.DefaultScale)
		if err != nil {
			return nil, Cost{}, err
		}
		out[j] = v
		commBytes += int64(c.WireSize())
	}
	cpu := time.Since(start)
	cost := Cost{
		CPU:        cpu,
		CommBytes:  commBytes,
		CommRounds: 2,
		Virtual:    simnet.Time(cpu.Microseconds()) + h.Link.TransferTime(commBytes, 2),
	}
	return out, cost, nil
}

// KeyBits reports the modulus size, for experiment labels.
func (h *HE) KeyBits() int { return h.key.N.BitLen() }
