package oblivious

import (
	"time"

	"pds2/internal/crypto"
	"pds2/internal/simnet"
	"pds2/internal/smc"
)

// SMC evaluates workloads under additive secret sharing among NumParties
// executors (Falcon-style honest majority [14]). Both the model and the
// data are shared, so no single executor learns either; the price is one
// communication round per multiplication batch, charged against Link.
type SMC struct {
	NumParties int
	Link       Link
	seed       uint64
}

// NewSMC creates an SMC backend with n parties.
func NewSMC(n int, seed uint64, link Link) *SMC {
	if n < 2 {
		n = 3
	}
	return &SMC{NumParties: n, Link: link, seed: seed}
}

// Name implements Backend.
func (*SMC) Name() string { return "smc" }

// LinearPredict implements Backend: share w and every row, one Beaver
// batch per row, open the scores.
func (s *SMC) LinearPredict(w []float64, bias float64, X [][]float64) ([]float64, Cost, error) {
	if err := validateLinear(w, X); err != nil {
		return nil, Cost{}, err
	}
	start := time.Now()
	engine, err := smc.NewEngine(s.NumParties, crypto.NewDRBGFromUint64(s.seed, "smc-backend"))
	if err != nil {
		return nil, Cost{}, err
	}
	engine.DealTriples(len(X) * len(w))
	sw := engine.Share(w, smc.FixedScale)

	out := make([]float64, len(X))
	for i, row := range X {
		sx := engine.Share(row, smc.FixedScale)
		dot, err := engine.Dot(sx, sw)
		if err != nil {
			return nil, Cost{}, err
		}
		vals := engine.Open(dot)
		out[i] = vals[0] + bias
	}
	cpu := time.Since(start)
	cost := Cost{
		CPU:        cpu,
		CommBytes:  engine.BytesSent,
		CommRounds: engine.Rounds,
		Virtual:    simnet.Time(cpu.Microseconds()) + engine.VirtualTime(s.Link.Latency, s.Link.Bandwidth),
	}
	return out, cost, nil
}

// SecureSum implements Backend: sharing makes addition free; the only
// communication is input sharing and the final opening.
func (s *SMC) SecureSum(vectors [][]float64) ([]float64, Cost, error) {
	if err := validateSum(vectors); err != nil {
		return nil, Cost{}, err
	}
	start := time.Now()
	engine, err := smc.NewEngine(s.NumParties, crypto.NewDRBGFromUint64(s.seed, "smc-backend"))
	if err != nil {
		return nil, Cost{}, err
	}
	acc := engine.Share(vectors[0], smc.FixedScale)
	for _, v := range vectors[1:] {
		sv := engine.Share(v, smc.FixedScale)
		acc, err = engine.Add(acc, sv)
		if err != nil {
			return nil, Cost{}, err
		}
	}
	out := engine.Open(acc)
	cpu := time.Since(start)
	cost := Cost{
		CPU:        cpu,
		CommBytes:  engine.BytesSent,
		CommRounds: engine.Rounds,
		Virtual:    simnet.Time(cpu.Microseconds()) + engine.VirtualTime(s.Link.Latency, s.Link.Bandwidth),
	}
	return out, cost, nil
}
